//! The socket server: accept loop, connection handlers, graceful drain.
//!
//! The listener (Unix or TCP) runs non-blocking and is polled every
//! ~20 ms against the cancellation token, so SIGINT is observed between
//! accepts. Each connection gets its own handler thread that reads
//! newline-delimited requests, submits them to the shared [`JobQueue`]
//! (which bounds actual compute concurrency) and writes one response
//! line per request. On cancellation the server stops accepting, the
//! handlers finish their in-flight request and exit, and the queue
//! drains queued jobs to completion — a `Ctrl-C` loses no work that was
//! already submitted.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use si_petri::{Budget, CancelToken};

use crate::json;
use crate::queue::JobQueue;
use crate::service::{envelope, panic_body, Response, Service};
use crate::store::ArtifactStore;

/// Where the server listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7432`.
    Tcp(String),
}

/// Server configuration (the `sisyn serve` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listening endpoint.
    pub endpoint: Endpoint,
    /// Worker threads on the job queue.
    pub workers: usize,
    /// Byte ceiling of the in-memory artifact tier.
    pub store_bytes: usize,
    /// Spill directory for the disk tier (`None` = memory only).
    pub store_dir: Option<PathBuf>,
    /// Log one line per executed job to stderr.
    pub log: bool,
    /// TCP address of the Prometheus-style text metrics endpoint
    /// (`None` = no endpoint). Binding it turns the observability layer
    /// on for the whole server process.
    pub metrics_addr: Option<String>,
}

impl ServerConfig {
    /// Defaults: 2 workers, 64 MiB memory tier, no spill, no log, no
    /// metrics endpoint.
    pub fn new(endpoint: Endpoint) -> Self {
        ServerConfig {
            endpoint,
            workers: 2,
            store_bytes: 64 << 20,
            store_dir: None,
            log: false,
            metrics_addr: None,
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed server would make
                // bind fail; connect() distinguishes live from stale.
                if path.exists() && UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr.as_str())?)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

impl Stream {
    fn configure(&self) -> io::Result<()> {
        // The stream must be blocking (it may inherit non-blocking from
        // the polled listener) with a short read timeout, so handlers
        // observe cancellation while idle.
        let timeout = Some(Duration::from_millis(200));
        match self {
            Stream::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)
            }
            Stream::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Runs the server until `cancel` fires, then drains and returns.
///
/// # Errors
///
/// Propagates the bind failure; per-connection I/O errors only drop
/// that connection.
pub fn serve(config: &ServerConfig, cancel: &CancelToken) -> io::Result<()> {
    let store = Arc::new(ArtifactStore::new(
        Budget::unbounded().max_bytes(config.store_bytes),
        config.store_dir.clone(),
    ));
    let service = Arc::new(Service::new(store));
    let queue = Arc::new(JobQueue::new(config.workers));
    let listener = Listener::bind(&config.endpoint)?;
    listener.set_nonblocking(true)?;
    if config.log {
        si_obs::log_line(&format!(
            "serve: listening on {:?} ({} worker(s), {} byte memory tier{})",
            config.endpoint,
            config.workers,
            config.store_bytes,
            config
                .store_dir
                .as_ref()
                .map_or(String::new(), |d| format!(", spill {}", d.display())),
        ));
    }
    // The metrics endpoint thread scrapes the same registry the job
    // pipeline records into; binding it switches observation on so
    // there is something to scrape.
    let metrics_handle = config.metrics_addr.clone().map(|addr| {
        si_obs::set_enabled(true);
        let service = Arc::clone(&service);
        let queue = Arc::clone(&queue);
        let cancel = cancel.clone();
        std::thread::spawn(move || metrics_endpoint(&addr, &service, &queue, &cancel))
    });

    let mut handlers = Vec::new();
    while !cancel.is_cancelled() {
        match listener.accept() {
            Ok(stream) => {
                if stream.configure().is_err() {
                    continue;
                }
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                let cancel = cancel.clone();
                let log = config.log;
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &service, &queue, &cancel, log);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }

    // Graceful shutdown: no new connections, handlers finish the request
    // they are on (the read timeout bounds how long an idle one lingers),
    // queued jobs run to completion.
    drop(listener);
    for handle in handlers {
        let _ = handle.join();
    }
    queue.drain();
    if let Some(handle) = metrics_handle {
        let _ = handle.join();
    }
    if let Endpoint::Unix(path) = &config.endpoint {
        let _ = std::fs::remove_file(path);
    }
    if config.log {
        let s = service.store().stats();
        let q = queue.stats();
        si_obs::log_line(&format!(
            "serve: drained; {} job(s) executed ({} panicked), store {} hit(s) \
             / {} disk hit(s) / {} miss(es), {} eviction(s)",
            q.executed, q.panicked, s.hits, s.disk_hits, s.misses, s.evictions,
        ));
    }
    Ok(())
}

/// Mirrors the queue and store counters into the shared registry as
/// gauges — called at snapshot time only (a `metrics` op or an endpoint
/// scrape), so the `QueueStats`/`StoreStats` structs stay the source of
/// truth and the job pipeline pays nothing for them.
fn sync_serve_gauges(s: &crate::store::StoreStats, q: &crate::queue::QueueStats) {
    si_obs::gauge_sync("serve.queue.submitted", q.submitted as i64);
    si_obs::gauge_sync("serve.queue.executed", q.executed as i64);
    si_obs::gauge_sync("serve.queue.panicked", q.panicked as i64);
    si_obs::gauge_sync("serve.queue.depth", q.depth as i64);
    si_obs::gauge_sync("serve.queue.busy_ms", q.busy_ms as i64);
    si_obs::gauge_sync("serve.store.hits", s.hits as i64);
    si_obs::gauge_sync("serve.store.disk_hits", s.disk_hits as i64);
    si_obs::gauge_sync("serve.store.misses", s.misses as i64);
    si_obs::gauge_sync("serve.store.evictions", s.evictions as i64);
    si_obs::gauge_sync("serve.store.disk_writes", s.disk_writes as i64);
    si_obs::gauge_sync("serve.store.mem_bytes", s.mem_bytes as i64);
    si_obs::gauge_sync("serve.store.mem_entries", s.mem_entries as i64);
}

/// The Prometheus-style text endpoint: a minimal HTTP/1.0 responder that
/// answers every request with the current registry exposition. Polled
/// non-blocking against the cancellation token, like the main listener.
fn metrics_endpoint(
    addr: &str,
    service: &Arc<Service>,
    queue: &Arc<JobQueue>,
    cancel: &CancelToken,
) {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            si_obs::log_line(&format!("serve: cannot bind metrics endpoint {addr}: {e}"));
            return;
        }
    };
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !cancel.is_cancelled() {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                // Drain the request head; every path answers the same.
                let mut head = [0u8; 1024];
                let _ = stream.read(&mut head);
                sync_serve_gauges(&service.store().stats(), &queue.stats());
                let body = si_obs::render_prometheus();
                let _ = write!(
                    stream,
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len(),
                );
                let _ = stream.flush();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads request lines until EOF or cancellation, answering each.
fn handle_connection(
    mut stream: Stream,
    service: &Arc<Service>,
    queue: &Arc<JobQueue>,
    cancel: &CancelToken,
    log: bool,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut eof = false;
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            if !answer(&line, &mut stream, service, queue, log) {
                return;
            }
        }
        if eof {
            // A final request without a trailing newline still counts.
            if !buf.is_empty() {
                let line = std::mem::take(&mut buf);
                let _ = answer(&line, &mut stream, service, queue, log);
            }
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if cancel.is_cancelled() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Executes one request line on the queue and writes the response line.
/// Returns `false` when the connection should close.
fn answer(
    raw: &[u8],
    stream: &mut Stream,
    service: &Arc<Service>,
    queue: &Arc<JobQueue>,
    log: bool,
) -> bool {
    let line = String::from_utf8_lossy(raw).trim().to_string();
    if line.is_empty() {
        return true;
    }
    // A `metrics` op is answered inline on the handler thread: it is the
    // one place the queue and store stats are both in scope, and a
    // snapshot should not wait behind queued synthesis jobs.
    if json_field(&line, "op").as_deref() == Some("metrics") {
        let started = Instant::now();
        sync_serve_gauges(&service.store().stats(), &queue.stats());
        let resp = Response {
            body: format!(
                "{{\"command\": \"metrics\", \"ok\": true, \"profile\": {}}}",
                si_obs::render_json(),
            ),
            cache_hit: false,
            reach_builds: 0,
            covers_reused: 0,
            covers_derived: 0,
        };
        let job_ms = started.elapsed().as_secs_f64() * 1e3;
        if log {
            log_job(&resp, job_ms);
        }
        let out = envelope(&resp, job_ms, &service.store().stats(), &queue.stats());
        return stream
            .write_all(out.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_ok();
    }
    let job_service = Arc::clone(service);
    let job_queue = Arc::clone(queue);
    let result = queue.submit(move || {
        let started = Instant::now();
        let resp = job_service.execute(&line);
        let job_ms = started.elapsed().as_secs_f64() * 1e3;
        if log {
            log_job(&resp, job_ms);
        }
        envelope(
            &resp,
            job_ms,
            &job_service.store().stats(),
            &job_queue.stats(),
        )
    });
    let out = match result {
        Ok(out) => out,
        // The panic was isolated by the queue; the connection gets a
        // structured error and stays usable.
        Err(detail) => envelope(
            &Response {
                body: panic_body(&detail),
                cache_hit: false,
                reach_builds: 0,
                covers_reused: 0,
                covers_derived: 0,
            },
            0.0,
            &service.store().stats(),
            &queue.stats(),
        ),
    };
    stream
        .write_all(out.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn json_field(text: &str, key: &str) -> Option<String> {
    json::parse(text)
        .ok()
        .and_then(|v| v.get(key).and_then(json::Value::as_str).map(String::from))
}

fn log_job(resp: &Response, job_ms: f64) {
    let command = json_field(&resp.body, "command").unwrap_or_else(|| "?".to_string());
    si_obs::log_line(&format!(
        "serve: {command} cache_hit={} job_ms={job_ms:.1} reach_builds={} \
         covers_reused={} covers_derived={}",
        resp.cache_hit, resp.reach_builds, resp.covers_reused, resp.covers_derived,
    ));
}
