//! Persistent synthesis service.
//!
//! A long-running server that accepts synthesis jobs over a Unix or TCP
//! socket, speaking line-delimited JSON: one request object per line in,
//! one response object per line out. The response vocabulary extends the
//! CLI's `--json` reports (`sisyn synth --json` and friends) with a
//! volatile envelope — `cache_hit`, `job_ms`, per-run artifact counters
//! and the current store/queue statistics.
//!
//! What makes the server worth keeping alive is the **content-addressed
//! artifact store** ([`ArtifactStore`]): specs are canonicalized
//! ([`si_stg::canonical_g`]) and hashed, and every expensive intermediate
//! — the reachability summary, each signal's derived cover clusters, the
//! finished response — is stored under a content/fingerprint key, in
//! memory up to a byte budget and spilled to disk beyond it. A repeated
//! request is answered without building anything; an edit to one signal
//! of a spec re-derives only the covers whose fingerprints changed, with
//! [`si_core::revalidate_clusters`] re-checking every reused artifact
//! against the current context so reuse stays sound whatever the cache
//! says. Jobs run on a bounded worker pool ([`JobQueue`]) with
//! panic-isolated execution, and SIGINT drains in-flight work before the
//! server exits.
//!
//! Layering: [`json`] (wire values) → [`store`] (artifacts) → [`queue`]
//! (execution) → [`service`] (request semantics) → [`server`] / [`client`]
//! (sockets) → [`cli`] (the `sisyn serve` / `sisyn submit` subcommands).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod client;
pub mod json;
pub mod queue;
pub mod server;
pub mod service;
pub mod store;

pub use client::submit_lines;
pub use queue::{JobQueue, QueueStats};
pub use server::{serve, ServerConfig};
pub use service::{envelope, Request, Response, Service};
pub use store::{ArtifactStore, StoreStats};
