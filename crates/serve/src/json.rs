//! Minimal JSON: a recursive-descent parser and string escaping.
//!
//! The workspace ships no serde (offline build environment), and the CLI
//! already emits its `--json` reports by hand. The server side additionally
//! needs to *read* requests and cached response objects, so this module
//! provides the smallest JSON value model that covers the wire protocol.
//! Numbers are kept as `f64` — protocol numbers are small counters; the
//! one potentially huge value (`spec_states`, a `u128`) is only ever
//! emitted, never parsed back by the server.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted map — key order is not significant in JSON).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` for absent fields and non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `usize` (floors; `None` on negatives).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Error from [`parse`], with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    at: usize,
    message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &'static str) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            message,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Value::Arr(items));
                    }
                    if !self.eat(b',') {
                        return self.err("expected , or ]");
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Value::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return self.err("expected :");
                    }
                    map.insert(key, self.value()?);
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Value::Obj(map));
                    }
                    if !self.eat(b',') {
                        return self.err("expected , or }");
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => self.err("bad number"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if !self.eat(b'"') {
            return self.err("expected string");
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("bad \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| JsonError {
                                    at: self.pos,
                                    message: "bad \\u escape",
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                at: self.pos,
                                message: "bad \\u escape",
                            })?;
                            // Surrogate pairs are not needed by the protocol;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            at: self.pos,
                            message: "invalid utf-8",
                        })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Parses one JSON value from `text` (trailing whitespace allowed,
/// trailing garbage is an error).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage");
    }
    Ok(v)
}

/// JSON string literal with minimal escaping (quotes, backslashes,
/// control characters) — the same convention the CLI's `--json` uses.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"op": "synth", "spec": ".model m\n", "options": {"cap": 1000}, "tags": [1, true, null]}"#)
            .unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("synth"));
        assert_eq!(v.get("spec").and_then(Value::as_str), Some(".model m\n"));
        assert_eq!(
            v.get("options")
                .and_then(|o| o.get("cap"))
                .and_then(Value::as_usize),
            Some(1000)
        );
        match v.get("tags") {
            Some(Value::Arr(items)) => {
                assert_eq!(items[0], Value::Num(1.0));
                assert_eq!(items[1], Value::Bool(true));
                assert_eq!(items[2], Value::Null);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a \"b\"\\\n\tc\u{1}";
        let v = parse(&escape(nasty)).unwrap();
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }
}
