//! The submitting side: connect, send request lines, collect responses.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use crate::server::Endpoint;

/// Sends each request line to a running server and returns the response
/// line for each, in order.
///
/// # Errors
///
/// Connection or I/O failures; a server that closes early yields
/// `UnexpectedEof`.
pub fn submit_lines(endpoint: &Endpoint, lines: &[String]) -> io::Result<Vec<String>> {
    match endpoint {
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path)?;
            exchange(&stream, &stream, lines)
        }
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr.as_str())?;
            exchange(&stream, &stream, lines)
        }
    }
}

fn exchange<W: Write, R: io::Read>(mut tx: W, rx: R, lines: &[String]) -> io::Result<Vec<String>> {
    let mut reader = BufReader::new(rx);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        tx.write_all(line.as_bytes())?;
        tx.write_all(b"\n")?;
        tx.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            ));
        }
        responses.push(response.trim_end().to_string());
    }
    Ok(responses)
}
