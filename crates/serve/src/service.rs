//! Request execution over the artifact store.
//!
//! One [`Service`] holds the shared [`ArtifactStore`] and turns a request
//! line into a response body. Every spec is first *canonicalized*
//! ([`si_stg::canonical_g`]) and reparsed, so identifiers, cube columns
//! and implicit place names are identical across sessions and textual
//! permutations of the same STG — the content hash of the canonical text
//! is the spec's identity.
//!
//! Artifacts are keyed content-addressed:
//!
//! | key              | payload                                        |
//! |------------------|------------------------------------------------|
//! | `resp:<job>`     | the cached core response body of a job         |
//! | `manifest:<job>` | the sub-artifact keys the response was built on |
//! | `reach:<spec>`   | the spec's [`ReachSummary`] wire form          |
//! | `cover:<fp>`     | one signal's derived clusters (wire form)      |
//!
//! `<job>` hashes (op, canonical spec, the options that determine the
//! *outcome*); resource knobs — `cap`, `shards`, `timeout_ms` — are
//! deliberately excluded, and only conclusive responses are cached, so a
//! budget-starved run never poisons the cache for a better-funded rerun.
//! `<fp>` is [`si_core::signal_fingerprint`]: a per-signal digest of the
//! structural covers, so a one-signal edit re-derives only the covers it
//! dirtied. Reuse stays sound independently of the digest because every
//! cached cluster set is re-checked against the current context by
//! [`si_core::revalidate_clusters`] before it is realized.

use std::sync::Arc;
use std::time::Duration;

use si_boolean::hash::{fnv1a_64, Fnv64};
use si_boolean::MinimizerChoice;
use si_core::{
    clusters_from_wire, clusters_to_wire, derive_clusters, map_circuit, realize_clusters,
    revalidate_clusters, signal_fingerprint, to_verilog, Architecture, Backend, Circuit,
    CscVerdict, Engine, MinimizeStages, Synthesis, SynthesisError, SynthesisOptions,
};
use si_csc::{CscOptions, EngineResolve, InsertionPlan, ResolveStats, Strategy};
use si_petri::{check_live_safe_fc, ReachError, ReachOptions, ReachSummary, StructuralCheck};
use si_stg::{canonical_g, parse_g, write_g, Stg, StgAnalysis};
use si_verify::{random_walks, EngineVerify};

use crate::json::{escape, parse, Value};
use crate::queue::QueueStats;
use crate::store::{ArtifactStore, StoreStats};

/// A parsed request: the operation plus the same knobs the CLI exposes
/// as flags, with the same defaults.
#[derive(Clone, Debug)]
pub struct Request {
    /// `check` | `synth` | `verify` | `resolve` | `stats`.
    pub op: String,
    /// The `.g` spec text (empty for `stats`).
    pub spec: String,
    /// `--arch`.
    pub arch: Architecture,
    /// `--stages`.
    pub stages: MinimizeStages,
    /// `--minimizer`.
    pub minimizer: MinimizerChoice,
    /// `--cap` (`None` keeps the per-op default).
    pub cap: Option<usize>,
    /// `--shards`.
    pub shards: usize,
    /// `--budget` (resolve).
    pub budget: usize,
    /// `--strategy` (resolve).
    pub strategy: Strategy,
    /// `--backend` (check / verify).
    pub backend: Backend,
    /// `--timeout`.
    pub timeout: Option<Duration>,
}

/// The outcome of executing one request: the core response body (a JSON
/// object keyed like the CLI's `--json` reports) plus the volatile
/// execution facts the server splices into the final line.
#[derive(Clone, Debug)]
pub struct Response {
    /// Core JSON object (always starts with `{`).
    pub body: String,
    /// Whether the body came straight from the response cache.
    pub cache_hit: bool,
    /// Reachability graphs built while executing (0 on a cache hit).
    pub reach_builds: usize,
    /// Per-signal cover artifacts revalidated and reused.
    pub covers_reused: usize,
    /// Per-signal cover artifacts derived fresh (and stored).
    pub covers_derived: usize,
}

impl Response {
    fn fresh(body: String) -> Self {
        Response {
            body,
            cache_hit: false,
            reach_builds: 0,
            covers_reused: 0,
            covers_derived: 0,
        }
    }

    fn error(op: &str, kind: &str, detail: &str) -> Self {
        Response::fresh(error_body(op, kind, detail))
    }
}

/// A structured error body in the CLI's error vocabulary.
fn error_body(op: &str, kind: &str, detail: &str) -> String {
    format!(
        "{{\"command\": {}, \"ok\": false, \"error\": {{\"kind\": {}, \"detail\": {}, \"states_explored\": 0}}}}",
        escape(op),
        escape(kind),
        escape(detail),
    )
}

/// The stable CLI identifier of an architecture.
fn arch_name(arch: Architecture) -> &'static str {
    match arch {
        Architecture::ComplexGate => "complex",
        Architecture::ExcitationFunction => "excitation",
        Architecture::PerRegion => "per-region",
    }
}

fn stage_bits(stages: MinimizeStages) -> u64 {
    stages.expand as u64
        | (stages.merge as u64) << 1
        | (stages.complete as u64) << 2
        | (stages.collapse as u64) << 3
        | (stages.backward as u64) << 4
}

impl Request {
    /// Parses one request line. `Err` carries (op-or-`?`, detail).
    pub fn parse(line: &str) -> Result<Request, (String, String)> {
        let v = parse(line).map_err(|e| ("?".to_string(), e.to_string()))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| ("?".to_string(), "missing \"op\"".to_string()))?
            .to_string();
        let fail = |detail: String| (op.clone(), detail);
        let spec = v
            .get("spec")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let mut req = Request {
            op: op.clone(),
            spec,
            arch: Architecture::ExcitationFunction,
            stages: MinimizeStages::full(),
            minimizer: MinimizerChoice::Espresso,
            cap: None,
            shards: 1,
            budget: 100_000,
            strategy: Strategy::Greedy,
            backend: Backend::Explicit,
            timeout: None,
        };
        if let Some(a) = v.get("arch").and_then(Value::as_str) {
            req.arch = match a {
                "complex" => Architecture::ComplexGate,
                "excitation" => Architecture::ExcitationFunction,
                "per-region" => Architecture::PerRegion,
                other => return Err(fail(format!("unknown architecture {other:?}"))),
            };
        }
        match v.get("stages") {
            None => {}
            Some(Value::Str(s)) if s == "full" => {}
            Some(Value::Str(s)) if s == "none" => req.stages = MinimizeStages::none(),
            Some(Value::Num(n)) if *n >= 0.0 && *n <= 4.0 => {
                req.stages = MinimizeStages::stage(*n as usize);
            }
            Some(_) => {
                return Err(fail(
                    "bad \"stages\" (0..4, \"full\" or \"none\")".to_string(),
                ))
            }
        }
        if let Some(m) = v.get("minimizer").and_then(Value::as_str) {
            req.minimizer = m.parse().map_err(|e: String| fail(e))?;
        }
        if let Some(c) = v.get("cap") {
            let n = c
                .as_usize()
                .filter(|&n| n > 0)
                .ok_or_else(|| fail("\"cap\" must be a positive number".to_string()))?;
            req.cap = Some(n);
        }
        if let Some(s) = v.get("shards") {
            req.shards = s
                .as_usize()
                .filter(|&n| n > 0)
                .ok_or_else(|| fail("\"shards\" must be a positive number".to_string()))?;
        }
        if let Some(b) = v.get("budget") {
            req.budget = b
                .as_usize()
                .ok_or_else(|| fail("\"budget\" must be a number".to_string()))?;
        }
        if let Some(s) = v.get("strategy").and_then(Value::as_str) {
            req.strategy = s.parse().map_err(|e: String| fail(e))?;
        }
        if let Some(b) = v.get("backend").and_then(Value::as_str) {
            req.backend =
                Backend::parse(b).ok_or_else(|| fail(format!("unknown backend {b:?}")))?;
        }
        if let Some(t) = v.get("timeout_ms") {
            let ms = t
                .as_usize()
                .ok_or_else(|| fail("\"timeout_ms\" must be a number".to_string()))?;
            req.timeout = Some(Duration::from_millis(ms as u64));
        }
        Ok(req)
    }

    /// Reachability options for an oracle whose per-op default cap is
    /// `default_cap` — mirroring the CLI's `Args::reach`, minus the
    /// SIGINT token: queued jobs drain to completion on shutdown.
    fn reach(&self, default_cap: usize) -> ReachOptions {
        let mut reach = ReachOptions::with_cap(self.cap.unwrap_or(default_cap)).shards(self.shards);
        if let Some(d) = self.timeout {
            reach = reach.timeout(d);
        }
        reach
    }

    fn synthesis(&self) -> SynthesisOptions {
        SynthesisOptions {
            architecture: self.arch,
            stages: self.stages,
            minimizer: self.minimizer,
        }
    }

    /// The job key: a digest of the canonical spec and every option that
    /// determines the *outcome* of this op. Resource knobs (cap, shards,
    /// timeout) are excluded — they decide whether a run finishes, not
    /// what a finished run reports, and only conclusive runs are cached.
    fn job_key(&self, canonical_spec: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("job-v1");
        h.write_str(&self.op);
        h.write_str(canonical_spec);
        h.write_str(arch_name(self.arch));
        h.write_u64(stage_bits(self.stages));
        h.write_str(self.minimizer.name());
        match self.op.as_str() {
            "check" | "verify" => {
                h.write_str(self.backend.as_str());
            }
            "resolve" => {
                h.write_usize(self.budget);
                h.write_str(self.strategy.name());
            }
            _ => {}
        }
        h.finish()
    }
}

/// The request executor: parses, canonicalizes, consults the store,
/// runs the engine, and writes new artifacts back.
#[derive(Debug)]
pub struct Service {
    store: Arc<ArtifactStore>,
}

impl Service {
    /// A service over `store`.
    pub fn new(store: Arc<ArtifactStore>) -> Self {
        Service { store }
    }

    /// The shared artifact store.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// Executes one request line.
    pub fn execute(&self, line: &str) -> Response {
        let _span = si_obs::span("serve.execute");
        let t0 = std::time::Instant::now();
        let resp = self.execute_inner(line);
        if si_obs::enabled() {
            // Per-op latency, keyed by the command the response names —
            // cache hits included, so the histogram shows what clients
            // actually experienced.
            si_obs::histogram_record(
                op_latency_metric(&resp.body),
                t0.elapsed().as_micros() as u64,
            );
            if resp.cache_hit {
                si_obs::counter_inc("serve.cache_hits");
            }
        }
        resp
    }

    fn execute_inner(&self, line: &str) -> Response {
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err((op, detail)) => return Response::error(&op, "bad-request", &detail),
        };
        if req.op == "stats" {
            return Response::fresh("{\"command\": \"stats\", \"ok\": true}".to_string());
        }
        if !matches!(req.op.as_str(), "check" | "synth" | "verify" | "resolve") {
            return Response::error(
                &req.op,
                "bad-request",
                "unknown op (expected check, synth, verify, resolve, stats or metrics)",
            );
        }
        let parsed = match parse_g(&req.spec) {
            Ok(stg) => stg,
            Err(e) => return Response::error(&req.op, "parse-error", &e.to_string()),
        };
        // Work on the canonical reparse: node ids, cube columns and
        // implicit place names are then identical for every textual
        // permutation of the same STG, so per-signal fingerprints and
        // cluster wire forms transfer across sessions.
        let canon = canonical_g(&parsed);
        let stg = parse_g(&canon).expect("canonical form reparses");
        let spec_hash = fnv1a_64(canon.as_bytes());
        let job = req.job_key(&canon);
        let resp_key = format!("resp:{job:016x}");
        if let Some(body) = self.store.get(&resp_key) {
            return Response {
                body,
                cache_hit: true,
                reach_builds: 0,
                covers_reused: 0,
                covers_derived: 0,
            };
        }
        let run = match req.op.as_str() {
            "check" => self.run_check(&stg, spec_hash, &req),
            "synth" => self.run_synth(&stg, &req),
            "verify" => self.run_verify(&stg, spec_hash, &req),
            _ => self.run_resolve(&stg, &req),
        };
        if run.conclusive {
            self.store.put(&resp_key, &run.response.body);
            let manifest = format!("manifest-v1\n{}\n", run.manifest.join("\n"));
            self.store.put(&format!("manifest:{job:016x}"), &manifest);
        }
        run.response
    }

    /// Imports the spec's cached reachability summary into `engine`, or
    /// records after the run whichever graph the engine built. Returns
    /// the artifact key when the summary participated.
    fn import_summary<'a>(
        &self,
        engine: Engine<'a>,
        spec_hash: u64,
    ) -> (Engine<'a>, Option<String>) {
        let key = format!("reach:{spec_hash:016x}");
        match self
            .store
            .get(&key)
            .and_then(|wire| ReachSummary::from_wire(&wire).ok())
        {
            Some(summary) => (engine.reach_summary(summary), Some(key)),
            None => (engine, None),
        }
    }

    fn export_summary(&self, engine: &Engine<'_>, spec_hash: u64, manifest: &mut Vec<String>) {
        if let Some(summary) = engine.export_reach_summary() {
            let key = format!("reach:{spec_hash:016x}");
            self.store.put(&key, &summary.to_wire());
            if !manifest.contains(&key) {
                manifest.push(key);
            }
        }
    }

    fn run_check(&self, stg: &Stg, spec_hash: u64, req: &Request) -> Run {
        let engine = Engine::new(stg)
            .reach(req.reach(100_000))
            .options(req.synthesis())
            .backend(req.backend);
        let (engine, summary_key) = self.import_summary(engine, spec_hash);
        let mut manifest: Vec<String> = summary_key.into_iter().collect();

        let count = engine.spec_state_count();
        let live_safe = matches!(check_live_safe_fc(stg.net()), StructuralCheck::Ok);
        let consistent = StgAnalysis::analyze(stg).is_ok();
        let analysis = engine.analyze();
        // The structural CSC verdict is conservative; a non-default
        // backend settles an unknown exactly, as `sisyn check` does.
        let (csc, csc_ok, csc_conclusive) = match &analysis {
            Ok(a) => match &a.csc {
                CscVerdict::UscHolds => ("usc-holds", true, true),
                CscVerdict::CscHolds => ("csc-holds", true, true),
                CscVerdict::Unknown { .. } if req.backend != Backend::Explicit => {
                    match engine.symbolic().ok().and_then(|s| s.has_csc()) {
                        Some(true) => ("csc-holds", true, true),
                        Some(false) => ("csc-violation", false, true),
                        None => ("unknown", false, false),
                    }
                }
                CscVerdict::Unknown { .. } => ("unknown", false, true),
            },
            Err(_) => ("unknown", false, true),
        };
        self.export_summary(&engine, spec_hash, &mut manifest);

        let count_conclusive = match &count {
            Ok(_) => true,
            Err(e) => !e.is_inconclusive(),
        };
        let ok = live_safe && consistent && csc_ok && analysis.is_ok();
        let (conflicts, rounds, sm, cubes) = match &analysis {
            Ok(a) => (
                a.conflicts.to_string(),
                a.refinement_rounds.to_string(),
                a.sm_count.to_string(),
                a.place_cover_cubes.to_string(),
            ),
            Err(_) => ("null".into(), "null".into(), "null".into(), "null".into()),
        };
        let body = format!(
            "{{\"command\": \"check\", \"ok\": {ok}, \"model\": {}, \
             \"signals\": {}, \"transitions\": {}, \"places\": {}, \
             \"free_choice\": {}, \"spec_states\": {}, \"backend\": {}, \
             \"live_safe\": {live_safe}, \"consistent\": {consistent}, \
             \"conflicts\": {conflicts}, \"refinement_rounds\": {rounds}, \
             \"sm_count\": {sm}, \"place_cover_cubes\": {cubes}, \
             \"csc\": {}, \"analysis_error\": {}}}",
            escape(stg.name()),
            stg.signal_count(),
            stg.net().transition_count(),
            stg.net().place_count(),
            stg.net().is_free_choice(),
            count.as_ref().map_or("null".to_string(), u128::to_string),
            escape(req.backend.as_str()),
            escape(csc),
            analysis
                .as_ref()
                .err()
                .map_or("null".to_string(), |e| escape(&e.to_string())),
        );
        Run {
            response: Response {
                reach_builds: engine.reach_build_count(),
                ..Response::fresh(body)
            },
            conclusive: count_conclusive && csc_conclusive,
            manifest,
        }
    }

    /// The per-signal cached synthesis path: for every synthesized
    /// signal, try `cover:<fingerprint>` → parse → revalidate against
    /// the *current* context → realize; fall back to a fresh derivation
    /// (stored for next time). The assembled [`Synthesis`] is
    /// result-identical to [`si_core::synthesize_with_context`].
    fn synthesize_cached(
        &self,
        engine: &Engine<'_>,
        stg: &Stg,
        options: &SynthesisOptions,
    ) -> Result<(Synthesis, usize, usize, Vec<String>), SynthesisError> {
        let ctx = engine.context()?;
        let csc = ctx.csc_verdict();
        if let CscVerdict::Unknown { places } = &csc {
            return Err(SynthesisError::CscViolationPossible {
                places: places.clone(),
            });
        }
        let mut results = Vec::new();
        let (mut reused, mut derived) = (0usize, 0usize);
        let mut manifest = Vec::new();
        for signal in stg.synthesized_signals() {
            let fp = signal_fingerprint(ctx, signal, options);
            let key = format!("cover:{fp:016x}");
            let cached = self
                .store
                .get(&key)
                .and_then(|wire| clusters_from_wire(stg, &wire))
                .filter(|c| c.signal == signal)
                .filter(|c| revalidate_clusters(ctx, c, options));
            let clusters = match cached {
                Some(clusters) => {
                    reused += 1;
                    clusters
                }
                None => {
                    let clusters = derive_clusters(ctx, signal, options)?;
                    self.store.put(&key, &clusters_to_wire(stg, &clusters));
                    derived += 1;
                    clusters
                }
            };
            manifest.push(format!("{key} signal={}", stg.signal_name(signal)));
            results.push(realize_clusters(ctx, &clusters, options));
        }
        let circuit = Circuit {
            implementations: results.iter().map(|r| r.implementation.clone()).collect(),
        };
        let literal_area = circuit.literal_area();
        Ok((
            Synthesis {
                results,
                circuit,
                literal_area,
                refinement_rounds: ctx.refinement_rounds,
                place_cover_cubes: ctx.total_cubes(),
                sm_count: ctx.sm_cover.len(),
                csc,
            },
            reused,
            derived,
            manifest,
        ))
    }

    fn run_synth(&self, stg: &Stg, req: &Request) -> Run {
        let options = req.synthesis();
        let engine = Engine::new(stg)
            .reach(req.reach(4_000_000))
            .options(options);
        match self.synthesize_cached(&engine, stg, &options) {
            Ok((syn, reused, derived, manifest)) => {
                let mapped = map_circuit(&syn.circuit);
                let body = format!(
                    "{{\"command\": \"synth\", \"ok\": true, \"model\": {}, \
                     \"architecture\": {}, \"minimizer\": {}, \
                     \"signals\": {}, \"literal_area\": {}, \"mapped_area\": {}, \
                     \"place_cover_cubes\": {}, \"sm_count\": {}, \
                     \"refinement_rounds\": {}, \"verilog\": {}}}",
                    escape(stg.name()),
                    escape(arch_name(req.arch)),
                    escape(req.minimizer.name()),
                    syn.results.len(),
                    syn.literal_area,
                    mapped.area,
                    syn.place_cover_cubes,
                    syn.sm_count,
                    syn.refinement_rounds,
                    escape(&to_verilog(stg, &syn.circuit)),
                );
                Run {
                    response: Response {
                        covers_reused: reused,
                        covers_derived: derived,
                        reach_builds: engine.reach_build_count(),
                        ..Response::fresh(body)
                    },
                    conclusive: true,
                    manifest,
                }
            }
            Err(e) => Run {
                response: Response::error(&req.op, synthesis_error_kind(&e), &e.to_string()),
                // Structural failures are deterministic verdicts about the
                // spec; a worker panic is not.
                conclusive: !matches!(e, SynthesisError::WorkerPanicked { .. }),
                manifest: Vec::new(),
            },
        }
    }

    fn run_verify(&self, stg: &Stg, spec_hash: u64, req: &Request) -> Run {
        let options = req.synthesis();
        let engine = Engine::new(stg)
            .reach(req.reach(4_000_000))
            .options(options)
            .backend(req.backend);
        let (engine, summary_key) = self.import_summary(engine, spec_hash);
        let mut manifest: Vec<String> = summary_key.into_iter().collect();
        let (syn, reused, derived, cover_manifest) = match self
            .synthesize_cached(&engine, stg, &options)
        {
            Ok(parts) => parts,
            Err(e) => {
                return Run {
                    response: Response::error(&req.op, synthesis_error_kind(&e), &e.to_string()),
                    conclusive: !matches!(e, SynthesisError::WorkerPanicked { .. }),
                    manifest: Vec::new(),
                }
            }
        };
        manifest.extend(cover_manifest);
        let volatile = |resp: Response| Response {
            covers_reused: reused,
            covers_derived: derived,
            reach_builds: engine.reach_build_count(),
            ..resp
        };
        let reach_failed = |e: &ReachError| Run {
            response: volatile(Response::fresh(format!(
                "{{\"command\": \"verify\", \"ok\": false, \"inconclusive\": {}, \
                 \"model\": {}, \"error\": {}}}",
                e.is_inconclusive(),
                escape(stg.name()),
                reach_error_json(e),
            ))),
            conclusive: !e.is_inconclusive(),
            manifest: Vec::new(),
        };
        let functional = match engine.verify(&syn.circuit) {
            Ok(report) => report,
            Err(e) => return reach_failed(&e),
        };
        let conformance = match engine.check_conformance(&syn.circuit) {
            Ok(report) => report,
            Err(e) => return reach_failed(&e),
        };
        let sim = random_walks(stg, &syn.circuit, 4, 4000, 7);
        self.export_summary(&engine, spec_hash, &mut manifest);
        let spec_states = engine.spec_state_count().ok();
        let symbolic = (req.backend == Backend::Symbolic)
            .then(|| {
                engine
                    .symbolic_reach()
                    .ok()
                    .map(|s| (s.iterations(), s.peak_nodes()))
            })
            .flatten();
        let failed = !functional.is_ok() || !conformance.is_ok() || !sim.is_clean();
        let inconclusive = !functional.is_conclusive() || !conformance.is_conclusive();
        let ok = !failed && !inconclusive;
        let trace = functional.trace.as_ref().or(conformance.trace.as_ref());
        let trace_json = trace.map_or("null".to_string(), |ts| {
            format!(
                "[{}]",
                ts.iter()
                    .map(|&t| escape(stg.net().transition_name(t)))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        });
        let body = format!(
            "{{\"command\": \"verify\", \"ok\": {ok}, \"inconclusive\": {inconclusive}, \
             \"model\": {}, \"backend\": {}, \"spec_states\": {}, \"symbolic\": {}, \
             \"functional_ok\": {}, \"violations\": {}, \"states_checked\": {}, \
             \"conformance_ok\": {}, \"conformance_failures\": {}, \
             \"states_explored\": {}, \"trace\": {trace_json}, \
             \"random_walks_ok\": {}, \"literal_area\": {}, \"minimizer\": {}}}",
            escape(stg.name()),
            escape(req.backend.as_str()),
            spec_states.map_or("null".to_string(), |n| n.to_string()),
            symbolic.map_or("null".to_string(), |(iterations, peak)| format!(
                "{{\"iterations\": {iterations}, \"peak_nodes\": {peak}}}"
            )),
            functional.is_ok(),
            functional.violations.len(),
            functional.states_checked,
            conformance.is_ok(),
            conformance.failures.len(),
            conformance.states_explored,
            sim.is_clean(),
            syn.literal_area,
            escape(req.minimizer.name()),
        );
        Run {
            response: volatile(Response::fresh(body)),
            conclusive: !inconclusive,
            manifest,
        }
    }

    fn run_resolve(&self, stg: &Stg, req: &Request) -> Run {
        let engine = Engine::new(stg)
            .reach(req.reach(1_000_000))
            .options(req.synthesis());
        let options = CscOptions::default()
            .budget(req.budget)
            .strategy(req.strategy)
            .reach(req.reach(1_000_000));
        let outcome = engine.resolve_csc_outcome(&options);
        let stats = &outcome.stats;
        let run = |body, conclusive| Run {
            response: Response {
                reach_builds: engine.reach_build_count(),
                ..Response::fresh(body)
            },
            conclusive,
            manifest: Vec::new(),
        };
        match outcome.resolution {
            Some(resolution) => run(
                format!(
                    "{{\"command\": \"resolve\", \"ok\": true, \"model\": {}, \
                     \"signals_before\": {}, \"signals_after\": {}, \
                     \"plan\": {}, \"cost\": {}, \"stats\": {}, \"resolved\": {}}}",
                    escape(stg.name()),
                    stg.signal_count(),
                    resolution.stg.signal_count(),
                    plan_json(stg, &resolution.plan),
                    resolution.cost,
                    stats_json(stats),
                    escape(&write_g(&resolution.stg)),
                ),
                true,
            ),
            None => {
                let (kind, detail) = match stats.interrupted {
                    Some(i) => (
                        i.reason.as_str(),
                        "candidate search interrupted before a resolution was found",
                    ),
                    None => (
                        "no-resolution",
                        "no single-signal insertion found within budget",
                    ),
                };
                run(
                    format!(
                        "{{\"command\": \"resolve\", \"ok\": false, \
                         \"inconclusive\": {}, \"model\": {}, \"error\": {}, \
                         \"stats\": {}, \"resolved\": null}}",
                        stats.interrupted.is_some(),
                        escape(stg.name()),
                        error_json(kind, detail, stats.evaluated),
                        stats_json(stats),
                    ),
                    stats.interrupted.is_none(),
                )
            }
        }
    }
}

struct Run {
    response: Response,
    conclusive: bool,
    manifest: Vec<String>,
}

/// The per-op latency histogram name for a response body, keyed by its
/// `"command"` prefix (the body always leads with it, so a prefix probe
/// avoids reparsing the JSON on every job).
fn op_latency_metric(body: &str) -> &'static str {
    for (op, metric) in [
        ("check", "serve.op.check_us"),
        ("synth", "serve.op.synth_us"),
        ("verify", "serve.op.verify_us"),
        ("resolve", "serve.op.resolve_us"),
        ("stats", "serve.op.stats_us"),
    ] {
        if body.starts_with(&format!("{{\"command\": \"{op}\"")) {
            return metric;
        }
    }
    "serve.op.other_us"
}

fn synthesis_error_kind(e: &SynthesisError) -> &'static str {
    match e {
        SynthesisError::WorkerPanicked { .. } => "worker-panicked",
        _ => "synthesis-failed",
    }
}

fn error_json(kind: &str, detail: &str, states_explored: usize) -> String {
    format!(
        "{{\"kind\": {}, \"detail\": {}, \"states_explored\": {states_explored}}}",
        escape(kind),
        escape(detail),
    )
}

fn reach_error_json(e: &ReachError) -> String {
    let (kind, states, elapsed_ms) = match e {
        ReachError::StateCapExceeded { cap } => ("cap-exceeded", *cap, 0),
        ReachError::Interrupted {
            reason,
            states_explored,
            elapsed_ms,
        } => (reason.as_str(), *states_explored, *elapsed_ms),
        ReachError::WorkerPanicked { .. } => ("worker-panicked", 0, 0),
        ReachError::NotSafe { .. } => ("not-safe", 0, 0),
    };
    format!(
        "{{\"kind\": {}, \"detail\": {}, \"states_explored\": {states}, \
         \"elapsed_ms\": {elapsed_ms}}}",
        escape(kind),
        escape(&e.to_string()),
    )
}

fn stats_json(stats: &ResolveStats) -> String {
    let interrupted = match stats.interrupted {
        None => "null".to_string(),
        Some(i) => format!(
            "{{\"reason\": {}, \"candidates_evaluated\": {}}}",
            escape(i.reason.as_str()),
            i.states_explored
        ),
    };
    format!(
        "{{\"strategy\": {}, \"cores\": {}, \"candidates_generated\": {}, \
         \"candidates_evaluated\": {}, \"candidates_rejected\": {}, \
         \"candidates_panicked\": {}, \"oracle_calls\": {}, \
         \"oracle_rejected\": {}, \"interrupted\": {interrupted}, \
         \"wall_ms\": {:.3}}}",
        escape(stats.strategy.name()),
        stats.cores,
        stats.generated,
        stats.evaluated,
        stats.rejected,
        stats.panicked,
        stats.oracle_calls,
        stats.oracle_rejected,
        stats.wall_ms,
    )
}

fn plan_json(stg: &Stg, plan: &InsertionPlan) -> String {
    if plan.rise_split == plan.fall_split {
        return "null".to_string(); // sentinel: input already satisfied CSC
    }
    let net = stg.net();
    let waits = plan
        .rise_waits
        .iter()
        .map(|&(t, marked)| {
            format!(
                "{{\"after\": {}, \"marked\": {marked}}}",
                escape(&stg.transition_display(t))
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"rise_split\": {}, \"fall_split\": {}, \"rise_waits\": [{waits}]}}",
        escape(net.place_name(plan.rise_split)),
        escape(net.place_name(plan.fall_split)),
    )
}

/// Splices the volatile execution facts and the current counters into a
/// core response body: the wire line every client sees. The core object
/// is cached verbatim; this wrapper is recomputed per send, so `cache_hit`
/// and the counters stay truthful on hits.
pub fn envelope(resp: &Response, job_ms: f64, store: &StoreStats, queue: &QueueStats) -> String {
    debug_assert!(resp.body.starts_with('{'));
    format!(
        "{{\"cache_hit\": {}, \"job_ms\": {job_ms:.3}, \"reach_builds\": {}, \
         \"covers_reused\": {}, \"covers_derived\": {}, \
         \"store\": {{\"hits\": {}, \"disk_hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"disk_writes\": {}, \"mem_bytes\": {}, \
         \"mem_entries\": {}}}, \
         \"queue\": {{\"submitted\": {}, \"executed\": {}, \"panicked\": {}, \
         \"depth\": {}, \"busy_ms\": {}}}, {}",
        resp.cache_hit,
        resp.reach_builds,
        resp.covers_reused,
        resp.covers_derived,
        store.hits,
        store.disk_hits,
        store.misses,
        store.evictions,
        store.disk_writes,
        store.mem_bytes,
        store.mem_entries,
        queue.submitted,
        queue.executed,
        queue.panicked,
        queue.depth,
        queue.busy_ms,
        &resp.body[1..],
    )
}

/// A worker-panic response for a job that never produced a body.
pub fn panic_body(detail: &str) -> String {
    error_body("?", "worker-panicked", detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ArtifactStore;

    fn service() -> Service {
        Service::new(Arc::new(ArtifactStore::in_memory(8 << 20)))
    }

    fn spec() -> String {
        write_g(&si_stg::generators::clatch(2))
    }

    fn req(op: &str, spec: &str) -> String {
        format!("{{\"op\": {}, \"spec\": {}}}", escape(op), escape(spec))
    }

    #[test]
    fn bad_requests_are_structured_errors() {
        let s = service();
        for line in ["not json", "{}", "{\"op\": \"launder\"}"] {
            let r = s.execute(line);
            assert!(r.body.contains("\"ok\": false"), "{line}: {}", r.body);
            assert!(r.body.contains("bad-request"), "{line}: {}", r.body);
        }
        let r = s.execute(&req(
            "synth",
            ".model broken\n.inputs a\n.graph\na+\n.end\n",
        ));
        assert!(r.body.contains("parse-error"), "{}", r.body);
    }

    #[test]
    fn synth_caches_and_second_request_hits() {
        let s = service();
        let line = req("synth", &spec());
        let first = s.execute(&line);
        assert!(!first.cache_hit);
        assert_eq!(first.covers_derived, 1);
        assert!(first.body.contains("\"verilog\""));
        let second = s.execute(&line);
        assert!(second.cache_hit);
        assert_eq!(second.body, first.body);
        assert_eq!(second.covers_derived, 0);
    }

    #[test]
    fn permuted_spec_hits_the_same_response() {
        // Same STG, declarations in a different order: canonicalization
        // makes it the same job.
        let base = spec();
        let s = service();
        assert!(!s.execute(&req("synth", &base)).cache_hit);
        let permuted = base.replace(".inputs x0 x1", ".inputs x1 x0");
        assert_ne!(permuted, base);
        assert!(s.execute(&req("synth", &permuted)).cache_hit);
    }

    #[test]
    fn check_exports_then_imports_the_reach_summary() {
        let s = service();
        let line = req("check", &spec());
        let first = s.execute(&line);
        assert!(first.body.contains("\"spec_states\": 8"), "{}", first.body);
        assert_eq!(first.reach_builds, 1);
        // Different op options → different job key, but the reach
        // summary artifact is shared: no second graph build.
        let line2 = format!(
            "{{\"op\": \"check\", \"spec\": {}, \"arch\": \"complex\"}}",
            escape(&spec())
        );
        let second = s.execute(&line2);
        assert!(!second.cache_hit);
        assert_eq!(second.reach_builds, 0, "{}", second.body);
        assert!(
            second.body.contains("\"spec_states\": 8"),
            "{}",
            second.body
        );
    }

    #[test]
    fn verify_runs_end_to_end() {
        let s = service();
        let r = s.execute(&req("verify", &spec()));
        assert!(r.body.contains("\"command\": \"verify\""), "{}", r.body);
        assert!(r.body.contains("\"ok\": true"), "{}", r.body);
        assert!(s.execute(&req("verify", &spec())).cache_hit);
    }

    #[test]
    fn envelope_splices_cleanly() {
        let resp = Response::fresh("{\"command\": \"stats\", \"ok\": true}".to_string());
        let line = envelope(&resp, 1.5, &StoreStats::default(), &QueueStats::default());
        let v = crate::json::parse(&line).expect("envelope is valid json");
        assert_eq!(v.get("cache_hit").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("command").and_then(Value::as_str), Some("stats"));
        assert!(v.get("store").is_some() && v.get("queue").is_some());
    }
}
