//! The `sisyn serve` / `sisyn submit` subcommands.
//!
//! Both live here rather than in the binary so the socket protocol,
//! flag parsing and exit-code mapping are testable as library code; the
//! binary only forwards `argv` and its SIGINT token.

use std::io::Read;
use std::path::PathBuf;

use si_petri::CancelToken;

use crate::client::submit_lines;
use crate::json::{self, escape, Value};
use crate::server::{serve, Endpoint, ServerConfig};

/// Exit code of an inconclusive run (matches the CLI convention).
const EXIT_INCONCLUSIVE: u8 = 3;
/// Exit code for usage errors (matches the CLI convention).
const EXIT_USAGE: u8 = 2;

fn serve_usage() -> u8 {
    eprintln!(
        "usage: sisyn serve (--socket PATH | --tcp ADDR) [--workers N] \
         [--store-bytes N] [--store-dir DIR] [--log] [--metrics-addr ADDR]"
    );
    EXIT_USAGE
}

fn submit_usage() -> u8 {
    eprintln!(
        "usage: sisyn submit (--socket PATH | --tcp ADDR) \
         <check|synth|verify|resolve|stats|metrics> [SPEC.g] [-o FILE] \
         [--arch complex|excitation|per-region] [--stages 0..4|full|none] \
         [--minimizer espresso|exact|bdd|auto] [--cap N] [--shards N] \
         [--budget N] [--strategy greedy|beam] \
         [--backend explicit|symbolic|auto] [--timeout-ms N]"
    );
    EXIT_USAGE
}

/// Runs `sisyn serve ARGS` until `cancel` fires (Ctrl-C in the binary),
/// returning the process exit code.
pub fn serve_main(args: &[String], cancel: &CancelToken) -> u8 {
    let mut endpoint = None;
    let mut config_workers = 2usize;
    let mut store_bytes = 64usize << 20;
    let mut store_dir = None;
    let mut log = false;
    let mut metrics_addr = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => endpoint = Some(Endpoint::Unix(PathBuf::from(p))),
                None => return serve_usage(),
            },
            "--tcp" => match it.next() {
                Some(addr) => endpoint = Some(Endpoint::Tcp(addr.clone())),
                None => return serve_usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => config_workers = n,
                _ => return serve_usage(),
            },
            "--store-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => store_bytes = n,
                _ => return serve_usage(),
            },
            "--store-dir" => match it.next() {
                Some(d) => store_dir = Some(PathBuf::from(d)),
                None => return serve_usage(),
            },
            "--log" => log = true,
            "--metrics-addr" => match it.next() {
                Some(addr) => metrics_addr = Some(addr.clone()),
                None => return serve_usage(),
            },
            other => {
                eprintln!("unexpected argument {other:?}");
                return serve_usage();
            }
        }
    }
    let Some(endpoint) = endpoint else {
        return serve_usage();
    };
    let config = ServerConfig {
        endpoint,
        workers: config_workers,
        store_bytes,
        store_dir,
        log,
        metrics_addr,
    };
    match serve(&config, cancel) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

/// Runs `sisyn submit ARGS`: builds one request from the flags, sends
/// it, prints the response line and maps it to the CLI exit codes
/// (0 ok, 1 failed, 3 inconclusive).
pub fn submit_main(args: &[String]) -> u8 {
    let mut endpoint = None;
    let mut op = None;
    let mut spec_path = None;
    let mut output = None;
    // (json key, json value) pairs forwarded verbatim into the request.
    let mut fields: Vec<(&'static str, String)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut str_field = |key: &'static str, it: &mut std::slice::Iter<'_, String>| {
            it.next().map(|v| fields.push((key, escape(v))))
        };
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => endpoint = Some(Endpoint::Unix(PathBuf::from(p))),
                None => return submit_usage(),
            },
            "--tcp" => match it.next() {
                Some(addr) => endpoint = Some(Endpoint::Tcp(addr.clone())),
                None => return submit_usage(),
            },
            "-o" => match it.next() {
                Some(p) => output = Some(p.clone()),
                None => return submit_usage(),
            },
            "--arch" => {
                if str_field("arch", &mut it).is_none() {
                    return submit_usage();
                }
            }
            "--minimizer" => {
                if str_field("minimizer", &mut it).is_none() {
                    return submit_usage();
                }
            }
            "--strategy" => {
                if str_field("strategy", &mut it).is_none() {
                    return submit_usage();
                }
            }
            "--backend" => {
                if str_field("backend", &mut it).is_none() {
                    return submit_usage();
                }
            }
            "--stages" => match it.next() {
                Some(v) if v == "full" || v == "none" => fields.push(("stages", escape(v))),
                Some(v) if v.parse::<u8>().is_ok_and(|n| n <= 4) => {
                    fields.push(("stages", v.clone()));
                }
                _ => return submit_usage(),
            },
            "--cap" | "--shards" | "--budget" | "--timeout-ms" => {
                let key = match a.as_str() {
                    "--cap" => "cap",
                    "--shards" => "shards",
                    "--budget" => "budget",
                    _ => "timeout_ms",
                };
                match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) => fields.push((key, n.to_string())),
                    None => return submit_usage(),
                }
            }
            _ if op.is_none() => op = Some(a.clone()),
            _ if spec_path.is_none() => spec_path = Some(a.clone()),
            other => {
                eprintln!("unexpected argument {other:?}");
                return submit_usage();
            }
        }
    }
    let (Some(endpoint), Some(op)) = (endpoint, op) else {
        return submit_usage();
    };
    if !matches!(op.as_str(), "stats" | "metrics") {
        let Some(path) = spec_path else {
            eprintln!("{op} needs a SPEC.g argument");
            return submit_usage();
        };
        let spec = if path == "-" {
            let mut s = String::new();
            match std::io::stdin().read_to_string(&mut s) {
                Ok(_) => s,
                Err(e) => {
                    eprintln!("cannot read stdin: {e}");
                    return 1;
                }
            }
        } else {
            match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return 1;
                }
            }
        };
        fields.push(("spec", escape(&spec)));
    }
    let mut request = format!("{{\"op\": {}", escape(&op));
    for (key, value) in &fields {
        request.push_str(&format!(", \"{key}\": {value}"));
    }
    request.push('}');
    let response = match submit_lines(&endpoint, &[request]) {
        Ok(mut lines) => lines.remove(0),
        Err(e) => {
            eprintln!("submit: {e}");
            return 1;
        }
    };
    println!("{response}");
    response_exit(&response, output.as_deref())
}

/// Maps a response line to an exit code, writing the `-o` artifact
/// (synth's Verilog, resolve's `.g`) when present.
fn response_exit(response: &str, output: Option<&str>) -> u8 {
    let Ok(v) = json::parse(response) else {
        eprintln!("submit: malformed response");
        return 1;
    };
    if let Some(path) = output {
        let artifact = v
            .get("verilog")
            .or_else(|| v.get("resolved"))
            .and_then(Value::as_str);
        if let Some(text) = artifact {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    match v.get("ok").and_then(Value::as_bool) {
        Some(true) => 0,
        _ if v.get("inconclusive").and_then(Value::as_bool) == Some(true) => EXIT_INCONCLUSIVE,
        _ => 1,
    }
}
