//! Two-tier content-addressed artifact store.
//!
//! Artifacts are immutable byte strings addressed by a key of the form
//! `<kind>:<hex64>` — e.g. `reach:9f3a…` (a [`si_petri::ReachSummary`]
//! wire form), `cover:04c1…` (per-signal clusters from
//! [`si_core::clusters_to_wire`]), `resp:…` (a cached response body) or
//! `manifest:…` (the list of sub-artifact keys a response was assembled
//! from). The hex half is always a content / fingerprint hash, so a key
//! either names exactly the bytes that were stored under it or nothing:
//! collisions aside, the store never serves stale data, and the
//! consumers re-validate semantically anyway
//! ([`si_core::revalidate_clusters`]).
//!
//! Tier one is an in-memory LRU map whose footprint is governed by a
//! [`Budget`] byte ceiling (`check_soft` decides when to evict, so the
//! accounting convention matches the reachability explorers). Tier two
//! is an optional spill directory of hash-named files; puts write
//! through to it, and memory-evicted entries remain readable from disk
//! (a get promotes them back).

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use si_fault::{fail_point, relock};
use si_petri::{Budget, InterruptReason};

struct Entry {
    bytes: String,
    /// LRU clock value at last touch; smallest = coldest.
    touched: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    clock: u64,
    /// Approximate live footprint: key + value lengths of `map`.
    bytes: usize,
}

/// A point-in-time snapshot of the store counters, embedded in every
/// serve response (`"store": {...}`) and the `stats` reply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Gets answered from memory.
    pub hits: u64,
    /// Gets answered from the spill directory (entry promoted back).
    pub disk_hits: u64,
    /// Gets answered by neither tier.
    pub misses: u64,
    /// Entries pushed out of memory by the byte ceiling.
    pub evictions: u64,
    /// Files written to the spill directory.
    pub disk_writes: u64,
    /// Current approximate in-memory footprint.
    pub mem_bytes: u64,
    /// Current number of in-memory entries.
    pub mem_entries: u64,
}

/// The two-tier artifact store. All methods are `&self` and thread-safe;
/// jobs on the queue share one store behind an `Arc`.
#[derive(Debug)]
pub struct ArtifactStore {
    inner: Mutex<Inner>,
    budget: Budget,
    spill: Option<PathBuf>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    disk_writes: AtomicU64,
    write_seq: AtomicU64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("entries", &self.map.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// Keys use `:` as the kind separator; filenames substitute `_` so the
/// spill directory stays portable.
fn file_name(key: &str) -> String {
    key.replace(':', "_")
}

impl ArtifactStore {
    /// An in-memory-only store with at most `max_bytes` of live payload.
    pub fn in_memory(max_bytes: usize) -> Self {
        ArtifactStore::new(Budget::unbounded().max_bytes(max_bytes), None)
    }

    /// A store governed by `budget` (only its `max_bytes` dimension is
    /// consulted), spilling evictions to `spill` when given. The spill
    /// directory is created eagerly; an unusable directory degrades the
    /// store to memory-only rather than failing jobs.
    pub fn new(budget: Budget, spill: Option<PathBuf>) -> Self {
        let spill = spill.filter(|dir| fs::create_dir_all(dir).is_ok());
        ArtifactStore {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                bytes: 0,
            }),
            budget,
            spill,
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            write_seq: AtomicU64::new(0),
        }
    }

    /// The spill directory, if one is active.
    pub fn spill_dir(&self) -> Option<&PathBuf> {
        self.spill.as_ref()
    }

    /// Looks up `key`, checking memory first, then the spill directory
    /// (promoting a disk hit back into memory).
    pub fn get(&self, key: &str) -> Option<String> {
        {
            let mut inner = relock(&self.inner);
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(key) {
                entry.touched = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.bytes.clone());
            }
        }
        if let Some(dir) = &self.spill {
            if let Ok(bytes) = fs::read_to_string(dir.join(file_name(key))) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.insert_mem(key, &bytes);
                return Some(bytes);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `bytes` under `key`, writing through to the spill
    /// directory and evicting cold entries if the byte ceiling is now
    /// exceeded. Re-putting an existing key is a cheap no-op (the
    /// content is content-addressed, so the bytes are the same).
    pub fn put(&self, key: &str, bytes: &str) {
        fail_point!(
            "store::write",
            self.write_seq.fetch_add(1, Ordering::Relaxed)
        );
        if let Some(dir) = &self.spill {
            // Write to a temp name then rename, so readers never observe
            // a half-written artifact.
            let tmp = dir.join(format!("{}.tmp", file_name(key)));
            let ok = fs::File::create(&tmp)
                .and_then(|mut f| f.write_all(bytes.as_bytes()))
                .and_then(|()| fs::rename(&tmp, dir.join(file_name(key))))
                .is_ok();
            if ok {
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.insert_mem(key, bytes);
    }

    fn insert_mem(&self, key: &str, bytes: &str) {
        let mut inner = relock(&self.inner);
        inner.clock += 1;
        let clock = inner.clock;
        if inner.map.contains_key(key) {
            if let Some(entry) = inner.map.get_mut(key) {
                entry.touched = clock;
            }
            return;
        }
        inner.bytes += key.len() + bytes.len();
        inner.map.insert(
            key.to_string(),
            Entry {
                bytes: bytes.to_string(),
                touched: clock,
            },
        );
        // Evict coldest-first until the budget's byte dimension is
        // satisfied again. The entry just inserted is the warmest, so a
        // single oversized artifact can still end up alone in memory.
        while inner.map.len() > 1 {
            match self.budget.check_soft(inner.bytes) {
                Some(InterruptReason::MemoryExhausted) => {
                    let coldest = inner
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.touched)
                        .map(|(k, _)| k.clone())
                        .expect("non-empty map");
                    if let Some(entry) = inner.map.remove(&coldest) {
                        inner.bytes -= coldest.len() + entry.bytes.len();
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => break,
            }
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        let (mem_bytes, mem_entries) = {
            let inner = relock(&self.inner);
            (inner.bytes as u64, inner.map.len() as u64)
        };
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            mem_bytes,
            mem_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_counters() {
        let store = ArtifactStore::in_memory(1 << 20);
        assert_eq!(store.get("reach:00"), None);
        store.put("reach:00", "reach-v1 states=4 edges=6 safe=true");
        assert_eq!(
            store.get("reach:00").as_deref(),
            Some("reach-v1 states=4 edges=6 safe=true")
        );
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.mem_entries, 1);
    }

    #[test]
    fn lru_eviction_respects_byte_ceiling() {
        // Each entry is ~8 (key) + 100 (value) bytes; ceiling of 300
        // holds two entries comfortably, never four.
        let store = ArtifactStore::in_memory(300);
        let blob = "x".repeat(100);
        for i in 0..4 {
            store.put(&format!("cover:{i:02}"), &blob);
        }
        let s = store.stats();
        assert!(s.evictions >= 2, "evictions = {}", s.evictions);
        assert!(s.mem_bytes <= 300, "mem_bytes = {}", s.mem_bytes);
        // The most recent entry must survive.
        assert!(store.get("cover:03").is_some());
    }

    #[test]
    fn disk_spill_outlives_eviction() {
        let dir = std::env::temp_dir().join(format!("si-serve-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ArtifactStore::new(Budget::unbounded().max_bytes(150), Some(dir.clone()));
        let blob = "y".repeat(100);
        store.put("cover:aa", &blob);
        store.put("cover:bb", &blob); // evicts cover:aa from memory
        let s = store.stats();
        assert!(s.evictions >= 1);
        // Still readable: promoted back from the spill tier.
        assert_eq!(store.get("cover:aa").as_deref(), Some(blob.as_str()));
        assert!(store.stats().disk_hits >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reput_does_not_double_count() {
        let store = ArtifactStore::in_memory(1 << 20);
        store.put("resp:01", "hello");
        let before = store.stats().mem_bytes;
        store.put("resp:01", "hello");
        assert_eq!(store.stats().mem_bytes, before);
    }
}
