//! Bounded-concurrency job queue with panic isolation.
//!
//! A fixed pool of worker threads drains a FIFO of submitted jobs. Each
//! job is a closure producing the response line for one request; it runs
//! under [`si_fault::run_isolated`], so a panicking job (a synthesis bug,
//! or an armed `serve::job` failpoint) yields a structured error
//! response instead of taking a worker — let alone the queue or the
//! artifact store — down with it.
//!
//! Submission is synchronous from the caller's point of view: `submit`
//! enqueues and blocks on a per-job result slot. Connection handler
//! threads are the callers, so a slow job stalls only its own
//! connection while the pool keeps the others moving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use si_fault::{fail_point, relock, run_isolated};

type JobFn = Box<dyn FnOnce() -> String + Send + 'static>;

struct Job {
    run: JobFn,
    slot: Arc<Slot>,
    seq: u64,
    /// When `submit` enqueued the job — the queue-wait histogram's clock.
    submitted_at: Instant,
}

/// One-shot result mailbox shared between the submitter and a worker.
struct Slot {
    value: Mutex<Option<Result<String, String>>>,
    ready: Condvar,
}

/// A point-in-time snapshot of the queue counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs accepted so far.
    pub submitted: u64,
    /// Jobs that ran to completion (including ones that returned an
    /// error response body).
    pub executed: u64,
    /// Jobs whose closure panicked (isolated; surfaced as `Err`).
    pub panicked: u64,
    /// Jobs currently waiting or running.
    pub depth: u64,
    /// Total wall-clock milliseconds spent executing jobs.
    pub busy_ms: u64,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Set once by `drain`; workers exit when the queue is empty and
    /// this is set, and `submit` rejects new jobs.
    closing: AtomicBool,
    submitted: AtomicU64,
    executed: AtomicU64,
    panicked: AtomicU64,
    in_flight: AtomicU64,
    busy_us: AtomicU64,
}

/// The worker pool. Dropping it drains: queued and in-flight jobs run to
/// completion, then the workers exit.
pub struct JobQueue {
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    seq: AtomicU64,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("stats", &self.stats())
            .finish()
    }
}

impl JobQueue {
    /// Starts a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            closing: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("si-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        JobQueue {
            shared,
            workers: Mutex::new(workers),
            seq: AtomicU64::new(0),
        }
    }

    /// Enqueues `run` and blocks until a worker has executed it.
    ///
    /// Returns `Err(panic message)` if the job panicked, or
    /// `Err("queue closed")` when submitted after [`drain`] began.
    ///
    /// [`drain`]: JobQueue::drain
    pub fn submit(&self, run: impl FnOnce() -> String + Send + 'static) -> Result<String, String> {
        if self.shared.closing.load(Ordering::Acquire) {
            return Err("queue closed".to_string());
        }
        let slot = Arc::new(Slot {
            value: Mutex::new(None),
            ready: Condvar::new(),
        });
        let job = Job {
            run: Box::new(run),
            slot: Arc::clone(&slot),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            submitted_at: Instant::now(),
        };
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        {
            let mut queue = relock(&self.shared.queue);
            queue.push_back(job);
        }
        self.shared.available.notify_one();
        let mut value = relock(&slot.value);
        while value.is_none() {
            value = match slot.ready.wait(value) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        value.take().expect("slot filled")
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> QueueStats {
        let queued = relock(&self.shared.queue).len() as u64;
        QueueStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
            depth: queued + self.shared.in_flight.load(Ordering::Relaxed),
            busy_ms: self.shared.busy_us.load(Ordering::Relaxed) / 1000,
        }
    }

    /// Stops accepting jobs, runs everything already queued or in
    /// flight to completion, and joins the workers. Idempotent: a
    /// second call finds no workers left.
    pub fn drain(&self) {
        self.shared.closing.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let handles: Vec<_> = relock(&self.workers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = relock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.closing.load(Ordering::Acquire) {
                    return;
                }
                queue = match shared.available.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        si_obs::histogram_record(
            "serve.queue.wait_us",
            started.duration_since(job.submitted_at).as_micros() as u64,
        );
        let seq = job.seq;
        let result = run_isolated(move || {
            fail_point!("serve::job", seq);
            (job.run)()
        });
        let busy = started.elapsed().as_micros() as u64;
        si_obs::histogram_record("serve.job.run_us", busy);
        shared.busy_us.fetch_add(busy, Ordering::Relaxed);
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        match &result {
            Ok(_) => shared.executed.fetch_add(1, Ordering::Relaxed),
            Err(_) => shared.panicked.fetch_add(1, Ordering::Relaxed),
        };
        let mut value = relock(&job.slot.value);
        *value = Some(result);
        job.slot.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_counters_track() {
        let queue = JobQueue::new(2);
        let out = queue.submit(|| "a".to_string()).unwrap();
        assert_eq!(out, "a");
        let s = queue.stats();
        assert_eq!((s.submitted, s.executed, s.panicked, s.depth), (1, 1, 0, 0));
    }

    #[test]
    fn concurrent_submissions_all_complete() {
        let queue = Arc::new(JobQueue::new(3));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || queue.submit(move || format!("job-{i}")).unwrap())
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), format!("job-{i}"));
        }
        assert_eq!(queue.stats().executed, 8);
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let queue = JobQueue::new(1);
        let err = queue
            .submit(|| panic!("job exploded"))
            .expect_err("panic surfaces as Err");
        assert!(err.contains("job exploded"), "{err}");
        // The worker survived: the next job still runs.
        assert_eq!(queue.submit(|| "next".to_string()).unwrap(), "next");
        let s = queue.stats();
        assert_eq!((s.executed, s.panicked), (1, 1));
    }

    #[test]
    fn drain_runs_queued_work_then_rejects() {
        let queue = JobQueue::new(2);
        assert_eq!(queue.submit(|| "x".to_string()).unwrap(), "x");
        queue.drain();
        assert!(queue.submit(|| "y".to_string()).is_err());
    }
}
