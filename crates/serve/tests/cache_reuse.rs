//! End-to-end cache-behaviour tests for the serving layer: a repeated
//! identical request is answered from the response cache without
//! touching the reachability engine, a one-signal edit re-derives only
//! the dirty per-signal cover, and the socket server round-trips the
//! protocol and shuts down cleanly on cancellation.

use std::sync::{Arc, Mutex, MutexGuard};

use si_petri::{CancelToken, ReachabilityGraph};
use si_serve::json::{self, escape, Value};
use si_serve::server::Endpoint;
use si_serve::{serve, submit_lines, ArtifactStore, ServerConfig, Service};

const BASE: &str = include_str!("../../../examples/specs/pipeline_pair.g");
const EDIT: &str = include_str!("../../../examples/specs/pipeline_pair_edit.g");

/// `ReachabilityGraph::build_count()` is a process-wide counter, so the
/// tests that assert deltas on it must not interleave.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn synth_line(spec: &str) -> String {
    format!("{{\"op\": \"synth\", \"spec\": {}}}", escape(spec))
}

fn service() -> Service {
    Service::new(Arc::new(ArtifactStore::in_memory(16 << 20)))
}

#[test]
fn identical_request_is_served_from_cache_with_zero_builds() {
    let _guard = serial();
    let service = service();
    // `verify` drives the whole stack — synthesis plus the functional,
    // conformance and random-walk oracles over the real state graph —
    // so the cold run must build reachability and the warm one must not.
    let line = format!("{{\"op\": \"verify\", \"spec\": {}}}", escape(BASE));

    let first = service.execute(&line);
    assert!(!first.cache_hit, "cold store cannot hit: {}", first.body);
    assert!(first.reach_builds >= 1, "cold verify must explore the STG");

    let before = ReachabilityGraph::build_count();
    let second = service.execute(&line);
    assert!(
        second.cache_hit,
        "identical request must hit: {}",
        second.body
    );
    assert_eq!(second.body, first.body);
    assert_eq!(second.reach_builds, 0);
    assert_eq!(
        ReachabilityGraph::build_count(),
        before,
        "a cache hit must perform zero reachability builds"
    );

    let v = json::parse(&second.body).expect("response body is JSON");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("spec_states").and_then(Value::as_usize), Some(16));
}

#[test]
fn one_signal_edit_reuses_the_untouched_cover() {
    let _guard = serial();
    let service = service();

    let base = service.execute(&synth_line(BASE));
    let vb = json::parse(&base.body).expect("base body is JSON");
    assert_eq!(
        vb.get("ok").and_then(Value::as_bool),
        Some(true),
        "base synth failed: {}",
        base.body
    );
    assert_eq!(base.covers_derived, 2, "both signals derive cold");
    assert_eq!(base.covers_reused, 0);

    // The edit re-sequences only the b/y/c component: y's cover is
    // dirty, x's fingerprint (and cached cover) is untouched.
    let edit = service.execute(&synth_line(EDIT));
    let ve = json::parse(&edit.body).expect("edit body is JSON");
    assert_eq!(
        ve.get("ok").and_then(Value::as_bool),
        Some(true),
        "edited synth failed: {}",
        edit.body
    );
    assert!(!edit.cache_hit, "the edit is a different job");
    assert_eq!(
        edit.covers_reused, 1,
        "x's cover must be revalidated and reused (body: {})",
        edit.body
    );
    assert_eq!(edit.covers_derived, 1, "only y's cover is re-derived");
}

#[test]
fn socket_round_trip_answers_requests_and_shuts_down_cleanly() {
    let _guard = serial();
    let path = std::env::temp_dir().join(format!(
        "sisyn-cache-reuse-{}-{:?}.sock",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig::new(Endpoint::Unix(path.clone()));
    let cancel = CancelToken::new();
    let server = {
        let config = config.clone();
        let cancel = cancel.clone();
        std::thread::spawn(move || serve(&config, &cancel))
    };
    // The listener may not be bound yet; retry the connection briefly.
    let endpoint = Endpoint::Unix(path.clone());
    let lines = vec![
        synth_line(BASE),
        synth_line(BASE),
        "{\"op\": \"stats\"}".into(),
    ];
    let mut responses = None;
    for _ in 0..100 {
        match submit_lines(&endpoint, &lines) {
            Ok(r) => {
                responses = Some(r);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let responses = responses.expect("server did not come up");
    assert_eq!(responses.len(), 3);

    let first = json::parse(&responses[0]).expect("first response is JSON");
    assert_eq!(first.get("cache_hit").and_then(Value::as_bool), Some(false));
    assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true));
    let second = json::parse(&responses[1]).expect("second response is JSON");
    assert_eq!(second.get("cache_hit").and_then(Value::as_bool), Some(true));
    assert_eq!(second.get("ok").and_then(Value::as_bool), Some(true));
    let stats = json::parse(&responses[2]).expect("stats response is JSON");
    let store = stats.get("store").expect("stats carries store counters");
    assert!(store.get("hits").and_then(Value::as_usize) >= Some(1));
    let queue = stats.get("queue").expect("stats carries queue counters");
    assert!(queue.get("executed").and_then(Value::as_usize) >= Some(2));

    cancel.cancel();
    server
        .join()
        .expect("server thread exits")
        .expect("serve returns Ok on cancellation");
    assert!(
        !path.exists(),
        "the unix socket must be unlinked on shutdown"
    );
}
