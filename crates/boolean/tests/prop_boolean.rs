//! Property-based tests for the cube/cover algebra.

use proptest::prelude::*;
use si_boolean::{minimize, Bits, Cover, Cube};

const W: usize = 6;

fn arb_cube() -> impl Strategy<Value = Cube> {
    proptest::collection::vec(0..3u8, W).prop_map(|vals| {
        let mut c = Cube::full(W);
        for (i, v) in vals.into_iter().enumerate() {
            match v {
                0 => c.set(i, Some(false)),
                1 => c.set(i, Some(true)),
                _ => {}
            }
        }
        c
    })
}

fn arb_cover() -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(), 0..6).prop_map(|cs| Cover::from_cubes(W, cs))
}

fn arb_vertex() -> impl Strategy<Value = Bits> {
    proptest::collection::vec(any::<bool>(), W).prop_map(|bs| bs.into_iter().collect())
}

proptest! {
    #[test]
    fn intersection_agrees_with_membership(a in arb_cube(), b in arb_cube(), v in arb_vertex()) {
        let both = a.contains_vertex(&v) && b.contains_vertex(&v);
        match a.and(&b) {
            Some(c) => prop_assert_eq!(c.contains_vertex(&v), both),
            None => prop_assert!(!both),
        }
    }

    #[test]
    fn containment_is_semantic(a in arb_cube(), b in arb_cube()) {
        let syntactic = a.contains_cube(&b);
        let semantic = b.vertices().all(|v| a.contains_vertex(&v));
        prop_assert_eq!(syntactic, semantic);
    }

    #[test]
    fn supercube_contains_both(a in arb_cube(), b in arb_cube()) {
        let s = a.supercube(&b);
        prop_assert!(s.contains_cube(&a));
        prop_assert!(s.contains_cube(&b));
    }

    #[test]
    fn sharp_is_exact_difference(a in arb_cube(), b in arb_cube(), v in arb_vertex()) {
        let pieces = a.sharp(&b);
        let in_pieces = pieces.iter().any(|p| p.contains_vertex(&v));
        let expected = a.contains_vertex(&v) && !b.contains_vertex(&v);
        prop_assert_eq!(in_pieces, expected);
        // pieces are pairwise disjoint
        for i in 0..pieces.len() {
            for j in i + 1..pieces.len() {
                prop_assert!(!pieces[i].intersects(&pieces[j]));
            }
        }
    }

    #[test]
    fn distance_zero_iff_intersects(a in arb_cube(), b in arb_cube()) {
        prop_assert_eq!(a.distance(&b) == 0, a.and(&b).is_some());
    }

    #[test]
    fn complement_partitions_space(f in arb_cover(), v in arb_vertex()) {
        let g = f.complement();
        prop_assert_eq!(f.contains_vertex(&v), !g.contains_vertex(&v));
        prop_assert_eq!(f.vertex_count() + g.vertex_count(), 1u128 << W);
    }

    #[test]
    fn tautology_matches_vertex_count(f in arb_cover()) {
        prop_assert_eq!(f.is_tautology(), f.vertex_count() == 1u128 << W);
    }

    #[test]
    fn covers_cube_is_semantic(f in arb_cover(), c in arb_cube()) {
        let semantic = c.vertices().all(|v| f.contains_vertex(&v));
        prop_assert_eq!(f.covers_cube(&c), semantic);
    }

    #[test]
    fn or_and_are_semantic(a in arb_cover(), b in arb_cover(), v in arb_vertex()) {
        prop_assert_eq!(a.or(&b).contains_vertex(&v), a.contains_vertex(&v) || b.contains_vertex(&v));
        prop_assert_eq!(a.and(&b).contains_vertex(&v), a.contains_vertex(&v) && b.contains_vertex(&v));
    }

    #[test]
    fn sharp_cover_is_semantic(a in arb_cover(), b in arb_cover(), v in arb_vertex()) {
        let d = a.sharp(&b);
        prop_assert_eq!(d.contains_vertex(&v), a.contains_vertex(&v) && !b.contains_vertex(&v));
    }

    #[test]
    fn minimize_preserves_function(f in arb_cover(), d in arb_cover(), v in arb_vertex()) {
        let r = minimize(&f, &d);
        // covers every strict on-vertex (on ∩ dc is a don't-care and may be
        // dropped)
        if f.contains_vertex(&v) && !d.contains_vertex(&v) {
            prop_assert!(r.cover.contains_vertex(&v));
        }
        // never covers an off-vertex
        if !f.contains_vertex(&v) && !d.contains_vertex(&v) {
            prop_assert!(!r.cover.contains_vertex(&v));
        }
        // never grows the literal count
        prop_assert!(r.literals_after <= r.literals_before || r.cover.cube_count() <= f.cube_count());
    }

    #[test]
    fn cofactor_semantics(a in arb_cube(), b in arb_cube(), v in arb_vertex()) {
        // F|c contains v' (v with c's literals forced) iff F contains that point.
        if let Some(cof) = a.cofactor(&b) {
            let mut forced = v.clone();
            for i in b.care().iter_ones() {
                forced.set(i, b.val().get(i));
            }
            prop_assert_eq!(cof.contains_vertex(&forced), a.contains_vertex(&forced));
        }
    }
}
