//! Shared property tests for the minimizer backends: every backend's
//! result covers the on-set and avoids the off-set, on random (on, dc)
//! pairs; backends are literal-count-compared against the espresso
//! baseline where they carry an ordering guarantee.

use proptest::prelude::*;
use si_boolean::{
    AutoMinimizer, Cover, Cube, EspressoMinimizer, ExactMinimizer, Minimizer, MinimizerChoice,
};

const W: usize = 5;

fn arb_cube() -> impl Strategy<Value = Cube> {
    proptest::collection::vec(0..3u8, W).prop_map(|vals| {
        let mut c = Cube::full(W);
        for (i, v) in vals.into_iter().enumerate() {
            match v {
                0 => c.set(i, Some(false)),
                1 => c.set(i, Some(true)),
                _ => {}
            }
        }
        c
    })
}

fn arb_cover(max: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(), 0..max).prop_map(|cs| Cover::from_cubes(W, cs))
}

proptest! {
    /// The backend contract: covers `on`, disjoint from `off` — for every
    /// backend, on random on/dc pairs with `off` as the strict complement.
    #[test]
    fn every_backend_covers_on_and_avoids_off(on in arb_cover(5), dc in arb_cover(3)) {
        let dc = dc.sharp(&on); // freedom outside the on-set
        let off = on.or(&dc).complement();
        for choice in MinimizerChoice::ALL {
            let r = choice.backend().minimize(&on, &dc, &off);
            prop_assert!(
                r.cover.covers(&on),
                "{}: result {} misses part of on {}", choice, r.cover, on
            );
            prop_assert!(
                !r.cover.intersects(&off),
                "{}: result {} touches off", choice, r.cover
            );
            prop_assert_eq!(r.literals_after, r.cover.literal_count());
        }
    }

    /// Ordering guarantees: `exact` iterates from the espresso result so it
    /// never gains literals; `auto` keeps espresso as its floor.
    #[test]
    fn literal_count_ordering(on in arb_cover(5), dc in arb_cover(3)) {
        let dc = dc.sharp(&on);
        let off = on.or(&dc).complement();
        let esp = EspressoMinimizer.minimize(&on, &dc, &off);
        let exact = ExactMinimizer.minimize(&on, &dc, &off);
        let auto = AutoMinimizer.minimize(&on, &dc, &off);
        prop_assert!(
            exact.cover.literal_count() <= esp.cover.literal_count(),
            "exact {} > espresso {}", exact.cover.literal_count(), esp.cover.literal_count()
        );
        prop_assert!(
            auto.cover.literal_count() <= esp.cover.literal_count(),
            "auto {} > espresso {}", auto.cover.literal_count(), esp.cover.literal_count()
        );
    }

    /// Backends also honour a caller-supplied *partial* off-set (the
    /// structural flow's case): freedom is everything outside `off`, not
    /// just `on ∪ dc`.
    #[test]
    fn partial_off_sets_are_respected(on in arb_cover(4), off in arb_cover(4)) {
        let off = off.sharp(&on); // contract: on and off disjoint
        for choice in MinimizerChoice::ALL {
            let r = choice.backend().minimize(&on, &Cover::empty(W), &off);
            prop_assert!(r.cover.covers(&on), "{}: misses on", choice);
            prop_assert!(!r.cover.intersects(&off), "{}: touches off", choice);
        }
    }
}
