//! Extended two-level minimization: the full EXPAND → IRREDUNDANT → REDUCE
//! loop with essential-prime extraction.
//!
//! [`crate::minimize`] implements the single EXPAND/IRREDUNDANT pass that
//! the synthesis flows use by default; this module adds the remaining
//! espresso phases for callers that want to squeeze the last literals out
//! of a cover (the paper's baselines re-minimize exact region covers, where
//! REDUCE occasionally escapes a local minimum).

use crate::cover::Cover;
use crate::cube::Cube;
use crate::minimize::{expand_cube, minimize_against_off, MinimizeResult};

/// Reduces one cube to the smallest cube still covering the part of the
/// on-set only it covers (the classic REDUCE step).
///
/// Returns `None` when the cube is entirely covered by `rest ∪ dc` (it can
/// be dropped).
pub fn reduce_cube(cube: &Cube, rest: &Cover, dc: &Cover, on: &Cover) -> Option<Cube> {
    // The part of the on-set that only this cube covers:
    // on ∩ cube ∖ (rest ∪ dc).
    let mut exclusive = on.and_cube(cube);
    exclusive = exclusive.sharp(rest);
    exclusive = exclusive.sharp(dc);
    exclusive.supercube()
}

/// Essential primes: cubes of `cover` that are the sole cover of some
/// on-set vertex (they must appear in every minimal cover built from this
/// prime set).
pub fn essential_cubes(cover: &Cover, dc: &Cover) -> Vec<Cube> {
    let mut essentials = Vec::new();
    for (i, cube) in cover.cubes().iter().enumerate() {
        let rest: Vec<Cube> = cover
            .cubes()
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .collect();
        let rest_cover = Cover::from_cubes(cover.width(), rest).or(dc);
        if !rest_cover.covers_cube(cube) {
            essentials.push(cube.clone());
        }
    }
    essentials
}

/// The full iterated minimization: EXPAND / IRREDUNDANT / REDUCE until the
/// literal count stops improving.
///
/// Guarantees of the result: covers `on ∖ dc`, disjoint from the off-set
/// (complement of `on ∪ dc`), literal count ≤ the single-pass result.
pub fn minimize_exact_iterated(on: &Cover, dc: &Cover) -> MinimizeResult {
    let off = on.or(dc).complement();
    minimize_exact_iterated_off(on, dc, &off)
}

/// Same as [`minimize_exact_iterated`] but with a caller-supplied off-set
/// (the covers need not partition the space — the guarantee is that the
/// result covers `on` and avoids `off`, like
/// [`crate::minimize_against_off`]).
pub fn minimize_exact_iterated_off(on: &Cover, dc: &Cover, off: &Cover) -> MinimizeResult {
    let literals_before = on.literal_count();
    let mut best = minimize_against_off(on, dc, off).cover;
    loop {
        // REDUCE each cube against the rest, then re-EXPAND.
        let mut reduced: Vec<Cube> = Vec::new();
        for (i, cube) in best.cubes().iter().enumerate() {
            let rest: Vec<Cube> = best
                .cubes()
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| c.clone())
                .collect();
            let rest_cover = Cover::from_cubes(best.width(), rest);
            if let Some(r) = reduce_cube(cube, &rest_cover, dc, on) {
                reduced.push(r);
            } // None: fully redundant
        }
        let mut candidate_cubes: Vec<Cube> = Vec::new();
        for cube in &reduced {
            let e = expand_cube(cube, off);
            if !candidate_cubes.iter().any(|k| k.contains_cube(&e)) {
                candidate_cubes.retain(|k| !e.contains_cube(k));
                candidate_cubes.push(e);
            }
        }
        let candidate = Cover::from_cubes(on.width(), candidate_cubes);
        // Accept only if it is still a valid cover and improves.
        let valid = candidate.or(dc).covers(on) && !candidate.intersects(off);
        if valid && candidate.literal_count() < best.literal_count() {
            best = candidate;
        } else {
            break;
        }
    }
    MinimizeResult {
        literals_before,
        literals_after: best.literal_count(),
        cover: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(w: usize, cs: &[&str]) -> Cover {
        Cover::from_cubes(w, cs.iter().map(|s| s.parse().unwrap()))
    }

    #[test]
    fn reduce_shrinks_to_exclusive_part() {
        // on = 11- + -11 ; cube 11- exclusively covers 110.
        let on = cover(3, &["11-", "-11"]);
        let rest = cover(3, &["-11"]);
        let dc = Cover::empty(3);
        let r = reduce_cube(&"11-".parse().unwrap(), &rest, &dc, &on).unwrap();
        assert_eq!(r, "110".parse().unwrap());
    }

    #[test]
    fn reduce_drops_fully_covered_cube() {
        let on = cover(2, &["1-"]);
        let rest = cover(2, &["1-"]);
        let dc = Cover::empty(2);
        assert!(reduce_cube(&"11".parse().unwrap(), &rest, &dc, &on).is_none());
    }

    #[test]
    fn essentials_of_a_prime_cover() {
        // f = ab + a'c: both primes essential.
        let f = cover(3, &["11-", "0-1"]);
        let e = essential_cubes(&f, &Cover::empty(3));
        assert_eq!(e.len(), 2);
        // adding a redundant consensus cube -11 makes it non-essential
        let g = cover(3, &["11-", "0-1", "-11"]);
        let e2 = essential_cubes(&g, &Cover::empty(3));
        assert_eq!(e2.len(), 2);
        assert!(!e2.contains(&"-11".parse().unwrap()));
    }

    #[test]
    fn iterated_never_worse_than_single_pass() {
        for (on, dc) in [
            (cover(4, &["1100", "1101", "1111", "1110"]), Cover::empty(4)),
            (cover(4, &["0000", "0001", "1001"]), cover(4, &["1000"])),
            (cover(3, &["000", "011", "101", "110"]), Cover::empty(3)),
        ] {
            let single = crate::minimize::minimize(&on, &dc);
            let iterated = minimize_exact_iterated(&on, &dc);
            assert!(iterated.literals_after <= single.literals_after);
            // still a correct cover
            let off = on.or(&dc).complement();
            assert!(iterated.cover.or(&dc).covers(&on));
            assert!(!iterated.cover.intersects(&off));
        }
    }

    #[test]
    fn xor_stays_minimal() {
        // 2-input XOR has no 1-literal cover; iterated minimization keeps
        // the two minterms.
        let on = cover(2, &["01", "10"]);
        let r = minimize_exact_iterated(&on, &Cover::empty(2));
        assert_eq!(r.cover.cube_count(), 2);
        assert_eq!(r.literals_after, 4);
    }
}
