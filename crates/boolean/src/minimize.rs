//! Two-level logic minimization (a compact espresso-style loop).
//!
//! The synthesis flows need a single-output minimizer in two places:
//!
//! * the state-based baselines derive on/dc-sets from the reachability graph
//!   and minimize them exactly the way SIS-era tools did;
//! * the structural flow post-processes covers whose freedom (quiescent
//!   regions, dc-set) has already been encoded as a don't-care cover.
//!
//! The algorithm is the classical EXPAND → IRREDUNDANT loop against an
//! explicit off-set, with a final single-cube-containment cleanup. It is not
//! a full espresso (no REDUCE/LAST_GASP), which is adequate at the problem
//! sizes of STG synthesis where covers have tens of cubes.

use crate::cover::Cover;
use crate::cube::Cube;

/// Result of a minimization run.
#[derive(Clone, Debug)]
pub struct MinimizeResult {
    /// The minimized cover.
    pub cover: Cover,
    /// Literal count before minimization.
    pub literals_before: usize,
    /// Literal count after minimization.
    pub literals_after: usize,
}

/// Minimizes `on` against the freedom of `dc`, never touching the off-set.
///
/// The off-set is computed as the complement of `on ∪ dc`. The result covers
/// all of `on`, none of the off-set, and is irredundant.
///
/// # Examples
///
/// ```
/// use si_boolean::{Cover, minimize};
///
/// let on = Cover::from_cubes(2, vec!["11".parse()?, "10".parse()?]);
/// let dc = Cover::empty(2);
/// let r = minimize(&on, &dc);
/// assert_eq!(r.cover.cube_count(), 1); // merges to 1-
/// # Ok::<(), si_boolean::ParseCubeError>(())
/// ```
pub fn minimize(on: &Cover, dc: &Cover) -> MinimizeResult {
    let off = on.or(dc).complement();
    minimize_against_off(on, dc, &off)
}

/// Same as [`minimize`] but with a caller-supplied off-set cover.
///
/// Useful when the off-set is known directly (e.g. from region covers) and
/// complementation would be wasteful. `on`, `dc` and `off` need not
/// partition the space exactly — the guarantee is only that the result
/// covers `on` and avoids `off`.
pub fn minimize_against_off(on: &Cover, dc: &Cover, off: &Cover) -> MinimizeResult {
    let literals_before = on.literal_count();
    let mut cubes: Vec<Cube> = on.cubes().to_vec();
    // Expand biggest-first tends to absorb more cubes.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.width() - c.literal_count()));
    let mut expanded: Vec<Cube> = Vec::with_capacity(cubes.len());
    for cube in &cubes {
        let e = expand_cube(cube, off);
        if !expanded.iter().any(|k| k.contains_cube(&e)) {
            expanded.retain(|k| !e.contains_cube(k));
            expanded.push(e);
        }
    }
    let mut cover = Cover::from_cubes(on.width(), expanded);
    irredundant(&mut cover, on, dc);
    let literals_after = cover.literal_count();
    MinimizeResult {
        cover,
        literals_before,
        literals_after,
    }
}

/// Expands one cube against an off-set: greedily removes literals whose
/// removal keeps the cube disjoint from `off`.
///
/// Literals are dropped in order of how many off-cubes "block" them least,
/// a cheap approximation of espresso's expand heuristics.
pub fn expand_cube(cube: &Cube, off: &Cover) -> Cube {
    let mut current = cube.clone();
    // Order candidate literals: try removing the literal that the fewest
    // off-cubes rely on (i.e. removal least likely to hit the off-set).
    let mut literals: Vec<usize> = current.care().iter_ones().collect();
    literals.sort_by_key(|&var| {
        off.cubes()
            .iter()
            .filter(|c| c.care().get(var) && c.val().get(var) != current.val().get(var))
            .count()
    });
    for var in literals {
        let mut candidate = current.clone();
        candidate.set(var, None);
        if !off.intersects_cube(&candidate) {
            current = candidate;
        }
    }
    current
}

/// Removes cubes that are covered by the rest of the cover plus `dc`,
/// processing least-useful (smallest) cubes first.
///
/// Cubes that contain an essential vertex of `on` are always kept.
fn irredundant(cover: &mut Cover, _on: &Cover, dc: &Cover) {
    let width = cover.width();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    cubes.sort_by_key(Cube::literal_count);
    cubes.reverse(); // smallest cubes (most literals) considered for removal first
    let mut i = 0;
    while i < cubes.len() {
        let candidate = cubes[i].clone();
        let rest: Vec<Cube> = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .chain(dc.cubes().iter().cloned())
            .collect();
        let rest_cover = Cover::from_cubes(width, rest);
        if rest_cover.covers_cube(&candidate) {
            cubes.remove(i);
        } else {
            i += 1;
        }
    }
    *cover = Cover::from_cubes(width, cubes);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(w: usize, cs: &[&str]) -> Cover {
        Cover::from_cubes(w, cs.iter().map(|s| s.parse().unwrap()))
    }

    #[test]
    fn merges_adjacent_minterms() {
        let on = cover(2, &["11", "10"]);
        let r = minimize(&on, &Cover::empty(2));
        assert_eq!(r.cover.cube_count(), 1);
        assert!(r.cover.equivalent(&cover(2, &["1-"])));
        assert!(r.literals_after < r.literals_before);
    }

    #[test]
    fn uses_dont_cares() {
        // on = {11}, dc = {10} -> can expand to 1-
        let on = cover(2, &["11"]);
        let dc = cover(2, &["10"]);
        let r = minimize(&on, &dc);
        assert!(r.cover.covers(&on));
        assert!(!r.cover.intersects(&on.or(&dc).complement()));
        assert_eq!(r.cover.cubes()[0].literal_count(), 1);
    }

    #[test]
    fn never_touches_off_set() {
        let on = cover(3, &["111", "001"]);
        let dc = cover(3, &["011"]);
        let off = on.or(&dc).complement();
        let r = minimize(&on, &dc);
        assert!(r.cover.covers(&on));
        assert!(!r.cover.intersects(&off));
    }

    #[test]
    fn removes_redundant_cubes() {
        // third cube is covered by the other two after expansion
        let on = cover(3, &["1-1", "11-", "111"]);
        let r = minimize(&on, &Cover::empty(3));
        assert!(r.cover.covers(&on));
        assert!(r.cover.cube_count() <= 2);
    }

    #[test]
    fn full_on_set_becomes_tautology() {
        let on = cover(1, &["0", "1"]);
        let r = minimize(&on, &Cover::empty(1));
        assert!(r.cover.is_tautology());
        assert_eq!(r.cover.cube_count(), 1);
    }

    #[test]
    fn empty_on_set() {
        let on = Cover::empty(3);
        let r = minimize(&on, &Cover::empty(3));
        assert!(r.cover.is_empty());
    }

    #[test]
    fn explicit_off_set_variant() {
        let on = cover(3, &["110"]);
        let off = cover(3, &["0--"]);
        let dc = Cover::empty(3);
        let r = minimize_against_off(&on, &dc, &off);
        assert!(r.cover.covers(&on));
        assert!(!r.cover.intersects(&off));
        // free to expand over the whole 1-- half
        assert!(r.cover.literal_count() <= 2);
    }
}
