//! A small reduced-ordered BDD package over [`Bits`]-indexed variables.
//!
//! The exact minimizer backend ([`crate::BddMinimizer`]) represents the
//! on-set and the care freedom as BDDs, enumerates **all prime implicants**
//! with the classical recursive decomposition (Blake canonical form), and
//! solves the covering problem on top. At STG-synthesis widths (one
//! variable per signal, rarely beyond a few dozen) the node counts stay
//! tiny, so the package favours clarity over sophistication: natural
//! variable order, one manager per minimization call, no garbage
//! collection. Prime sets are kept as explicit cube lists rather than ZDDs
//! — at these sizes the implicit representation would cost more than it
//! saves.
//!
//! # Examples
//!
//! ```
//! use si_boolean::{Bdd, Cover};
//!
//! let mut bdd = Bdd::new(2);
//! // f = a·b + a·b'  ==  a
//! let f = bdd.from_cover(&Cover::from_cubes(2, vec![
//!     "11".parse()?,
//!     "10".parse()?,
//! ]));
//! assert_eq!(bdd.sat_count(f), 2);
//! let primes = bdd.primes(f, 64).unwrap();
//! assert_eq!(primes.len(), 1);
//! assert_eq!(primes[0].to_positional(), "1-");
//! # Ok::<(), si_boolean::ParseCubeError>(())
//! ```

use crate::cover::Cover;
use crate::cube::Cube;
use std::collections::HashMap;

/// A node reference inside one [`Bdd`] manager.
pub type BddRef = u32;

/// The constant FALSE function.
pub const BDD_FALSE: BddRef = 0;
/// The constant TRUE function.
pub const BDD_TRUE: BddRef = 1;

/// Sentinel variable index of the two terminal nodes (sorts after every
/// real variable, which keeps the var-comparison logic branch-free).
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Copy, Clone, Debug)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
}

/// A reduced-ordered BDD manager with hash-consed nodes and memoized
/// apply/negate operations. Variables are `0..width` in natural order.
#[derive(Debug)]
pub struct Bdd {
    width: usize,
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    apply_cache: HashMap<(Op, BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
}

impl Bdd {
    /// A fresh manager for functions of `width` variables.
    pub fn new(width: usize) -> Self {
        Bdd {
            width,
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: BDD_FALSE,
                    hi: BDD_FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: BDD_TRUE,
                    hi: BDD_TRUE,
                },
            ],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    /// The number of variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of live nodes (terminals included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn var(&self, f: BddRef) -> u32 {
        self.nodes[f as usize].var
    }

    /// The reduced node `(var, lo, hi)` (hash-consed; skips redundant
    /// tests).
    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            self.nodes.push(Node { var, lo, hi });
            (self.nodes.len() - 1) as BddRef
        })
    }

    /// The BDD of one cube (product of literals).
    pub fn from_cube(&mut self, cube: &Cube) -> BddRef {
        let mut f = BDD_TRUE;
        for var in (0..self.width).rev() {
            match cube.get(var) {
                crate::cube::CubeVal::One => f = self.mk(var as u32, BDD_FALSE, f),
                crate::cube::CubeVal::Zero => f = self.mk(var as u32, f, BDD_FALSE),
                crate::cube::CubeVal::DontCare => {}
            }
        }
        f
    }

    /// The BDD of a cover (sum of its cubes).
    pub fn from_cover(&mut self, cover: &Cover) -> BddRef {
        let mut f = BDD_FALSE;
        for cube in cover.cubes() {
            let c = self.from_cube(cube);
            f = self.or(f, c);
        }
        f
    }

    fn apply(&mut self, op: Op, a: BddRef, b: BddRef) -> BddRef {
        match (op, a, b) {
            (Op::And, BDD_FALSE, _) | (Op::And, _, BDD_FALSE) => return BDD_FALSE,
            (Op::And, BDD_TRUE, x) | (Op::And, x, BDD_TRUE) => return x,
            (Op::Or, BDD_TRUE, _) | (Op::Or, _, BDD_TRUE) => return BDD_TRUE,
            (Op::Or, BDD_FALSE, x) | (Op::Or, x, BDD_FALSE) => return x,
            _ if a == b => return a,
            _ => {}
        }
        // Commutative ops: canonicalize the cache key.
        let key = (op, a.min(b), a.max(b));
        if let Some(&r) = self.apply_cache.get(&key) {
            return r;
        }
        let (va, vb) = (self.var(a), self.var(b));
        let v = va.min(vb);
        let (a0, a1) = if va == v {
            (self.nodes[a as usize].lo, self.nodes[a as usize].hi)
        } else {
            (a, a)
        };
        let (b0, b1) = if vb == v {
            (self.nodes[b as usize].lo, self.nodes[b as usize].hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(v, lo, hi);
        self.apply_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(Op::Or, a, b)
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        match f {
            BDD_FALSE => return BDD_TRUE,
            BDD_TRUE => return BDD_FALSE,
            _ => {}
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let Node { var, lo, hi } = self.nodes[f as usize];
        let nlo = self.not(lo);
        let nhi = self.not(hi);
        let r = self.mk(var, nlo, nhi);
        self.not_cache.insert(f, r);
        r
    }

    /// `a ∧ ¬b`.
    pub fn diff(&mut self, a: BddRef, b: BddRef) -> BddRef {
        let nb = self.not(b);
        self.and(a, nb)
    }

    /// Does `cube ⊆ f` hold (is the cube an implicant of `f`)?
    pub fn cube_implies(&mut self, cube: &Cube, f: BddRef) -> bool {
        let c = self.from_cube(cube);
        self.diff(c, f) == BDD_FALSE
    }

    /// Number of satisfying assignments over all `width` variables.
    pub fn sat_count(&self, f: BddRef) -> u128 {
        let mut memo: HashMap<BddRef, u128> = HashMap::new();
        // Solutions over the variables strictly below var(f) are counted by
        // the recursion; the `2^var(f)` factor restores the free variables
        // above the root.
        let c = self.sat_below(f, &mut memo);
        c << self.level(f)
    }

    /// The variable level of a node, with terminals at `width`.
    fn level(&self, f: BddRef) -> u32 {
        let v = self.var(f);
        if v == TERMINAL_VAR {
            self.width as u32
        } else {
            v
        }
    }

    fn sat_below(&self, f: BddRef, memo: &mut HashMap<BddRef, u128>) -> u128 {
        match f {
            BDD_FALSE => return 0,
            BDD_TRUE => return 1,
            _ => {}
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let node = self.nodes[f as usize];
        let lo = self.sat_below(node.lo, memo) << (self.level(node.lo) - node.var - 1);
        let hi = self.sat_below(node.hi, memo) << (self.level(node.hi) - node.var - 1);
        let c = lo + hi;
        memo.insert(f, c);
        c
    }

    /// All prime implicants of `f` (the Blake canonical form), by the
    /// classical recursive decomposition on the top variable `x`:
    ///
    /// ```text
    /// P(f) = P(f0 ∧ f1)
    ///      ∪ { x'·c | c ∈ P(f0), c ⊄ f0 ∧ f1 }
    ///      ∪ { x ·c | c ∈ P(f1), c ⊄ f0 ∧ f1 }
    /// ```
    ///
    /// Returns `None` when more than `limit` primes accumulate (the caller
    /// falls back to a heuristic cover) — a safety valve, not an expected
    /// path at synthesis widths.
    pub fn primes(&mut self, f: BddRef, limit: usize) -> Option<Vec<Cube>> {
        let mut memo: HashMap<BddRef, Vec<Cube>> = HashMap::new();
        self.primes_rec(f, limit, &mut memo)?;
        memo.remove(&f)
    }

    fn primes_rec(
        &mut self,
        f: BddRef,
        limit: usize,
        memo: &mut HashMap<BddRef, Vec<Cube>>,
    ) -> Option<()> {
        if memo.contains_key(&f) {
            return Some(());
        }
        let out = match f {
            BDD_FALSE => Vec::new(),
            BDD_TRUE => vec![Cube::full(self.width)],
            _ => {
                let Node { var, lo, hi } = self.nodes[f as usize];
                let both = self.and(lo, hi);
                self.primes_rec(both, limit, memo)?;
                self.primes_rec(lo, limit, memo)?;
                self.primes_rec(hi, limit, memo)?;
                let mut out = memo[&both].clone();
                for (branch, polarity) in [(lo, false), (hi, true)] {
                    for cube in memo[&branch].clone() {
                        // A branch prime survives iff it is not already an
                        // implicant of the var-free part (else dropping the
                        // literal keeps it an implicant — not prime).
                        if !self.cube_implies(&cube, both) {
                            let mut c = cube;
                            c.set(var as usize, Some(polarity));
                            out.push(c);
                        }
                    }
                }
                out
            }
        };
        if out.len() > limit {
            return None;
        }
        memo.insert(f, out);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(w: usize, cs: &[&str]) -> Cover {
        Cover::from_cubes(w, cs.iter().map(|s| s.parse().unwrap()))
    }

    #[test]
    fn terminals_and_trivial_ops() {
        let mut b = Bdd::new(3);
        assert_eq!(b.and(BDD_TRUE, BDD_FALSE), BDD_FALSE);
        assert_eq!(b.or(BDD_TRUE, BDD_FALSE), BDD_TRUE);
        assert_eq!(b.not(BDD_TRUE), BDD_FALSE);
        assert_eq!(b.sat_count(BDD_TRUE), 8);
        assert_eq!(b.sat_count(BDD_FALSE), 0);
    }

    #[test]
    fn cover_roundtrip_sat_counts() {
        let mut b = Bdd::new(3);
        for (cs, expect) in [
            (vec!["111"], 1u128),
            (vec!["1--"], 4),
            (vec!["11-", "0-1"], 4),
            (vec!["000", "111"], 2),
        ] {
            let f = b.from_cover(&cover(3, &cs));
            assert_eq!(b.sat_count(f), expect, "{cs:?}");
        }
    }

    #[test]
    fn semantic_equivalence_with_cover_algebra() {
        let mut b = Bdd::new(4);
        let f = cover(4, &["11--", "-011", "0-0-"]);
        let g = cover(4, &["1-1-", "--00"]);
        let bf = b.from_cover(&f);
        let bg = b.from_cover(&g);
        let band = b.and(bf, bg);
        let bor = b.or(bf, bg);
        assert_eq!(b.sat_count(band), f.and(&g).vertex_count());
        assert_eq!(b.sat_count(bor), f.or(&g).vertex_count());
        let bnot = b.not(bf);
        assert_eq!(b.sat_count(bnot), f.complement().vertex_count());
    }

    #[test]
    fn primes_of_classic_functions() {
        let mut b = Bdd::new(2);
        // XOR: both minterms are prime.
        let x = b.from_cover(&cover(2, &["01", "10"]));
        let mut p = b.primes(x, 16).unwrap();
        p.sort_by_key(|c| c.to_positional());
        assert_eq!(p.len(), 2);
        // Consensus: ab + a'c has three primes (ab, a'c, bc).
        let mut b3 = Bdd::new(3);
        let f = b3.from_cover(&cover(3, &["11-", "0-1"]));
        let p3 = b3.primes(f, 16).unwrap();
        assert_eq!(p3.len(), 3);
        assert!(p3.iter().any(|c| c.to_positional() == "-11"));
    }

    #[test]
    fn primes_limit_bails_out() {
        // The parity function of 6 vars has 2^5 = 32 primes (its minterms).
        let mut b = Bdd::new(6);
        let minterms: Vec<String> = (0..64u32)
            .filter(|v| v.count_ones() % 2 == 1)
            .map(|v| (0..6).rev().map(|i| ((v >> i) & 1).to_string()).collect())
            .collect();
        let refs: Vec<&str> = minterms.iter().map(|s| s.as_str()).collect();
        let f = b.from_cover(&cover(6, &refs));
        assert!(b.primes(f, 8).is_none());
        assert_eq!(b.primes(f, 64).unwrap().len(), 32);
    }

    #[test]
    fn cube_implies_is_containment() {
        let mut b = Bdd::new(3);
        let f = b.from_cover(&cover(3, &["1--"]));
        assert!(b.cube_implies(&"11-".parse().unwrap(), f));
        assert!(!b.cube_implies(&"-1-".parse().unwrap(), f));
    }
}
