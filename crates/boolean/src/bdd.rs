//! A small reduced-ordered BDD package over [`Bits`]-indexed variables.
//!
//! The exact minimizer backend ([`crate::BddMinimizer`]) represents the
//! on-set and the care freedom as BDDs, enumerates **all prime implicants**
//! with the classical recursive decomposition (Blake canonical form), and
//! solves the covering problem on top. At STG-synthesis widths (one
//! variable per signal, rarely beyond a few dozen) the node counts stay
//! tiny, so the package favours clarity over sophistication: natural
//! variable order, one manager per minimization call, no garbage
//! collection. Prime sets are kept as explicit cube lists rather than ZDDs
//! — at these sizes the implicit representation would cost more than it
//! saves.
//!
//! # Examples
//!
//! ```
//! use si_boolean::{Bdd, Cover};
//!
//! let mut bdd = Bdd::new(2);
//! // f = a·b + a·b'  ==  a
//! let f = bdd.from_cover(&Cover::from_cubes(2, vec![
//!     "11".parse()?,
//!     "10".parse()?,
//! ]));
//! assert_eq!(bdd.sat_count(f), 2);
//! let primes = bdd.primes(f, 64).unwrap();
//! assert_eq!(primes.len(), 1);
//! assert_eq!(primes[0].to_positional(), "1-");
//! # Ok::<(), si_boolean::ParseCubeError>(())
//! ```

use crate::bits::Bits;
use crate::cover::Cover;
use crate::cube::Cube;
use std::collections::HashMap;

/// A node reference inside one [`Bdd`] manager.
pub type BddRef = u32;

/// The constant FALSE function.
pub const BDD_FALSE: BddRef = 0;
/// The constant TRUE function.
pub const BDD_TRUE: BddRef = 1;

/// Sentinel variable index of the two terminal nodes (sorts after every
/// real variable, which keeps the var-comparison logic branch-free).
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Copy, Clone, Debug)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
}

/// A reduced-ordered BDD manager with hash-consed nodes and memoized
/// apply/negate operations. Variables are `0..width` in natural order.
#[derive(Debug)]
pub struct Bdd {
    width: usize,
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    apply_cache: HashMap<(Op, BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
    /// Memo-cache hits/misses across apply and negate (plain counters:
    /// every op takes `&mut self`, so no atomics are needed).
    cache_hits: u64,
    cache_misses: u64,
}

impl Bdd {
    /// A fresh manager for functions of `width` variables.
    pub fn new(width: usize) -> Self {
        Bdd {
            width,
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: BDD_FALSE,
                    hi: BDD_FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: BDD_TRUE,
                    hi: BDD_TRUE,
                },
            ],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// The number of variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Memoized-operation cache `(hits, misses)` since construction —
    /// the hit rate is the headline health metric of a manager's
    /// variable order.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// The number of live nodes (terminals included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn var(&self, f: BddRef) -> u32 {
        self.nodes[f as usize].var
    }

    /// The reduced node `(var, lo, hi)` (hash-consed; skips redundant
    /// tests).
    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            self.nodes.push(Node { var, lo, hi });
            (self.nodes.len() - 1) as BddRef
        })
    }

    /// The BDD of one cube (product of literals).
    pub fn from_cube(&mut self, cube: &Cube) -> BddRef {
        let mut f = BDD_TRUE;
        for var in (0..self.width).rev() {
            match cube.get(var) {
                crate::cube::CubeVal::One => f = self.mk(var as u32, BDD_FALSE, f),
                crate::cube::CubeVal::Zero => f = self.mk(var as u32, f, BDD_FALSE),
                crate::cube::CubeVal::DontCare => {}
            }
        }
        f
    }

    /// The BDD of a cover (sum of its cubes).
    pub fn from_cover(&mut self, cover: &Cover) -> BddRef {
        let mut f = BDD_FALSE;
        for cube in cover.cubes() {
            let c = self.from_cube(cube);
            f = self.or(f, c);
        }
        f
    }

    fn apply(&mut self, op: Op, a: BddRef, b: BddRef) -> BddRef {
        match (op, a, b) {
            (Op::And, BDD_FALSE, _) | (Op::And, _, BDD_FALSE) => return BDD_FALSE,
            (Op::And, BDD_TRUE, x) | (Op::And, x, BDD_TRUE) => return x,
            (Op::Or, BDD_TRUE, _) | (Op::Or, _, BDD_TRUE) => return BDD_TRUE,
            (Op::Or, BDD_FALSE, x) | (Op::Or, x, BDD_FALSE) => return x,
            _ if a == b => return a,
            _ => {}
        }
        // Commutative ops: canonicalize the cache key.
        let key = (op, a.min(b), a.max(b));
        if let Some(&r) = self.apply_cache.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        self.cache_misses += 1;
        let (va, vb) = (self.var(a), self.var(b));
        let v = va.min(vb);
        let (a0, a1) = if va == v {
            (self.nodes[a as usize].lo, self.nodes[a as usize].hi)
        } else {
            (a, a)
        };
        let (b0, b1) = if vb == v {
            (self.nodes[b as usize].lo, self.nodes[b as usize].hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(v, lo, hi);
        self.apply_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(Op::Or, a, b)
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        match f {
            BDD_FALSE => return BDD_TRUE,
            BDD_TRUE => return BDD_FALSE,
            _ => {}
        }
        if let Some(&r) = self.not_cache.get(&f) {
            self.cache_hits += 1;
            return r;
        }
        self.cache_misses += 1;
        let Node { var, lo, hi } = self.nodes[f as usize];
        let nlo = self.not(lo);
        let nhi = self.not(hi);
        let r = self.mk(var, nlo, nhi);
        self.not_cache.insert(f, r);
        r
    }

    /// `a ∧ ¬b`.
    pub fn diff(&mut self, a: BddRef, b: BddRef) -> BddRef {
        let nb = self.not(b);
        self.and(a, nb)
    }

    /// Does `cube ⊆ f` hold (is the cube an implicant of `f`)?
    pub fn cube_implies(&mut self, cube: &Cube, f: BddRef) -> bool {
        let c = self.from_cube(cube);
        self.diff(c, f) == BDD_FALSE
    }

    /// The reduced node `ite(var, hi, lo)` for callers that build
    /// structured functions bottom-up (cubes, transition relations) in one
    /// linear pass instead of `O(n)` apply calls. `var` must lie strictly
    /// above the top variables of `lo` and `hi` (checked in debug builds);
    /// breaking that would silently corrupt the ordering invariant.
    pub fn mk_node(&mut self, var: usize, lo: BddRef, hi: BddRef) -> BddRef {
        debug_assert!(var < self.width);
        debug_assert!(
            (var as u32) < self.var(lo) && (var as u32) < self.var(hi),
            "mk_node: var must be above both children"
        );
        self.mk(var as u32, lo, hi)
    }

    /// The single-literal function `var` (positive) or `¬var` (negative).
    pub fn literal(&mut self, var: usize, polarity: bool) -> BddRef {
        debug_assert!(var < self.width);
        if polarity {
            self.mk(var as u32, BDD_FALSE, BDD_TRUE)
        } else {
            self.mk(var as u32, BDD_TRUE, BDD_FALSE)
        }
    }

    /// Equivalence `a ↔ b` (XNOR).
    pub fn iff(&mut self, a: BddRef, b: BddRef) -> BddRef {
        let both = self.and(a, b);
        let na = self.not(a);
        let nb = self.not(b);
        let neither = self.and(na, nb);
        self.or(both, neither)
    }

    /// Evaluates `f` on a complete assignment (bit `v` of `assignment` is
    /// the value of variable `v`) — a walk from the root, no allocation.
    pub fn eval(&self, f: BddRef, assignment: &Bits) -> bool {
        let mut cur = f;
        loop {
            let node = self.nodes[cur as usize];
            if node.var == TERMINAL_VAR {
                return cur == BDD_TRUE;
            }
            cur = if assignment.get(node.var as usize) {
                node.hi
            } else {
                node.lo
            };
        }
    }

    /// The cofactor `f|var=val` (restriction of one variable).
    pub fn cofactor(&mut self, f: BddRef, var: usize, val: bool) -> BddRef {
        let mut memo = HashMap::new();
        self.cofactor_rec(f, var as u32, val, &mut memo)
    }

    fn cofactor_rec(
        &mut self,
        f: BddRef,
        var: u32,
        val: bool,
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        let node = self.nodes[f as usize];
        if node.var > var {
            // Past the target level (terminals sort last): f is independent.
            return f;
        }
        if node.var == var {
            return if val { node.hi } else { node.lo };
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let lo = self.cofactor_rec(node.lo, var, val, memo);
        let hi = self.cofactor_rec(node.hi, var, val, memo);
        let r = self.mk(node.var, lo, hi);
        memo.insert(f, r);
        r
    }

    /// Existential quantification `∃ vars . f` — eliminates every variable
    /// whose bit is set in `vars` (the result is independent of them all).
    pub fn exists(&mut self, f: BddRef, vars: &Bits) -> BddRef {
        let mut memo = HashMap::new();
        self.exists_rec(f, vars, &mut memo)
    }

    fn exists_rec(&mut self, f: BddRef, vars: &Bits, memo: &mut HashMap<BddRef, BddRef>) -> BddRef {
        let node = self.nodes[f as usize];
        if node.var == TERMINAL_VAR {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let lo = self.exists_rec(node.lo, vars, memo);
        let hi = self.exists_rec(node.hi, vars, memo);
        let r = if vars.get(node.var as usize) {
            self.or(lo, hi)
        } else {
            self.mk(node.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// The relational product `∃ vars . (a ∧ b)` in one pass — the image
    /// operator of symbolic reachability. Quantification happens on the
    /// fly, so the full conjunction `a ∧ b` is never materialized.
    pub fn and_exists(&mut self, a: BddRef, b: BddRef, vars: &Bits) -> BddRef {
        let mut memo = HashMap::new();
        self.and_exists_rec(a, b, vars, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        a: BddRef,
        b: BddRef,
        vars: &Bits,
        memo: &mut HashMap<(BddRef, BddRef), BddRef>,
    ) -> BddRef {
        if a == BDD_FALSE || b == BDD_FALSE {
            return BDD_FALSE;
        }
        if a == BDD_TRUE && b == BDD_TRUE {
            return BDD_TRUE;
        }
        if a == BDD_TRUE {
            return self.exists_rec(b, vars, &mut HashMap::new());
        }
        if b == BDD_TRUE || a == b {
            return self.exists_rec(a, vars, &mut HashMap::new());
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let (va, vb) = (self.var(a), self.var(b));
        let v = va.min(vb);
        let (a0, a1) = if va == v {
            (self.nodes[a as usize].lo, self.nodes[a as usize].hi)
        } else {
            (a, a)
        };
        let (b0, b1) = if vb == v {
            (self.nodes[b as usize].lo, self.nodes[b as usize].hi)
        } else {
            (b, b)
        };
        let lo = self.and_exists_rec(a0, b0, vars, memo);
        let r = if vars.get(v as usize) {
            // Early exit: once the quantified disjunction saturates, the
            // other branch cannot change it.
            if lo == BDD_TRUE {
                BDD_TRUE
            } else {
                let hi = self.and_exists_rec(a1, b1, vars, memo);
                self.or(lo, hi)
            }
        } else {
            let hi = self.and_exists_rec(a1, b1, vars, memo);
            self.mk(v, lo, hi)
        };
        memo.insert(key, r);
        r
    }

    /// Renames the variables of `f`: variable `v` becomes `map[v]`. The
    /// mapping must be **order-preserving on the support of `f`** (for any
    /// two support variables `u < v`, `map[u] < map[v]`), which keeps the
    /// rebuild a single linear pass — the symbolic backend's next→current
    /// substitution (`2i+1 → 2i` on the interleaved order) satisfies it.
    pub fn rename(&mut self, f: BddRef, map: &[u32]) -> BddRef {
        debug_assert_eq!(map.len(), self.width);
        let mut memo = HashMap::new();
        self.rename_rec(f, map, &mut memo)
    }

    fn rename_rec(&mut self, f: BddRef, map: &[u32], memo: &mut HashMap<BddRef, BddRef>) -> BddRef {
        let node = self.nodes[f as usize];
        if node.var == TERMINAL_VAR {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let lo = self.rename_rec(node.lo, map, memo);
        let hi = self.rename_rec(node.hi, map, memo);
        let nv = map[node.var as usize];
        debug_assert!(
            nv < self.var(lo) && nv < self.var(hi),
            "rename map must preserve the variable order on the support"
        );
        let r = self.mk(nv, lo, hi);
        memo.insert(f, r);
        r
    }

    /// Number of satisfying assignments over the variable set `vars` only.
    ///
    /// Unlike [`Bdd::sat_count`], which counts over all `width` variables
    /// (and overflows `u128` past 128 of them), this counts assignments to
    /// the `vars` bits alone — the state-count query of the symbolic
    /// reachability backend, where `f` ranges over current-state variables
    /// and the next-state/auxiliary variables must not inflate the count.
    ///
    /// # Panics
    ///
    /// Panics when `f` depends on a variable outside `vars` (the count
    /// would be ill-defined).
    pub fn sat_count_within(&self, f: BddRef, vars: &Bits) -> u128 {
        // rank[v] = how many `vars` variables lie strictly below level v.
        let mut rank = vec![0u32; self.width + 1];
        for v in 0..self.width {
            rank[v + 1] = rank[v] + u32::from(vars.get(v));
        }
        let mut memo: HashMap<BddRef, u128> = HashMap::new();
        let c = self.sat_within_below(f, vars, &rank, &mut memo);
        c << rank[self.level(f) as usize]
    }

    fn sat_within_below(
        &self,
        f: BddRef,
        vars: &Bits,
        rank: &[u32],
        memo: &mut HashMap<BddRef, u128>,
    ) -> u128 {
        match f {
            BDD_FALSE => return 0,
            BDD_TRUE => return 1,
            _ => {}
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let node = self.nodes[f as usize];
        assert!(
            vars.get(node.var as usize),
            "sat_count_within: function depends on a variable outside the set"
        );
        let here = rank[node.var as usize] + 1;
        let lo = self.sat_within_below(node.lo, vars, rank, memo)
            << (rank[self.level(node.lo) as usize] - here);
        let hi = self.sat_within_below(node.hi, vars, rank, memo)
            << (rank[self.level(node.hi) as usize] - here);
        let c = lo + hi;
        memo.insert(f, c);
        c
    }

    /// Number of satisfying assignments over all `width` variables.
    pub fn sat_count(&self, f: BddRef) -> u128 {
        let mut memo: HashMap<BddRef, u128> = HashMap::new();
        // Solutions over the variables strictly below var(f) are counted by
        // the recursion; the `2^var(f)` factor restores the free variables
        // above the root.
        let c = self.sat_below(f, &mut memo);
        c << self.level(f)
    }

    /// The variable level of a node, with terminals at `width`.
    fn level(&self, f: BddRef) -> u32 {
        let v = self.var(f);
        if v == TERMINAL_VAR {
            self.width as u32
        } else {
            v
        }
    }

    fn sat_below(&self, f: BddRef, memo: &mut HashMap<BddRef, u128>) -> u128 {
        match f {
            BDD_FALSE => return 0,
            BDD_TRUE => return 1,
            _ => {}
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let node = self.nodes[f as usize];
        let lo = self.sat_below(node.lo, memo) << (self.level(node.lo) - node.var - 1);
        let hi = self.sat_below(node.hi, memo) << (self.level(node.hi) - node.var - 1);
        let c = lo + hi;
        memo.insert(f, c);
        c
    }

    /// All prime implicants of `f` (the Blake canonical form), by the
    /// classical recursive decomposition on the top variable `x`:
    ///
    /// ```text
    /// P(f) = P(f0 ∧ f1)
    ///      ∪ { x'·c | c ∈ P(f0), c ⊄ f0 ∧ f1 }
    ///      ∪ { x ·c | c ∈ P(f1), c ⊄ f0 ∧ f1 }
    /// ```
    ///
    /// Returns `None` when more than `limit` primes accumulate (the caller
    /// falls back to a heuristic cover) — a safety valve, not an expected
    /// path at synthesis widths.
    pub fn primes(&mut self, f: BddRef, limit: usize) -> Option<Vec<Cube>> {
        let mut memo: HashMap<BddRef, Vec<Cube>> = HashMap::new();
        self.primes_rec(f, limit, &mut memo)?;
        memo.remove(&f)
    }

    fn primes_rec(
        &mut self,
        f: BddRef,
        limit: usize,
        memo: &mut HashMap<BddRef, Vec<Cube>>,
    ) -> Option<()> {
        if memo.contains_key(&f) {
            return Some(());
        }
        let out = match f {
            BDD_FALSE => Vec::new(),
            BDD_TRUE => vec![Cube::full(self.width)],
            _ => {
                let Node { var, lo, hi } = self.nodes[f as usize];
                let both = self.and(lo, hi);
                self.primes_rec(both, limit, memo)?;
                self.primes_rec(lo, limit, memo)?;
                self.primes_rec(hi, limit, memo)?;
                let mut out = memo[&both].clone();
                for (branch, polarity) in [(lo, false), (hi, true)] {
                    for cube in memo[&branch].clone() {
                        // A branch prime survives iff it is not already an
                        // implicant of the var-free part (else dropping the
                        // literal keeps it an implicant — not prime).
                        if !self.cube_implies(&cube, both) {
                            let mut c = cube;
                            c.set(var as usize, Some(polarity));
                            out.push(c);
                        }
                    }
                }
                out
            }
        };
        if out.len() > limit {
            return None;
        }
        memo.insert(f, out);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(w: usize, cs: &[&str]) -> Cover {
        Cover::from_cubes(w, cs.iter().map(|s| s.parse().unwrap()))
    }

    #[test]
    fn terminals_and_trivial_ops() {
        let mut b = Bdd::new(3);
        assert_eq!(b.and(BDD_TRUE, BDD_FALSE), BDD_FALSE);
        assert_eq!(b.or(BDD_TRUE, BDD_FALSE), BDD_TRUE);
        assert_eq!(b.not(BDD_TRUE), BDD_FALSE);
        assert_eq!(b.sat_count(BDD_TRUE), 8);
        assert_eq!(b.sat_count(BDD_FALSE), 0);
    }

    #[test]
    fn cover_roundtrip_sat_counts() {
        let mut b = Bdd::new(3);
        for (cs, expect) in [
            (vec!["111"], 1u128),
            (vec!["1--"], 4),
            (vec!["11-", "0-1"], 4),
            (vec!["000", "111"], 2),
        ] {
            let f = b.from_cover(&cover(3, &cs));
            assert_eq!(b.sat_count(f), expect, "{cs:?}");
        }
    }

    #[test]
    fn semantic_equivalence_with_cover_algebra() {
        let mut b = Bdd::new(4);
        let f = cover(4, &["11--", "-011", "0-0-"]);
        let g = cover(4, &["1-1-", "--00"]);
        let bf = b.from_cover(&f);
        let bg = b.from_cover(&g);
        let band = b.and(bf, bg);
        let bor = b.or(bf, bg);
        assert_eq!(b.sat_count(band), f.and(&g).vertex_count());
        assert_eq!(b.sat_count(bor), f.or(&g).vertex_count());
        let bnot = b.not(bf);
        assert_eq!(b.sat_count(bnot), f.complement().vertex_count());
    }

    #[test]
    fn primes_of_classic_functions() {
        let mut b = Bdd::new(2);
        // XOR: both minterms are prime.
        let x = b.from_cover(&cover(2, &["01", "10"]));
        let mut p = b.primes(x, 16).unwrap();
        p.sort_by_key(|c| c.to_positional());
        assert_eq!(p.len(), 2);
        // Consensus: ab + a'c has three primes (ab, a'c, bc).
        let mut b3 = Bdd::new(3);
        let f = b3.from_cover(&cover(3, &["11-", "0-1"]));
        let p3 = b3.primes(f, 16).unwrap();
        assert_eq!(p3.len(), 3);
        assert!(p3.iter().any(|c| c.to_positional() == "-11"));
    }

    #[test]
    fn primes_limit_bails_out() {
        // The parity function of 6 vars has 2^5 = 32 primes (its minterms).
        let mut b = Bdd::new(6);
        let minterms: Vec<String> = (0..64u32)
            .filter(|v| v.count_ones() % 2 == 1)
            .map(|v| (0..6).rev().map(|i| ((v >> i) & 1).to_string()).collect())
            .collect();
        let refs: Vec<&str> = minterms.iter().map(|s| s.as_str()).collect();
        let f = b.from_cover(&cover(6, &refs));
        assert!(b.primes(f, 8).is_none());
        assert_eq!(b.primes(f, 64).unwrap().len(), 32);
    }

    #[test]
    fn cube_implies_is_containment() {
        let mut b = Bdd::new(3);
        let f = b.from_cover(&cover(3, &["1--"]));
        assert!(b.cube_implies(&"11-".parse().unwrap(), f));
        assert!(!b.cube_implies(&"-1-".parse().unwrap(), f));
    }

    /// A deterministic pseudo-random function of `w` variables: the BDD of
    /// a handful of arbitrary cubes seeded by `seed` (xorshift).
    fn arb_fn(b: &mut Bdd, w: usize, seed: u64) -> BddRef {
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut f = BDD_FALSE;
        for _ in 0..5 {
            let mut c = BDD_TRUE;
            for v in (0..w).rev() {
                match next() % 3 {
                    0 => c = b.mk(v as u32, BDD_FALSE, c),
                    1 => c = b.mk(v as u32, c, BDD_FALSE),
                    _ => {}
                }
            }
            f = b.or(f, c);
        }
        f
    }

    /// Brute-force evaluation count of `f` over all `2^w` assignments.
    fn brute_count(b: &Bdd, f: BddRef, w: usize) -> u128 {
        (0..1u32 << w)
            .filter(|&v| {
                let bits = Bits::from_ones(w, (0..w).filter(|&i| (v >> i) & 1 == 1));
                b.eval(f, &bits)
            })
            .count() as u128
    }

    #[test]
    fn sat_count_matches_brute_force_enumeration() {
        for w in [4usize, 8, 12] {
            let mut b = Bdd::new(w);
            for seed in 1..6u64 {
                let f = arb_fn(&mut b, w, seed * 977);
                assert_eq!(b.sat_count(f), brute_count(&b, f, w), "w={w} seed={seed}");
                assert_eq!(
                    b.sat_count_within(f, &Bits::ones(w)),
                    b.sat_count(f),
                    "full-set sat_count_within must equal sat_count"
                );
            }
        }
    }

    #[test]
    fn sat_count_within_ignores_unused_variables() {
        // f over vars {0,2} of a 6-var manager: counting within {0,2}
        // must not pay the 2^4 factor of the free variables.
        let mut b = Bdd::new(6);
        let x0 = b.literal(0, true);
        let x2 = b.literal(2, true);
        let f = b.or(x0, x2);
        let vars = Bits::from_ones(6, [0usize, 2]);
        assert_eq!(b.sat_count_within(f, &vars), 3);
        assert_eq!(b.sat_count(f), 3 << 4);
    }

    #[test]
    #[should_panic(expected = "outside the set")]
    fn sat_count_within_rejects_escaping_support() {
        let mut b = Bdd::new(4);
        let f = b.literal(3, true);
        let vars = Bits::from_ones(4, [0usize, 1]);
        b.sat_count_within(f, &vars);
    }

    #[test]
    fn exists_is_the_or_of_cofactors_and_independent_of_x() {
        for w in [5usize, 9] {
            let mut b = Bdd::new(w);
            for seed in 1..5u64 {
                let f = arb_fn(&mut b, w, seed * 131);
                for x in 0..w {
                    let vars = Bits::from_ones(w, [x]);
                    let q = b.exists(f, &vars);
                    let f0 = b.cofactor(f, x, false);
                    let f1 = b.cofactor(f, x, true);
                    let or01 = b.or(f0, f1);
                    assert_eq!(q, or01, "∃x.f = f|x=0 ∨ f|x=1 (w={w} x={x})");
                    // Independence: both cofactors of the result coincide.
                    assert_eq!(b.cofactor(q, x, false), b.cofactor(q, x, true));
                }
            }
        }
    }

    #[test]
    fn exists_over_a_set_quantifies_each_variable() {
        let mut b = Bdd::new(8);
        let f = arb_fn(&mut b, 8, 4242);
        let vars = Bits::from_ones(8, [1usize, 3, 6]);
        let joint = b.exists(f, &vars);
        let mut seq = f;
        for x in [1usize, 3, 6] {
            let one = Bits::from_ones(8, [x]);
            seq = b.exists(seq, &one);
        }
        assert_eq!(joint, seq);
    }

    #[test]
    fn and_exists_is_exists_of_the_conjunction() {
        for w in [6usize, 10] {
            let mut b = Bdd::new(w);
            for seed in 1..6u64 {
                let f = arb_fn(&mut b, w, seed * 31);
                let g = arb_fn(&mut b, w, seed * 67 + 5);
                let vars = Bits::from_ones(w, (0..w).filter(|v| v % 2 == 0));
                let fused = b.and_exists(f, g, &vars);
                let conj = b.and(f, g);
                let staged = b.exists(conj, &vars);
                assert_eq!(fused, staged, "w={w} seed={seed}");
            }
        }
    }

    #[test]
    fn rename_round_trip_is_identity() {
        // Shift the odd "next-state" rail down onto the even rail and back
        // — the exact substitution pair of the symbolic backend.
        let w = 10;
        let mut b = Bdd::new(w);
        // A function of the odd variables only.
        let mut f = BDD_TRUE;
        for i in (0..w / 2).rev() {
            f = b.mk((2 * i + 1) as u32, BDD_FALSE, f);
        }
        let mut down: Vec<u32> = (0..w as u32).collect();
        let mut up: Vec<u32> = (0..w as u32).collect();
        for i in 0..w / 2 {
            down[2 * i + 1] = 2 * i as u32;
            up[2 * i] = (2 * i + 1) as u32;
        }
        let g = b.rename(f, &down);
        assert_ne!(g, f);
        let back = b.rename(g, &up);
        assert_eq!(back, f);
        // Semantics: g is f with every odd var read from the even rail.
        let assignment = Bits::from_ones(w, (0..w / 2).map(|i| 2 * i));
        assert!(b.eval(g, &assignment));
        assert!(!b.eval(f, &assignment));
    }

    #[test]
    fn literal_iff_and_eval_agree() {
        let mut b = Bdd::new(3);
        let x = b.literal(0, true);
        let ny = b.literal(1, false);
        let e = b.iff(x, ny);
        // x ↔ ¬y: satisfied by exactly half the assignments.
        assert_eq!(b.sat_count(e), 4);
        assert!(b.eval(e, &Bits::from_ones(3, [0usize])));
        assert!(!b.eval(e, &Bits::from_ones(3, [0usize, 1])));
    }
}
