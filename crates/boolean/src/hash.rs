//! In-house content hashing for the artifact store.
//!
//! The build environment has no crates.io access, so the workspace carries
//! its own small non-cryptographic hasher: 64-bit FNV-1a with an
//! xxhash-style avalanche finalizer. Content keys derived from it address
//! the cross-session artifact store of `si-serve`, so the contract that
//! matters is **stability**: the same bytes hash to the same value on every
//! platform, build and session (no per-process seeding, unlike
//! `std::collections::hash_map::RandomState`).
//!
//! Collisions are possible in principle (64 bits, non-cryptographic);
//! consumers that reuse artifacts across hash equality are expected to
//! revalidate semantically (see `si_core::revalidate_clusters`).
//!
//! # Examples
//!
//! ```
//! use si_boolean::hash::{fnv1a_64, Fnv64};
//!
//! let one_shot = fnv1a_64(b"hello world");
//! let mut h = Fnv64::new();
//! h.write(b"hello ");
//! h.write(b"world");
//! assert_eq!(h.finish(), one_shot);
//! assert_ne!(fnv1a_64(b"a"), fnv1a_64(b"b"));
//! ```

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming 64-bit FNV-1a hasher with an avalanche finalizer.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a string (its UTF-8 bytes) followed by a `0xff` terminator,
    /// so `("ab","c")` and `("a","bc")` hash differently when written as
    /// consecutive fields.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes()).write(&[0xff])
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorbs a `usize` as `u64`.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// The digest: the FNV state pushed through an xxhash/splitmix-style
    /// avalanche so that short inputs still diffuse into all 64 bits.
    pub fn finish(&self) -> u64 {
        let mut z = self.state;
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One-shot 64-bit hash of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(fnv1a_64(b"abc"), fnv1a_64(b"abc"));
        // Pinned value: the store's disk artifacts are addressed by these
        // digests, so the function must never silently change.
        assert_eq!(fnv1a_64(b""), Fnv64::new().finish());
        let pinned = fnv1a_64(b"sisyn");
        assert_eq!(fnv1a_64(b"sisyn"), pinned);
    }

    #[test]
    fn field_termination_disambiguates() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn short_inputs_diffuse() {
        let h1 = fnv1a_64(&[1]);
        let h2 = fnv1a_64(&[2]);
        // Avalanched digests of adjacent bytes differ in many bit positions.
        assert!((h1 ^ h2).count_ones() > 16);
    }
}
