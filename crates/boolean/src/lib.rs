//! Cube/cover Boolean algebra for speed-independent circuit synthesis.
//!
//! This crate is the Boolean substrate of the `sisyn` workspace — the
//! reproduction of Pastor, Cortadella, Kondratyev and Roig, *“Structural
//! Methods for the Synthesis of Speed-Independent Circuits”*. It provides
//! exactly the machinery §II-A of the paper assumes:
//!
//! * [`Bits`] — fixed-width bit vectors (vertices, markings, node sets);
//! * [`Cube`] — three-valued cubes in positional notation (`10-1`);
//! * [`Cover`] — sums of cubes with tautology/containment/complement;
//! * [`minimize`] — a compact espresso-style two-level minimizer;
//! * [`Minimizer`] / [`MinimizerChoice`] — pluggable minimizer backends
//!   (espresso-style, iterated, BDD-backed exact, and per-cover `auto`);
//! * [`Bdd`] — a small hash-consed ROBDD package behind the exact
//!   backend.
//!
//! # Examples
//!
//! ```
//! use si_boolean::{Cover, Cube, minimize};
//!
//! // f = a·b + a·b'  minimizes to  a
//! let on = Cover::from_cubes(2, vec!["11".parse()?, "10".parse()?]);
//! let r = minimize(&on, &Cover::empty(2));
//! assert!(r.cover.equivalent(&Cover::from_cube("1-".parse()?)));
//! # Ok::<(), si_boolean::ParseCubeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bdd;
mod bits;
mod cover;
mod cube;
mod espresso;
pub mod hash;
mod minimize;
mod minimizer;

pub use bdd::{Bdd, BddRef, BDD_FALSE, BDD_TRUE};
pub use bits::{hash_word_slice, Bits, IterOnes};
pub use cover::Cover;
pub use cube::{Cube, CubeVal, ParseCubeError, Vertices};
pub use espresso::{
    essential_cubes, minimize_exact_iterated, minimize_exact_iterated_off, reduce_cube,
};
pub use minimize::{expand_cube, minimize, minimize_against_off, MinimizeResult};
pub use minimizer::{
    AutoMinimizer, BddMinimizer, EspressoMinimizer, ExactMinimizer, Minimizer, MinimizerChoice,
};
