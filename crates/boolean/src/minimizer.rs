//! Pluggable two-level minimizer backends behind one trait.
//!
//! The synthesis flows minimize many independent single-output functions,
//! and no one algorithm wins everywhere: the espresso-style single pass is
//! fastest, the iterated EXPAND/IRREDUNDANT/REDUCE loop squeezes a few more
//! literals out of medium covers, and the BDD-backed prime/cover backend is
//! exact on the small covers where exactness is affordable. [`Minimizer`]
//! makes the choice a runtime parameter — threaded from
//! `sisyn --minimizer` through `SynthesisOptions` down to every cover — and
//! [`MinimizerChoice::Auto`] selects per function by cover size, never
//! doing worse than the espresso baseline.
//!
//! Every backend obeys one contract (checked by the shared property tests
//! in `tests/prop_minimizers.rs`): the result **covers `on`** and is
//! **disjoint from `off`**; `dc` is extra freedom the backend may use.
//!
//! # Examples
//!
//! ```
//! use si_boolean::{Cover, Minimizer, MinimizerChoice};
//!
//! let on = Cover::from_cubes(2, vec!["11".parse()?, "10".parse()?]);
//! let off = on.complement();
//! for choice in MinimizerChoice::ALL {
//!     let r = choice.backend().minimize(&on, &Cover::empty(2), &off);
//!     assert!(r.cover.covers(&on));
//!     assert!(!r.cover.intersects(&off));
//!     assert_eq!(r.cover.literal_count(), 1); // all agree: f = a
//! }
//! # Ok::<(), si_boolean::ParseCubeError>(())
//! ```

use crate::bdd::Bdd;
use crate::cover::Cover;
use crate::cube::Cube;
use crate::espresso::minimize_exact_iterated_off;
use crate::minimize::{minimize_against_off, MinimizeResult};

/// A two-level single-output minimizer backend.
///
/// Implementations minimize `on` against the freedom left by `off` (any
/// vertex outside `off` may be covered; `dc` names the explicit don't-care
/// part of that freedom for backends that use it). The covers need not
/// partition the space; when `on` and `off` overlap the behaviour is
/// unspecified — synthesis never produces such inputs.
pub trait Minimizer: std::fmt::Debug + Send + Sync {
    /// Short stable identifier (`"espresso"`, `"exact"`, `"bdd"`,
    /// `"auto"`), used in CLI flags, JSON reports and the bench schema.
    fn name(&self) -> &'static str;

    /// Minimizes `on` against `off`, with `dc` as explicit extra freedom.
    ///
    /// The result covers `on` and is disjoint from `off`.
    fn minimize(&self, on: &Cover, dc: &Cover, off: &Cover) -> MinimizeResult;
}

/// The classical espresso-style single EXPAND → IRREDUNDANT pass
/// ([`crate::minimize_against_off`]) — the default backend and the fastest.
#[derive(Copy, Clone, Debug, Default)]
pub struct EspressoMinimizer;

impl Minimizer for EspressoMinimizer {
    fn name(&self) -> &'static str {
        "espresso"
    }

    fn minimize(&self, on: &Cover, dc: &Cover, off: &Cover) -> MinimizeResult {
        minimize_against_off(on, dc, off)
    }
}

/// The iterated EXPAND / IRREDUNDANT / REDUCE loop
/// ([`crate::minimize_exact_iterated`]): never more literals than
/// [`EspressoMinimizer`], a few times slower.
#[derive(Copy, Clone, Debug, Default)]
pub struct ExactMinimizer;

impl Minimizer for ExactMinimizer {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn minimize(&self, on: &Cover, dc: &Cover, off: &Cover) -> MinimizeResult {
        minimize_exact_iterated_off(on, dc, off)
    }
}

/// The BDD-backed exact backend: builds the BDDs of `on` and of the
/// care-freedom `on ∨ ¬off`, enumerates **all** prime implicants
/// ([`Bdd::primes`]), then solves the covering problem with
/// essential-prime extraction plus greedy selection and an irredundancy
/// sweep. Exact prime generation makes it the strongest backend on small
/// covers; past [`BddMinimizer::PRIME_LIMIT`] primes it falls back to the
/// espresso pass (same contract, so callers never see the difference).
#[derive(Copy, Clone, Debug, Default)]
pub struct BddMinimizer;

impl BddMinimizer {
    /// Safety valve on the prime enumeration (the number of primes of a
    /// width-`n` function can reach `3^n/n`); beyond this the backend falls
    /// back to the espresso pass.
    pub const PRIME_LIMIT: usize = 4096;
}

impl Minimizer for BddMinimizer {
    fn name(&self) -> &'static str {
        "bdd"
    }

    fn minimize(&self, on: &Cover, dc: &Cover, off: &Cover) -> MinimizeResult {
        let literals_before = on.literal_count();
        if on.is_empty() {
            return MinimizeResult {
                cover: Cover::empty(on.width()),
                literals_before,
                literals_after: 0,
            };
        }
        let mut bdd = Bdd::new(on.width());
        let on_f = bdd.from_cover(on);
        let off_f = bdd.from_cover(off);
        // The upper bound of any valid cover: everything that is not OFF
        // (plus ON itself, in case the caller's covers overlap).
        let not_off = bdd.not(off_f);
        let upper = bdd.or(on_f, not_off);
        let Some(primes) = bdd.primes(upper, Self::PRIME_LIMIT) else {
            return minimize_against_off(on, dc, off);
        };

        // Covering: pick primes until every ON vertex is covered. Essential
        // primes (sole cover of some ON vertex) are forced; the rest are
        // chosen greedily by covered-vertices-per-literal; a final reverse
        // sweep drops any cube the greedy phase made redundant.
        let mut chosen: Vec<Cube> = Vec::new();
        let mut remaining = on_f;
        let mut available: Vec<(Cube, crate::bdd::BddRef)> = primes
            .into_iter()
            .map(|c| {
                let f = bdd.from_cube(&c);
                (c, f)
            })
            .collect();
        // Essential pass: a prime is essential iff some ON vertex is inside
        // it and outside the union of all other primes. Prefix/suffix
        // union arrays give each "union of the others" in O(p) total ORs
        // instead of O(p²).
        let (prefix, suffix) = union_scans(&mut bdd, &available);
        let mut essential_idx = Vec::new();
        for i in 0..available.len() {
            let others = bdd.or(prefix[i], suffix[i + 1]);
            let only_here = bdd.diff(on_f, others);
            let covered_only_here = bdd.and(only_here, available[i].1);
            if covered_only_here != crate::bdd::BDD_FALSE {
                essential_idx.push(i);
            }
        }
        for &i in essential_idx.iter().rev() {
            let (cube, f) = available.swap_remove(i);
            remaining = bdd.diff(remaining, f);
            chosen.push(cube);
        }
        while remaining != crate::bdd::BDD_FALSE {
            let mut best: Option<(usize, u128, usize)> = None;
            for (i, &(ref cube, f)) in available.iter().enumerate() {
                let gain = bdd.and(remaining, f);
                let covered = bdd.sat_count(gain);
                if covered == 0 {
                    continue;
                }
                let lits = cube.literal_count();
                // More coverage wins; fewer literals break ties.
                let better = match best {
                    None => true,
                    Some((_, bc, bl)) => covered > bc || (covered == bc && lits < bl),
                };
                if better {
                    best = Some((i, covered, lits));
                }
            }
            let Some((i, _, _)) = best else {
                // No prime advances the cover — only possible when ON
                // overlaps OFF (contract violation); fall back.
                return minimize_against_off(on, dc, off);
            };
            let (cube, f) = available.swap_remove(i);
            remaining = bdd.diff(remaining, f);
            chosen.push(cube);
        }
        // Irredundancy: drop cubes (most-literal first) whose removal keeps
        // ON covered. Prefix/suffix scans make each "rest of the cover"
        // one OR; they are rebuilt only when a cube is actually dropped.
        chosen.sort_by_key(|c| std::cmp::Reverse(c.literal_count()));
        let mut with_refs: Vec<(Cube, crate::bdd::BddRef)> = chosen
            .into_iter()
            .map(|c| {
                let f = bdd.from_cube(&c);
                (c, f)
            })
            .collect();
        let mut i = 0;
        let (mut prefix, mut suffix) = union_scans(&mut bdd, &with_refs);
        while with_refs.len() > 1 && i < with_refs.len() {
            let rest = bdd.or(prefix[i], suffix[i + 1]);
            if bdd.diff(on_f, rest) == crate::bdd::BDD_FALSE {
                with_refs.remove(i);
                (prefix, suffix) = union_scans(&mut bdd, &with_refs);
            } else {
                i += 1;
            }
        }
        let chosen: Vec<Cube> = with_refs.into_iter().map(|(c, _)| c).collect();
        let cover = Cover::from_cubes(on.width(), chosen);
        MinimizeResult {
            literals_before,
            literals_after: cover.literal_count(),
            cover,
        }
    }
}

/// Prefix/suffix OR-scans over `(cube, bdd)` pairs: `prefix[i]` is the
/// union of items `< i`, `suffix[i]` of items `>= i`, so "the union of
/// everything except `i`" is one OR — the O(p) replacement for the naive
/// O(p²) rest-of-cover unions in the essential and irredundancy passes.
fn union_scans(
    bdd: &mut Bdd,
    items: &[(Cube, crate::bdd::BddRef)],
) -> (Vec<crate::bdd::BddRef>, Vec<crate::bdd::BddRef>) {
    let n = items.len();
    let mut prefix = vec![crate::bdd::BDD_FALSE; n + 1];
    for i in 0..n {
        prefix[i + 1] = bdd.or(prefix[i], items[i].1);
    }
    let mut suffix = vec![crate::bdd::BDD_FALSE; n + 1];
    for i in (0..n).rev() {
        suffix[i] = bdd.or(suffix[i + 1], items[i].1);
    }
    (prefix, suffix)
}

/// Per-function backend selection by cover size, with the espresso result
/// as a floor: the selected backend's cover is kept only when it does not
/// lose literals to the espresso pass, so `auto` is **never worse in
/// literals than `espresso`** (the property the benchmark gate pins).
#[derive(Copy, Clone, Debug, Default)]
pub struct AutoMinimizer;

impl AutoMinimizer {
    /// Covers at most this many cubes wide go to the exact BDD backend.
    pub const BDD_CUBES: usize = 24;
    /// Functions of at most this many variables go to the BDD backend.
    pub const BDD_WIDTH: usize = 28;
    /// Covers at most this many cubes wide go to the iterated backend;
    /// anything larger takes the single espresso pass only.
    pub const EXACT_CUBES: usize = 96;
}

impl Minimizer for AutoMinimizer {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn minimize(&self, on: &Cover, dc: &Cover, off: &Cover) -> MinimizeResult {
        let espresso = EspressoMinimizer.minimize(on, dc, off);
        let candidate = if on.cube_count() <= Self::BDD_CUBES && on.width() <= Self::BDD_WIDTH {
            Some(BddMinimizer.minimize(on, dc, off))
        } else if on.cube_count() <= Self::EXACT_CUBES {
            Some(ExactMinimizer.minimize(on, dc, off))
        } else {
            None
        };
        match candidate {
            Some(c) if c.cover.literal_count() < espresso.cover.literal_count() => c,
            _ => espresso,
        }
    }
}

/// Which minimizer backend a synthesis run uses — the one options surface
/// shared by `SynthesisOptions`, the `Engine` builder and
/// `sisyn --minimizer`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum MinimizerChoice {
    /// [`EspressoMinimizer`] — the fast single-pass default.
    #[default]
    Espresso,
    /// [`ExactMinimizer`] — the iterated loop.
    Exact,
    /// [`BddMinimizer`] — BDD-backed exact primes + covering.
    Bdd,
    /// [`AutoMinimizer`] — per-function selection by cover size.
    Auto,
}

impl MinimizerChoice {
    /// Every selectable backend, in CLI order.
    pub const ALL: [MinimizerChoice; 4] = [
        MinimizerChoice::Espresso,
        MinimizerChoice::Exact,
        MinimizerChoice::Bdd,
        MinimizerChoice::Auto,
    ];

    /// The backend this choice names.
    pub fn backend(self) -> &'static dyn Minimizer {
        match self {
            MinimizerChoice::Espresso => &EspressoMinimizer,
            MinimizerChoice::Exact => &ExactMinimizer,
            MinimizerChoice::Bdd => &BddMinimizer,
            MinimizerChoice::Auto => &AutoMinimizer,
        }
    }

    /// The stable identifier ([`Minimizer::name`]).
    pub fn name(self) -> &'static str {
        self.backend().name()
    }
}

impl std::str::FromStr for MinimizerChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "espresso" => Ok(MinimizerChoice::Espresso),
            "exact" => Ok(MinimizerChoice::Exact),
            "bdd" => Ok(MinimizerChoice::Bdd),
            "auto" => Ok(MinimizerChoice::Auto),
            other => Err(format!(
                "unknown minimizer {other:?} (expected espresso|exact|bdd|auto)"
            )),
        }
    }
}

impl std::fmt::Display for MinimizerChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(w: usize, cs: &[&str]) -> Cover {
        Cover::from_cubes(w, cs.iter().map(|s| s.parse().unwrap()))
    }

    /// Shared fixtures: (on, dc) pairs exercising merges, don't-cares and
    /// covers with no single-cube solution.
    fn fixtures() -> Vec<(Cover, Cover)> {
        vec![
            (cover(2, &["11", "10"]), Cover::empty(2)),
            (cover(2, &["01", "10"]), Cover::empty(2)),
            (cover(3, &["111", "001"]), cover(3, &["011"])),
            (cover(4, &["1100", "1101", "1111", "1110"]), Cover::empty(4)),
            (cover(4, &["0000", "0001", "1001"]), cover(4, &["1000"])),
            (cover(3, &["000", "011", "101", "110"]), Cover::empty(3)),
            (Cover::empty(3), Cover::empty(3)),
            (cover(1, &["0", "1"]), Cover::empty(1)),
        ]
    }

    #[test]
    fn all_backends_valid_on_fixtures() {
        for (on, dc) in fixtures() {
            let off = on.or(&dc).complement();
            for choice in MinimizerChoice::ALL {
                let r = choice.backend().minimize(&on, &dc, &off);
                assert!(
                    r.cover.covers(&on),
                    "{choice}: does not cover on={on} (got {})",
                    r.cover
                );
                assert!(
                    !r.cover.intersects(&off),
                    "{choice}: touches off (on={on}, got {})",
                    r.cover
                );
            }
        }
    }

    #[test]
    fn bdd_backend_is_exact_on_consensus() {
        // ab + a'c: the exact minimum is 4 literals (ab + a'c).
        let on = cover(3, &["110", "111", "001", "011"]);
        let off = on.complement();
        let r = BddMinimizer.minimize(&on, &Cover::empty(3), &off);
        assert_eq!(r.cover.literal_count(), 4, "got {}", r.cover);
    }

    #[test]
    fn auto_never_worse_than_espresso_on_fixtures() {
        for (on, dc) in fixtures() {
            let off = on.or(&dc).complement();
            let auto = AutoMinimizer.minimize(&on, &dc, &off);
            let esp = EspressoMinimizer.minimize(&on, &dc, &off);
            assert!(
                auto.cover.literal_count() <= esp.cover.literal_count(),
                "auto {} vs espresso {} on {on}",
                auto.cover.literal_count(),
                esp.cover.literal_count()
            );
        }
    }

    #[test]
    fn choice_parses_and_displays() {
        for choice in MinimizerChoice::ALL {
            let s = choice.to_string();
            assert_eq!(s.parse::<MinimizerChoice>().unwrap(), choice);
        }
        assert!("quine".parse::<MinimizerChoice>().is_err());
        assert_eq!(MinimizerChoice::default(), MinimizerChoice::Espresso);
    }
}
