//! Three-valued cubes.
//!
//! A cube over `n` Boolean variables assigns each variable one of `0`, `1`
//! or `-` (absent / don't care). Cubes are the positional-notation implicants
//! of §II-A of the paper: value `0` denotes a complemented literal, `1` a
//! plain literal, `-` that the variable does not appear.

use crate::bits::Bits;
use std::fmt;

/// The value a cube assigns to one variable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CubeVal {
    /// Complemented literal (`x'`).
    Zero,
    /// Plain literal (`x`).
    One,
    /// Variable absent from the cube.
    DontCare,
}

impl fmt::Display for CubeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeVal::Zero => write!(f, "0"),
            CubeVal::One => write!(f, "1"),
            CubeVal::DontCare => write!(f, "-"),
        }
    }
}

/// A cube (product term) over a fixed set of Boolean variables.
///
/// Internally two bit vectors: `care` marks variables that appear as a
/// literal, `val` holds their polarity (`val` is zero wherever `care` is
/// zero, so derived `Eq`/`Hash` are sound).
///
/// # Examples
///
/// ```
/// use si_boolean::Cube;
///
/// let c: Cube = "1-0".parse()?;
/// assert_eq!(c.literal_count(), 2);
/// assert!(c.contains_vertex(&"100".parse::<Cube>()?.to_vertex().unwrap()));
/// # Ok::<(), si_boolean::ParseCubeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    care: Bits,
    val: Bits,
}

/// Error returned when parsing a cube from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCubeError {
    offending: char,
}

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cube character {:?} (expected '0', '1' or '-')",
            self.offending
        )
    }
}

impl std::error::Error for ParseCubeError {}

impl Cube {
    /// The full cube (`---…-`): every variable absent, covers everything.
    pub fn full(width: usize) -> Self {
        Cube {
            care: Bits::zeros(width),
            val: Bits::zeros(width),
        }
    }

    /// A cube fixing exactly one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var >= width`.
    pub fn literal(width: usize, var: usize, polarity: bool) -> Self {
        let mut c = Cube::full(width);
        c.set(var, Some(polarity));
        c
    }

    /// The minterm cube of a complete assignment.
    pub fn from_vertex(v: &Bits) -> Self {
        Cube {
            care: Bits::ones(v.len()),
            val: v.clone(),
        }
    }

    /// Builds a cube from `(care, val)` bit vectors.
    ///
    /// Bits of `val` outside `care` are cleared.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn from_bits(care: Bits, mut val: Bits) -> Self {
        assert_eq!(care.len(), val.len(), "care/val width mismatch");
        val.intersect_with(&care);
        Cube { care, val }
    }

    /// Number of variables the cube is defined over.
    pub fn width(&self) -> usize {
        self.care.len()
    }

    /// The value assigned to variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn get(&self, i: usize) -> CubeVal {
        if !self.care.get(i) {
            CubeVal::DontCare
        } else if self.val.get(i) {
            CubeVal::One
        } else {
            CubeVal::Zero
        }
    }

    /// Sets variable `i` to a literal (`Some(polarity)`) or removes it (`None`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn set(&mut self, i: usize, v: Option<bool>) {
        match v {
            Some(p) => {
                self.care.set(i, true);
                self.val.set(i, p);
            }
            None => {
                self.care.set(i, false);
                self.val.set(i, false);
            }
        }
    }

    /// Number of literals (non-don't-care positions).
    pub fn literal_count(&self) -> usize {
        self.care.count_ones()
    }

    /// Returns `true` if the cube is the full cube.
    pub fn is_full(&self) -> bool {
        self.care.is_zero()
    }

    /// Returns `true` if the cube is a single vertex (minterm).
    pub fn is_vertex(&self) -> bool {
        self.literal_count() == self.width()
    }

    /// The vertex if the cube is a minterm, else `None`.
    pub fn to_vertex(&self) -> Option<Bits> {
        self.is_vertex().then(|| self.val.clone())
    }

    /// The `care` mask (set where a literal appears).
    pub fn care(&self) -> &Bits {
        &self.care
    }

    /// The polarity vector (zero outside `care`).
    pub fn val(&self) -> &Bits {
        &self.val
    }

    /// Tests whether a complete assignment lies inside the cube.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn contains_vertex(&self, v: &Bits) -> bool {
        // v agrees with val on all care positions: (v ^ val) & care == 0
        let mut d = v.clone();
        d.xor_with(&self.val);
        d.intersect_with(&self.care);
        d.is_zero()
    }

    /// Cube containment: `true` iff every vertex of `other` is in `self`.
    pub fn contains_cube(&self, other: &Cube) -> bool {
        if !self.care.is_subset(&other.care) {
            return false;
        }
        let mut d = self.val.clone();
        d.xor_with(&other.val);
        d.intersect_with(&self.care);
        d.is_zero()
    }

    /// Number of variables where the cubes take opposite literal values.
    ///
    /// Distance 0 means the cubes intersect; distance 1 means they are
    /// mergeable by the consensus/distance-1 rule.
    pub fn distance(&self, other: &Cube) -> usize {
        let mut d = self.val.clone();
        d.xor_with(&other.val);
        d.intersect_with(&self.care);
        d.intersect_with(&other.care);
        d.count_ones()
    }

    /// Cube intersection; `None` if the cubes are disjoint.
    pub fn and(&self, other: &Cube) -> Option<Cube> {
        if self.distance(other) > 0 {
            return None;
        }
        Some(Cube {
            care: self.care.union(&other.care),
            val: self.val.union(&other.val),
        })
    }

    /// Returns `true` iff the cubes share at least one vertex.
    pub fn intersects(&self, other: &Cube) -> bool {
        self.distance(other) == 0
    }

    /// Smallest cube containing both cubes.
    pub fn supercube(&self, other: &Cube) -> Cube {
        // keep literals that appear in both with equal polarity
        let mut care = self.care.intersection(&other.care);
        let mut agree = self.val.clone();
        agree.xor_with(&other.val);
        agree.invert();
        care.intersect_with(&agree);
        let mut val = self.val.clone();
        val.intersect_with(&care);
        Cube { care, val }
    }

    /// The cofactor of this cube with respect to `wrt` (Shannon cofactor).
    ///
    /// Returns `None` when the cubes are disjoint. Otherwise the result has
    /// the literals of `wrt` removed.
    pub fn cofactor(&self, wrt: &Cube) -> Option<Cube> {
        if self.distance(wrt) > 0 {
            return None;
        }
        let mut care = self.care.clone();
        care.subtract(&wrt.care);
        let mut val = self.val.clone();
        val.intersect_with(&care);
        Some(Cube { care, val })
    }

    /// `self \ other` as a list of pairwise-disjoint cubes (sharp operation).
    pub fn sharp(&self, other: &Cube) -> Vec<Cube> {
        if self.distance(other) > 0 {
            return vec![self.clone()]; // disjoint: nothing removed
        }
        // Positions where `other` has a literal but `self` does not.
        let mut free = other.care.clone();
        free.subtract(&self.care);
        let mut result = Vec::new();
        let mut prefix = self.clone();
        for i in free.iter_ones() {
            // Split on variable i: the half opposite to `other` survives.
            let mut piece = prefix.clone();
            piece.set(i, Some(!other.val.get(i)));
            result.push(piece);
            prefix.set(i, Some(other.val.get(i)));
        }
        // `prefix` now lies entirely inside `other` and is dropped.
        result
    }

    /// Number of vertices in the cube, as `u128`.
    ///
    /// # Panics
    ///
    /// Panics if `width - literal_count >= 128`.
    pub fn vertex_count(&self) -> u128 {
        let free = self.width() - self.literal_count();
        assert!(free < 128, "cube too wide for u128 vertex count");
        1u128 << free
    }

    /// Iterates over all vertices of the cube (lexicographic in free vars).
    ///
    /// Intended for small cubes (tests, oracles); the iterator yields
    /// `2^(width - literals)` items.
    pub fn vertices(&self) -> Vertices {
        Vertices {
            cube: self.clone(),
            free: {
                let mut f = self.care.clone();
                f.invert();
                f.iter_ones().collect()
            },
            counter: 0,
            done: false,
        }
    }

    /// Renders the cube restricted to positional notation, e.g. `10-1`.
    pub fn to_positional(&self) -> String {
        (0..self.width()).map(|i| self.get(i).to_string()).collect()
    }

    /// The same cube over a wider variable set: the appended variables are
    /// don't-cares. Appending columns leaves every existing variable index
    /// unchanged, so all cube/cover operations commute with widening — the
    /// property the incremental CSC re-analysis relies on.
    ///
    /// # Panics
    ///
    /// Panics if `width < self.width()`.
    pub fn widened(&self, width: usize) -> Cube {
        assert!(width >= self.width(), "widened cannot shrink a cube");
        let grow = |b: &Bits| Bits::from_ones(width, b.iter_ones());
        Cube {
            care: grow(&self.care),
            val: grow(&self.val),
        }
    }
}

/// Iterator over the vertices of a [`Cube`]; created by [`Cube::vertices`].
#[derive(Debug)]
pub struct Vertices {
    cube: Cube,
    free: Vec<usize>,
    counter: u64,
    done: bool,
}

impl Iterator for Vertices {
    type Item = Bits;

    fn next(&mut self) -> Option<Bits> {
        if self.done {
            return None;
        }
        let mut v = self.cube.val.clone();
        for (k, &pos) in self.free.iter().enumerate() {
            v.set(pos, (self.counter >> k) & 1 == 1);
        }
        self.counter += 1;
        if self.counter >= (1u64 << self.free.len().min(63)) {
            self.done = true;
        }
        Some(v)
    }
}

impl std::str::FromStr for Cube {
    type Err = ParseCubeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let chars: Vec<char> = s.chars().collect();
        let mut c = Cube::full(chars.len());
        for (i, ch) in chars.into_iter().enumerate() {
            match ch {
                '0' => c.set(i, Some(false)),
                '1' => c.set(i, Some(true)),
                '-' | 'x' | 'X' => {}
                other => return Err(ParseCubeError { offending: other }),
            }
        }
        Ok(c)
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({})", self.to_positional())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_positional())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Cube {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["---", "010", "1-0", ""] {
            assert_eq!(c(s).to_string(), s);
        }
        assert!("10z".parse::<Cube>().is_err());
    }

    #[test]
    fn full_and_literal() {
        assert!(Cube::full(5).is_full());
        let l = Cube::literal(4, 2, true);
        assert_eq!(l.to_string(), "--1-");
        assert_eq!(l.literal_count(), 1);
    }

    #[test]
    fn containment() {
        assert!(c("1--").contains_cube(&c("10-")));
        assert!(!c("10-").contains_cube(&c("1--")));
        assert!(c("---").contains_cube(&c("010")));
        assert!(c("101").contains_cube(&c("101")));
        assert!(!c("0--").contains_cube(&c("10-")));
    }

    #[test]
    fn vertex_membership() {
        let cube = c("1-0");
        assert!(cube.contains_vertex(&Bits::from_ones(3, [0])));
        assert!(cube.contains_vertex(&Bits::from_ones(3, [0, 1])));
        assert!(!cube.contains_vertex(&Bits::from_ones(3, [0, 2])));
    }

    #[test]
    fn distance_and_intersection() {
        assert_eq!(c("10-").distance(&c("11-")), 1);
        assert_eq!(c("10-").distance(&c("01-")), 2);
        assert_eq!(c("10-").distance(&c("1-1")), 0);
        assert_eq!(c("10-").and(&c("1-1")).unwrap(), c("101"));
        assert!(c("10-").and(&c("11-")).is_none());
    }

    #[test]
    fn supercube_is_smallest() {
        assert_eq!(c("101").supercube(&c("100")), c("10-"));
        assert_eq!(c("1--").supercube(&c("0--")), c("---"));
        let a = c("10-");
        let b = c("-11");
        let sc = a.supercube(&b);
        assert!(sc.contains_cube(&a) && sc.contains_cube(&b));
        assert_eq!(
            sc,
            c("1--").and(&c("---")).unwrap().supercube(&b).supercube(&a)
        );
    }

    #[test]
    fn cofactor() {
        assert_eq!(c("10-").cofactor(&c("1--")).unwrap(), c("-0-"));
        assert!(c("10-").cofactor(&c("0--")).is_none());
        assert_eq!(c("1-1").cofactor(&c("--1")).unwrap(), c("1--"));
    }

    #[test]
    fn sharp_partitions() {
        // (---) \ (1-0) = (0--) + (1-1)
        let pieces = c("---").sharp(&c("1-0"));
        assert_eq!(pieces.len(), 2);
        let total: u128 = pieces.iter().map(Cube::vertex_count).sum();
        assert_eq!(total, 8 - 2);
        // pieces are disjoint from the removed cube and from each other
        for p in &pieces {
            assert!(!p.intersects(&c("1-0")));
        }
        assert!(!pieces[0].intersects(&pieces[1]));
        // disjoint sharp returns self
        assert_eq!(c("1--").sharp(&c("0--")), vec![c("1--")]);
        // sharp of self is empty
        assert!(c("10-").sharp(&c("10-")).is_empty());
        // sharp by a larger cube is empty
        assert!(c("10-").sharp(&c("1--")).is_empty());
    }

    #[test]
    fn vertices_enumeration() {
        let vs: Vec<Bits> = c("1-0").vertices().collect();
        assert_eq!(vs.len(), 2);
        for v in &vs {
            assert!(c("1-0").contains_vertex(v));
        }
        let all: Vec<Bits> = c("--").vertices().collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn vertex_count() {
        assert_eq!(c("---").vertex_count(), 8);
        assert_eq!(c("101").vertex_count(), 1);
    }

    #[test]
    fn from_vertex_roundtrip() {
        let v = Bits::from_ones(4, [1, 3]);
        let cube = Cube::from_vertex(&v);
        assert!(cube.is_vertex());
        assert_eq!(cube.to_vertex().unwrap(), v);
    }

    #[test]
    fn from_bits_clears_val_outside_care() {
        let care = Bits::from_ones(3, [0]);
        let val = Bits::from_ones(3, [0, 2]);
        let cube = Cube::from_bits(care, val);
        assert_eq!(cube, c("1--"));
    }
}
