//! Fixed-width bit vectors.
//!
//! [`Bits`] is the workhorse set representation of the whole workspace:
//! markings of safe Petri nets, binary signal vectors, characteristic sets of
//! places. It is a plain `Vec<u64>` with an explicit width and the invariant
//! that all bits above `len` are zero, which makes `Eq`/`Hash`/`Ord` cheap
//! and well defined.

use std::fmt;

/// A fixed-width vector of bits.
///
/// All mutating operations preserve the invariant that bits at positions
/// `>= len()` are zero.
///
/// # Examples
///
/// ```
/// use si_boolean::Bits;
///
/// let mut b = Bits::zeros(70);
/// b.set(3, true);
/// b.set(69, true);
/// assert_eq!(b.count_ones(), 2);
/// assert!(b.get(69));
/// assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 69]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bits {
    words: Vec<u64>,
    len: usize,
}

impl Bits {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bits {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Bits {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        b.mask_top();
        b
    }

    /// Creates a vector of `len` bits from raw words (low bit of word 0 is
    /// bit 0). Bits above `len` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let mut b = Bits { words, len };
        b.mask_top();
        b
    }

    /// Creates a vector with exactly the given positions set.
    ///
    /// # Panics
    ///
    /// Panics if any position is `>= len`.
    pub fn from_ones<I: IntoIterator<Item = usize>>(len: usize, ones: I) -> Self {
        let mut b = Bits::zeros(len);
        for i in ones {
            b.set(i, true);
        }
        b
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, s) = (i / 64, i % 64);
        if v {
            self.words[w] |= 1 << s;
        } else {
            self.words[w] &= !(1 << s);
        }
    }

    /// Flips the bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn toggle(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if every bit set in `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn is_subset(&self, other: &Bits) -> bool {
        self.check_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if `self` and `other` share at least one set bit.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn intersects(&self, other: &Bits) -> bool {
        self.check_width(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union_with(&mut self, other: &Bits) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn intersect_with(&mut self, other: &Bits) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self & !other`).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn subtract(&mut self, other: &Bits) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place symmetric difference.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn xor_with(&mut self, other: &Bits) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place complement within the width.
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_top();
    }

    /// Returns the union of two vectors.
    pub fn union(&self, other: &Bits) -> Bits {
        let mut r = self.clone();
        r.union_with(other);
        r
    }

    /// Returns the intersection of two vectors.
    pub fn intersection(&self, other: &Bits) -> Bits {
        let mut r = self.clone();
        r.intersect_with(other);
        r
    }

    /// Returns the difference of two vectors.
    pub fn difference(&self, other: &Bits) -> Bits {
        let mut r = self.clone();
        r.subtract(other);
        r
    }

    /// Number of positions where the two vectors differ.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn hamming_distance(&self, other: &Bits) -> usize {
        self.check_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Overwrites `self` with the contents of `other`, reusing the existing
    /// word buffer when the widths match (no allocation on the hot path).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn copy_from(&mut self, other: &Bits) {
        self.check_width(other);
        self.words.copy_from_slice(&other.words);
    }

    /// Clears every bit, keeping the width.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Fast FNV/FxHash-style hash of the raw words, via
    /// [`hash_word_slice`]. Callers hashing vectors of mixed widths must
    /// mix in [`Bits::len`] themselves; same-width interners (the common
    /// case) don't need to.
    ///
    /// `Bits` also implements [`Hash`], but the derived implementation goes
    /// through the std `Hasher` machinery (SipHash by default); interners on
    /// hot paths use this direct word fold instead.
    pub fn hash_words(&self) -> u64 {
        hash_word_slice(&self.words)
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            word: 0,
            cur: if self.words.is_empty() {
                0
            } else {
                self.words[0]
            },
        }
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.iter_ones().next()
    }

    /// Access to the raw words (low bit of word 0 is bit 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    fn mask_top(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    fn check_width(&self, other: &Bits) {
        assert_eq!(
            self.len, other.len,
            "width mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

/// Fast FxHash-style hash of a raw `u64` slice — the single definition
/// shared by [`Bits::hash_words`] and the marking interner of the
/// reachability engine.
pub fn hash_word_slice(words: &[u64]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h: u64 = 0;
    for &w in words {
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    // Murmur3-style finalizer: open-addressing tables mask the *low* bits,
    // and the low bits of a product depend only on the low bits of its
    // operands — without this fold they cluster catastrophically.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// Iterator over set-bit indices of a [`Bits`]; created by [`Bits::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bits: &'a Bits,
    word: usize,
    cur: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let tz = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= self.bits.words.len() {
                return None;
            }
            self.cur = self.bits.words[self.word];
        }
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let vals: Vec<bool> = iter.into_iter().collect();
        let mut b = Bits::zeros(vals.len());
        for (i, v) in vals.into_iter().enumerate() {
            b.set(i, v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bits::zeros(130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.is_zero());
        let o = Bits::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(o.get(0));
    }

    #[test]
    fn ones_masks_top_bits() {
        let o = Bits::ones(65);
        assert_eq!(o.as_words()[1], 1);
        let mut z = Bits::zeros(65);
        z.invert();
        assert_eq!(z, o);
    }

    #[test]
    fn set_get_toggle() {
        let mut b = Bits::zeros(10);
        b.set(7, true);
        assert!(b.get(7));
        b.toggle(7);
        assert!(!b.get(7));
        b.toggle(0);
        assert!(b.get(0));
    }

    #[test]
    fn set_ops() {
        let a = Bits::from_ones(8, [0, 2, 4]);
        let b = Bits::from_ones(8, [2, 3]);
        assert_eq!(a.union(&b), Bits::from_ones(8, [0, 2, 3, 4]));
        assert_eq!(a.intersection(&b), Bits::from_ones(8, [2]));
        assert_eq!(a.difference(&b), Bits::from_ones(8, [0, 4]));
        assert!(a.intersects(&b));
        assert!(Bits::from_ones(8, [2]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn hamming() {
        let a = Bits::from_ones(8, [0, 1]);
        let b = Bits::from_ones(8, [1, 2]);
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    fn iter_ones_crosses_words() {
        let b = Bits::from_ones(200, [0, 63, 64, 128, 199]);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 128, 199]);
        assert_eq!(b.first_one(), Some(0));
        assert_eq!(Bits::zeros(5).first_one(), None);
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let src = Bits::from_ones(130, [0, 64, 129]);
        let mut dst = Bits::ones(130);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn copy_from_width_mismatch_panics() {
        let mut a = Bits::zeros(4);
        a.copy_from(&Bits::zeros(5));
    }

    #[test]
    fn hash_words_discriminates() {
        let a = Bits::from_ones(130, [0, 64]);
        let b = Bits::from_ones(130, [0, 65]);
        assert_ne!(a.hash_words(), b.hash_words());
        assert_eq!(a.hash_words(), a.clone().hash_words());
    }

    #[test]
    fn from_iterator() {
        let b: Bits = [true, false, true].into_iter().collect();
        assert_eq!(b.len(), 3);
        assert!(b.get(0) && !b.get(1) && b.get(2));
    }

    #[test]
    fn display() {
        let b = Bits::from_ones(4, [1, 3]);
        assert_eq!(b.to_string(), "0101");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = Bits::zeros(4);
        let b = Bits::zeros(5);
        let _ = a.is_subset(&b);
    }
}
