//! Covers: sums of cubes (two-level SOP forms).
//!
//! A [`Cover`] is a set of [`Cube`]s over a common variable set. Covers are
//! the representation of signal-region approximations and of set/reset
//! excitation functions throughout the synthesis flow.

use crate::bits::Bits;
use crate::cube::Cube;
use std::fmt;

/// A sum of cubes over a fixed variable set.
///
/// # Examples
///
/// ```
/// use si_boolean::{Cover, Cube};
///
/// let f = Cover::from_cubes(3, vec!["10-".parse()?, "-01".parse()?]);
/// assert!(f.covers_cube(&"101".parse()?));
/// assert!(!f.is_tautology());
/// # Ok::<(), si_boolean::ParseCubeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cover {
    width: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0).
    pub fn empty(width: usize) -> Self {
        Cover {
            width,
            cubes: Vec::new(),
        }
    }

    /// The universal cover (constant 1): one full cube.
    pub fn universe(width: usize) -> Self {
        Cover {
            width,
            cubes: vec![Cube::full(width)],
        }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube has a different width.
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(width: usize, cubes: I) -> Self {
        let cubes: Vec<Cube> = cubes.into_iter().collect();
        for c in &cubes {
            assert_eq!(c.width(), width, "cube width mismatch");
        }
        Cover { width, cubes }
    }

    /// Builds a single-cube cover.
    pub fn from_cube(cube: Cube) -> Self {
        Cover {
            width: cube.width(),
            cubes: vec![cube],
        }
    }

    /// Number of variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals over all cubes (the SIS area measure).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Returns `true` if the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.width(), self.width, "cube width mismatch");
        self.cubes.push(cube);
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Tests whether a complete assignment is covered.
    pub fn contains_vertex(&self, v: &Bits) -> bool {
        self.cubes.iter().any(|c| c.contains_vertex(v))
    }

    /// Returns `true` iff some cube of the cover intersects `cube`.
    pub fn intersects_cube(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.intersects(cube))
    }

    /// Returns `true` iff the two covers share at least one vertex.
    pub fn intersects(&self, other: &Cover) -> bool {
        self.cubes.iter().any(|c| other.intersects_cube(c))
    }

    /// The intersection with a cube, as a cover.
    pub fn and_cube(&self, cube: &Cube) -> Cover {
        Cover {
            width: self.width,
            cubes: self.cubes.iter().filter_map(|c| c.and(cube)).collect(),
        }
    }

    /// Product of two covers (may grow quadratically).
    pub fn and(&self, other: &Cover) -> Cover {
        let mut out = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.and(b) {
                    out.push(c);
                }
            }
        }
        let mut r = Cover {
            width: self.width,
            cubes: out,
        };
        r.remove_single_cube_contained();
        r
    }

    /// Union (concatenation) of two covers.
    pub fn or(&self, other: &Cover) -> Cover {
        let mut cubes = self.cubes.clone();
        cubes.extend_from_slice(&other.cubes);
        let mut r = Cover {
            width: self.width,
            cubes,
        };
        r.remove_single_cube_contained();
        r
    }

    /// Removes cubes contained in a single other cube (cheap cleanup).
    pub fn remove_single_cube_contained(&mut self) {
        let mut keep: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        // Larger cubes first so they absorb smaller ones.
        let mut sorted = self.cubes.clone();
        sorted.sort_by_key(Cube::literal_count);
        'next: for c in sorted {
            for k in &keep {
                if k.contains_cube(&c) {
                    continue 'next;
                }
            }
            keep.push(c);
        }
        self.cubes = keep;
    }

    /// Tautology check: does the cover contain every vertex?
    ///
    /// Recursive Shannon expansion with standard shortcuts.
    pub fn is_tautology(&self) -> bool {
        tautology_rec(&self.cubes, self.width)
    }

    /// Functional containment of a cube: every vertex of `cube` is covered.
    ///
    /// Uses the standard reduction: `c ⊆ F` iff the cofactor `F|c` is a
    /// tautology.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        let cof: Vec<Cube> = self.cubes.iter().filter_map(|c| c.cofactor(cube)).collect();
        tautology_rec(&cof, self.width)
    }

    /// Functional containment of a cover.
    pub fn covers(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// Semantic equivalence of two covers.
    pub fn equivalent(&self, other: &Cover) -> bool {
        self.covers(other) && other.covers(self)
    }

    /// Complement of the cover over the full Boolean space.
    pub fn complement(&self) -> Cover {
        let mut r = Cover {
            width: self.width,
            cubes: complement_rec(&self.cubes, self.width, &Cube::full(self.width)),
        };
        r.remove_single_cube_contained();
        r
    }

    /// `self \ other` (sharp) as a cover of pairwise-disjoint-from-`other` cubes.
    pub fn sharp(&self, other: &Cover) -> Cover {
        let mut pieces: Vec<Cube> = self.cubes.clone();
        for rem in &other.cubes {
            pieces = pieces.into_iter().flat_map(|c| c.sharp(rem)).collect();
        }
        let mut r = Cover {
            width: self.width,
            cubes: pieces,
        };
        r.remove_single_cube_contained();
        r
    }

    /// Number of vertices covered, as `u128` (exact, via disjoint sharp).
    ///
    /// Worst-case exponential in the number of cubes; intended for oracles
    /// and statistics on the moderate widths used in synthesis.
    pub fn vertex_count(&self) -> u128 {
        let mut disjoint: Vec<Cube> = Vec::new();
        for c in &self.cubes {
            let mut pieces = vec![c.clone()];
            for d in &disjoint {
                pieces = pieces.into_iter().flat_map(|p| p.sharp(d)).collect();
            }
            disjoint.extend(pieces);
        }
        disjoint.iter().map(Cube::vertex_count).sum()
    }

    /// Enumerates all covered vertices (small widths only).
    pub fn vertices(&self) -> Vec<Bits> {
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.cubes {
            for v in c.vertices() {
                seen.insert(v);
            }
        }
        seen.into_iter().collect()
    }

    /// The same cover over a wider variable set (appended don't-cares);
    /// see [`Cube::widened`].
    ///
    /// # Panics
    ///
    /// Panics if `width < self.width()`.
    pub fn widened(&self, width: usize) -> Cover {
        assert!(width >= self.width, "widened cannot shrink a cover");
        Cover {
            width,
            cubes: self.cubes.iter().map(|c| c.widened(width)).collect(),
        }
    }

    /// The supercube of all cubes (smallest single cube containing the cover).
    ///
    /// Returns the full cube for an empty cover? No — returns `None` so the
    /// caller can distinguish “empty function”.
    pub fn supercube(&self) -> Option<Cube> {
        let mut it = self.cubes.iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, c| acc.supercube(c)))
    }
}

/// Recursive tautology check on a cube list.
fn tautology_rec(cubes: &[Cube], width: usize) -> bool {
    // Shortcut: any full cube (within the remaining space) is a tautology.
    if cubes.iter().any(Cube::is_full) {
        return true;
    }
    if cubes.is_empty() {
        return false;
    }
    // Quick necessary condition: 2^free vertices must be coverable; cheap
    // version — if all cubes share a literal, not a tautology.
    let mut common_care = cubes[0].care().clone();
    for c in &cubes[1..] {
        common_care.intersect_with(c.care());
    }
    if let Some(var) = common_care.first_one() {
        // All cubes have a literal on `var`; tautology only if both halves
        // are covered — but every cube lies in one half, so check each half.
        let pos: Vec<Cube> = cubes
            .iter()
            .filter(|c| c.val().get(var))
            .filter_map(|c| c.cofactor(&Cube::literal(width, var, true)))
            .collect();
        let neg: Vec<Cube> = cubes
            .iter()
            .filter(|c| !c.val().get(var))
            .filter_map(|c| c.cofactor(&Cube::literal(width, var, false)))
            .collect();
        return tautology_rec(&pos, width) && tautology_rec(&neg, width);
    }
    // Select the most frequently used variable to branch on.
    let var = select_branch_var(cubes, width);
    let Some(var) = var else {
        // No cube has any literal: some cube exists and is full — handled
        // above, so this is unreachable; be safe anyway.
        return !cubes.is_empty();
    };
    let lit_t = Cube::literal(width, var, true);
    let lit_f = Cube::literal(width, var, false);
    let pos: Vec<Cube> = cubes.iter().filter_map(|c| c.cofactor(&lit_t)).collect();
    if !tautology_rec(&pos, width) {
        return false;
    }
    let neg: Vec<Cube> = cubes.iter().filter_map(|c| c.cofactor(&lit_f)).collect();
    tautology_rec(&neg, width)
}

/// Recursive complement; returns cubes covering `space \ cubes` where the
/// recursion is restricted to the subspace cube `space`.
fn complement_rec(cubes: &[Cube], width: usize, space: &Cube) -> Vec<Cube> {
    if cubes.iter().any(Cube::is_full) {
        return Vec::new();
    }
    if cubes.is_empty() {
        return vec![space.clone()];
    }
    if cubes.len() == 1 {
        // Complement of one cube within `space`. The recursion keeps the
        // invariant that `cubes` never conflicts with `space` (cofactoring
        // removed those), so sharp directly yields `space \ cube`.
        return space.sharp(&cubes[0]);
    }
    let var = match select_branch_var(cubes, width) {
        Some(v) => v,
        None => return Vec::new(),
    };
    let lit_t = Cube::literal(width, var, true);
    let lit_f = Cube::literal(width, var, false);
    let pos: Vec<Cube> = cubes.iter().filter_map(|c| c.cofactor(&lit_t)).collect();
    let neg: Vec<Cube> = cubes.iter().filter_map(|c| c.cofactor(&lit_f)).collect();
    let mut space_t = space.clone();
    space_t.set(var, Some(true));
    let mut space_f = space.clone();
    space_f.set(var, Some(false));
    let mut out = complement_rec(&pos, width, &space_t);
    out.extend(complement_rec(&neg, width, &space_f));
    out
}

/// Picks the variable appearing in the most cubes (binate-ness heuristic).
fn select_branch_var(cubes: &[Cube], width: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (count, var)
    for var in 0..width {
        let count = cubes.iter().filter(|c| c.care().get(var)).count();
        if count > 0 && best.is_none_or(|(bc, _)| count > bc) {
            best = Some((count, var));
        }
    }
    best.map(|(_, v)| v)
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover{{")?;
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty (the width cannot be inferred) or the
    /// cube widths are inconsistent. Use [`Cover::from_cubes`] when the
    /// iterator may be empty.
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let width = cubes
            .first()
            .expect("cannot infer width of empty cover; use Cover::from_cubes")
            .width();
        Cover::from_cubes(width, cubes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(w: usize, cs: &[&str]) -> Cover {
        Cover::from_cubes(w, cs.iter().map(|s| s.parse().unwrap()))
    }

    #[test]
    fn tautology_basic() {
        assert!(Cover::universe(3).is_tautology());
        assert!(!Cover::empty(3).is_tautology());
        assert!(cover(1, &["0", "1"]).is_tautology());
        assert!(cover(2, &["1-", "01", "00"]).is_tautology());
        assert!(!cover(2, &["1-", "01"]).is_tautology());
        // xor-ish split
        assert!(cover(3, &["1--", "-1-", "00-"]).is_tautology());
    }

    #[test]
    fn covers_cube_functional() {
        let f = cover(3, &["11-", "10-"]);
        // f == (1--) semantically
        assert!(f.covers_cube(&"1--".parse().unwrap()));
        assert!(!f.covers_cube(&"---".parse().unwrap()));
        assert!(f.covers_cube(&"101".parse().unwrap()));
    }

    #[test]
    fn equivalence() {
        let a = cover(3, &["11-", "10-"]);
        let b = cover(3, &["1--"]);
        assert!(a.equivalent(&b));
        assert!(!a.equivalent(&cover(3, &["-1-"])));
    }

    #[test]
    fn complement_roundtrip() {
        let f = cover(3, &["1-0", "01-"]);
        let g = f.complement();
        assert!(!f.intersects(&g));
        assert!(f.or(&g).is_tautology());
        assert_eq!(f.vertex_count() + g.vertex_count(), 8);
        // complement of universe is empty, and vice versa
        assert!(Cover::universe(4).complement().is_empty());
        assert!(Cover::empty(4).complement().is_tautology());
    }

    #[test]
    fn sharp_cover() {
        let f = Cover::universe(3);
        let g = cover(3, &["1--"]);
        let d = f.sharp(&g);
        assert!(d.equivalent(&cover(3, &["0--"])));
        assert_eq!(d.vertex_count(), 4);
    }

    #[test]
    fn and_or() {
        let a = cover(2, &["1-"]);
        let b = cover(2, &["-1"]);
        assert!(a.and(&b).equivalent(&cover(2, &["11"])));
        assert!(a.or(&b).covers_cube(&"11".parse().unwrap()));
        assert_eq!(a.and(&cover(2, &["0-"])).cube_count(), 0);
    }

    #[test]
    fn single_cube_containment_cleanup() {
        let mut f = cover(3, &["1--", "10-", "101"]);
        f.remove_single_cube_contained();
        assert_eq!(f.cube_count(), 1);
        assert_eq!(f.cubes()[0], "1--".parse().unwrap());
    }

    #[test]
    fn vertex_count_overlapping() {
        let f = cover(3, &["1--", "--1"]);
        // |1--| = 4, |--1| = 4, overlap |1-1| = 2 => 6
        assert_eq!(f.vertex_count(), 6);
        assert_eq!(f.vertices().len(), 6);
    }

    #[test]
    fn supercube() {
        let f = cover(3, &["101", "100"]);
        assert_eq!(f.supercube().unwrap(), "10-".parse().unwrap());
        assert!(Cover::empty(3).supercube().is_none());
    }

    #[test]
    fn contains_vertex() {
        let f = cover(3, &["1-0"]);
        assert!(f.contains_vertex(&Bits::from_ones(3, [0])));
        assert!(!f.contains_vertex(&Bits::from_ones(3, [2])));
    }

    #[test]
    fn display() {
        assert_eq!(Cover::empty(2).to_string(), "0");
        assert_eq!(cover(2, &["1-", "01"]).to_string(), "1- + 01");
    }
}
