//! State-based verification of synthesized circuits (the role of reference \[32\] in
//! the paper: every synthesis result is independently checked to be speed
//! independent).
//!
//! Two layers:
//!
//! * **functional correctness** — at every reachable marking the
//!   implementation's next value equals the specified next-state function
//!   (eq. 1 for complex gates; the C-latch/gC semantics make this the
//!   correct-cover condition (2) including backward-expansion
//!   observability);
//! * **monotonic covers** (Property 1 + Appendix E): along reachability
//!   edges a set network never re-rises while its signal is high and never
//!   falls while the signal is low (symmetrically for reset) — the
//!   glitch-freedom condition behind speed independence.
//!
//! The search for violating states is a [`si_petri::space::StateSpace`]
//! over the prebuilt reachability graph — states are graph ids, successors
//! its edges, the [`inspect`](si_petri::space::StateSpace::inspect) hook
//! runs both checks — driven by the workspace's generic explorers. That
//! buys sharded parallel verification (`shards > 1` splits the walk across
//! worker threads) and a firing-sequence **counterexample trace** to the
//! first violation ([`VerificationReport::trace`]) from the explorer's
//! witness machinery.

use si_boolean::Cover;
use si_core::{Circuit, ImplKind};
use si_petri::space::{
    explore_with, ExploreError, ExploreOptions, SpaceVisitor, StateSpace, Verdict,
};
use si_petri::{Interrupt, ReachabilityGraph, StateId, TransId};
use si_stg::{SignalId, StateEncoding, Stg};

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The implementation computes a wrong next value at a reachable state.
    Functional {
        /// The signal.
        signal: SignalId,
        /// The state where the mismatch occurs.
        state: StateId,
        /// What the implementation produces.
        produced: bool,
        /// What the specification requires.
        required: bool,
    },
    /// A set network re-rises / falls non-monotonically (Property 1).
    NonMonotonicSet {
        /// The signal.
        signal: SignalId,
        /// Source state of the offending edge.
        from: StateId,
        /// Target state of the offending edge.
        to: StateId,
    },
    /// A reset network re-rises / falls non-monotonically.
    NonMonotonicReset {
        /// The signal.
        signal: SignalId,
        /// Source state of the offending edge.
        from: StateId,
        /// Target state of the offending edge.
        to: StateId,
    },
}

impl Violation {
    /// The state a counterexample trace should reach: the violating state
    /// itself for functional violations, the source of the offending edge
    /// for monotonicity violations.
    pub fn at_state(&self) -> StateId {
        match *self {
            Violation::Functional { state, .. } => state,
            Violation::NonMonotonicSet { from, .. } | Violation::NonMonotonicReset { from, .. } => {
                from
            }
        }
    }

    /// Total order making reports deterministic at any shard count:
    /// by state, then violation kind, then signal, then edge target.
    fn sort_key(&self) -> (u32, u8, u16, u32) {
        match *self {
            Violation::Functional { signal, state, .. } => (state.0, 0, signal.0, 0),
            Violation::NonMonotonicSet { signal, from, to } => (from.0, 1, signal.0, to.0),
            Violation::NonMonotonicReset { signal, from, to } => (from.0, 2, signal.0, to.0),
        }
    }
}

/// Result of [`verify_circuit`].
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// All found violations (empty = verified), ordered by state / kind /
    /// signal — deterministic at any shard count.
    pub violations: Vec<Violation>,
    /// Number of reachable states examined.
    pub states_checked: usize,
    /// Counterexample: a firing sequence from the initial marking to
    /// `violations[0].at_state()` (`None` when the circuit verifies).
    pub trace: Option<Vec<TransId>>,
    /// `Some` when the violation search was stopped early by the budget
    /// (wall-clock deadline or cancellation): the verdict is **partial** —
    /// every reported violation is real, but a clean report only means "no
    /// violation in the `states_checked` states explored".
    pub interrupted: Option<Interrupt>,
}

impl VerificationReport {
    /// `true` when no violations were found. For an interrupted search
    /// this only covers the explored prefix — gate on
    /// [`VerificationReport::is_conclusive`] for a definitive verdict.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when the search ran to completion (the verdict covers the
    /// whole state space, not just an explored prefix).
    pub fn is_conclusive(&self) -> bool {
        self.interrupted.is_none()
    }
}

/// The specified next value of `signal` at state `s`: the target of an
/// enabled transition of the signal, else the current value.
fn spec_next(
    stg: &Stg,
    rg: &ReachabilityGraph,
    enc: &StateEncoding,
    s: StateId,
    signal: SignalId,
) -> bool {
    for &(t, _) in rg.successors(s) {
        if stg.signal_of(t) == signal {
            return stg.direction_of(t).target_value();
        }
    }
    enc.value(s, signal)
}

/// Verifies a circuit against its STG on the explicit reachability graph.
///
/// # Panics
///
/// Panics if the STG is not safe/consistent (callers verify synthesizable
/// inputs, which always are).
pub fn verify_circuit(stg: &Stg, circuit: &Circuit) -> VerificationReport {
    match verify_circuit_with(stg, circuit, si_petri::ReachOptions::with_cap(4_000_000)) {
        Ok(report) => report,
        Err(e) => panic!("state-based verification impossible: {e}"),
    }
}

/// Verifies with explicit [`si_petri::ReachOptions`]: `reach.cap` bounds
/// the specification's state space (the call returns
/// [`si_petri::ReachError::StateCapExceeded`] instead of hanging past it)
/// and `reach.shards > 1` runs both the reachability build **and** the
/// violation search on the sharded multi-threaded explorer. The report is
/// identical at any shard count (violations are canonically ordered; only
/// the counterexample trace may differ between equally valid witnesses).
///
/// This is a one-shot wrapper over [`si_core::Engine`]; pipelines that
/// also synthesize or check conformance should hold an `Engine` and call
/// [`crate::EngineVerify::verify`] so the graph is built once.
///
/// # Errors
///
/// Any [`si_petri::ReachError`] from building the reachability graph.
pub fn verify_circuit_with(
    stg: &Stg,
    circuit: &Circuit,
    reach: si_petri::ReachOptions,
) -> Result<VerificationReport, si_petri::ReachError> {
    use crate::EngineVerify;
    si_core::Engine::new(stg).reach(reach).verify(circuit)
}

/// Verification over a **prebuilt** reachability graph and encoding — the
/// form the [`si_core::Engine`] artifact cache calls (via
/// [`crate::EngineVerify`]) so a synth-then-verify pipeline explores the
/// state space once. Sequential; see [`verify_circuit_on_with`] for the
/// sharded walk.
pub fn verify_circuit_on(
    stg: &Stg,
    circuit: &Circuit,
    rg: &ReachabilityGraph,
    enc: &StateEncoding,
) -> VerificationReport {
    verify_circuit_on_with(stg, circuit, rg, enc, 1)
}

/// Like [`verify_circuit_on`], walking the graph with `shards` parallel
/// explorer workers (`<= 1` = sequential). The violation list is
/// identical at any shard count; the counterexample trace is always a
/// valid firing sequence to `violations[0].at_state()` but may differ
/// between runs (any witness is a witness).
pub fn verify_circuit_on_with(
    stg: &Stg,
    circuit: &Circuit,
    rg: &ReachabilityGraph,
    enc: &StateEncoding,
    shards: usize,
) -> VerificationReport {
    verify_circuit_on_opts(
        stg,
        circuit,
        rg,
        enc,
        &si_petri::ReachOptions::with_cap(usize::MAX).shards(shards),
    )
    .expect("an ungoverned verify walk cannot fail")
}

/// The full-control form of [`verify_circuit_on`]: the violation search
/// over the prebuilt graph runs under `reach`'s shard count **and** soft
/// budget (deadline, cancellation) — exhausting a soft limit returns a
/// partial report tagged [`VerificationReport::interrupted`] instead of
/// aborting. The budget's state *cap* is ignored here: the walk is
/// bounded by the graph, whose construction the cap already governed.
///
/// # Errors
///
/// [`si_petri::ReachError::WorkerPanicked`] when a sharded explorer
/// worker panicked (only observable with fault injection or a broken
/// space — panics are isolated per worker and surface structurally).
pub fn verify_circuit_on_opts(
    stg: &Stg,
    circuit: &Circuit,
    rg: &ReachabilityGraph,
    enc: &StateEncoding,
    reach: &si_petri::ReachOptions,
) -> Result<VerificationReport, si_petri::ReachError> {
    let _span = si_obs::span("verify.check");
    let space = VerifySpace::new(stg, circuit, rg, enc);
    let mut opts = ExploreOptions::from(reach).witness();
    opts.budget.cap = usize::MAX;
    let mut expl = match explore_with(&space, opts) {
        Ok(expl) => expl,
        Err(ExploreError::WorkerPanicked { shard, message }) => {
            return Err(si_petri::ReachError::WorkerPanicked { shard, message })
        }
        Err(ExploreError::Fatal(_)) => unreachable!("the verify space has no fatal violations"),
    };
    let mut tagged = std::mem::take(&mut expl.violations);
    tagged.sort_by_key(|(_, v)| v.sort_key());
    let trace = tagged
        .first()
        .map(|&(gid, _)| expl.witness(gid).into_iter().map(TransId).collect());
    Ok(VerificationReport {
        violations: tagged.into_iter().map(|(_, v)| v).collect(),
        states_checked: expl.states,
        trace,
        interrupted: expl.interrupt(),
    })
}

/// The speed-independence verification space: packed states are
/// reachability-graph ids (one word), successors its edges, and
/// [`StateSpace::inspect`] runs the functional and monotonicity checks of
/// the module docs at each state.
struct VerifySpace<'a> {
    stg: &'a Stg,
    circuit: &'a Circuit,
    rg: &'a ReachabilityGraph,
    enc: &'a StateEncoding,
    /// Per-implementation excitation networks; `None` for combinational
    /// implementations (eq. (1) suffices \[5\]).
    covers: Vec<Option<(Cover, Cover)>>,
}

impl<'a> VerifySpace<'a> {
    fn new(
        stg: &'a Stg,
        circuit: &'a Circuit,
        rg: &'a ReachabilityGraph,
        enc: &'a StateEncoding,
    ) -> Self {
        let covers = circuit
            .implementations
            .iter()
            .map(|imp| match &imp.kind {
                ImplKind::CLatch { .. } | ImplKind::GcLatch { .. } => {
                    Some(imp.excitation_covers().expect("latch kinds have covers"))
                }
                ImplKind::GatedLatch { data, control } => {
                    Some((control.and(data), control.and(&data.complement())))
                }
                ImplKind::Combinational { .. } => None,
            })
            .collect();
        VerifySpace {
            stg,
            circuit,
            rg,
            enc,
            covers,
        }
    }
}

impl StateSpace for VerifySpace<'_> {
    type Violation = Violation;

    fn words(&self) -> usize {
        1
    }

    fn initial(&self) -> Vec<u64> {
        vec![0] // the reachability graph numbers its initial marking 0
    }

    fn inspect<Vis: SpaceVisitor<Violation>>(&self, state: &[u64], sink: &mut Vis) -> Verdict {
        let s = StateId(state[0] as u32);
        let mut verdict = Verdict::Continue;
        for (imp, covers) in self.circuit.implementations.iter().zip(&self.covers) {
            let signal = imp.signal;
            // Functional check at this state.
            let produced = imp.next_value(self.enc.code(s), self.enc.value(s, signal));
            let required = spec_next(self.stg, self.rg, self.enc, s, signal);
            if produced != required {
                sink.violation(Violation::Functional {
                    signal,
                    state: s,
                    produced,
                    required,
                });
                verdict = Verdict::Violation;
            }

            // Monotonicity of the excitation networks along outgoing edges.
            let Some((set, reset)) = covers else { continue };
            let on = |cover: &Cover, s: StateId| cover.contains_vertex(self.enc.code(s));
            let vs = self.enc.value(s, signal);
            for &(_, d) in self.rg.successors(s) {
                let vd = self.enc.value(d, signal);
                // Set network: may not re-rise while the signal is high, may
                // not fall while the signal is low (pre-excitation).
                if vs && vd && !on(set, s) && on(set, d) || !vs && !vd && on(set, s) && !on(set, d)
                {
                    sink.violation(Violation::NonMonotonicSet {
                        signal,
                        from: s,
                        to: d,
                    });
                    verdict = Verdict::Violation;
                }
                // Reset network: symmetric.
                if !vs && !vd && !on(reset, s) && on(reset, d)
                    || vs && vd && on(reset, s) && !on(reset, d)
                {
                    sink.violation(Violation::NonMonotonicReset {
                        signal,
                        from: s,
                        to: d,
                    });
                    verdict = Verdict::Violation;
                }
            }
        }
        verdict
    }

    fn for_each_successor<Vis: SpaceVisitor<Violation>>(
        &self,
        state: &[u64],
        scratch: &mut [u64],
        visit: &mut Vis,
    ) -> Result<(), Violation> {
        for &(t, d) in self.rg.successors(StateId(state[0] as u32)) {
            scratch[0] = d.0 as u64;
            if !visit.successor(t.0, scratch) {
                return Ok(());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_core::{synthesize, Architecture, MinimizeStages, SynthesisOptions};
    use si_stg::benchmarks;

    #[test]
    fn synthesized_toggle_verifies() {
        let stg = si_stg::parse_g(
            "\
.model toggle
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
",
        )
        .unwrap();
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let report = verify_circuit(&stg, &syn.circuit);
        assert!(report.is_ok(), "violations: {:?}", report.violations);
        assert!(report.trace.is_none());
    }

    #[test]
    fn broken_circuit_caught() {
        let stg = si_stg::generators::clatch(2);
        let mut syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        // Sabotage: invert the implementation.
        let z = syn.results[0].signal;
        syn.circuit.implementations[0] = si_core::SignalImplementation {
            signal: z,
            kind: ImplKind::Combinational {
                cover: si_boolean::Cover::empty(stg.signal_count()),
                inverted: false,
            },
        };
        let report = verify_circuit(&stg, &syn.circuit);
        assert!(!report.is_ok());
        assert!(matches!(report.violations[0], Violation::Functional { .. }));
    }

    #[test]
    fn non_monotonic_cover_caught() {
        // Running example, signal d with a hand-broken set cover that skips
        // the fork code 1111 but grabs 1001 deep in the quiescent region.
        let stg = benchmarks::running_example();
        let syn = synthesize(
            &stg,
            &SynthesisOptions {
                architecture: Architecture::ExcitationFunction,
                stages: MinimizeStages::none(),
                ..Default::default()
            },
        )
        .unwrap();
        let d = stg.signal_by_name("d").unwrap();
        let idx = syn
            .circuit
            .implementations
            .iter()
            .position(|i| i.signal == d)
            .unwrap();
        let mut broken = syn.circuit.clone();
        if let ImplKind::CLatch { set, .. } = &mut broken.implementations[idx].kind {
            set.push(Cover::from_cube("1001".parse().unwrap()));
        }
        let report = verify_circuit(&stg, &broken);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NonMonotonicSet { .. })));
    }

    #[test]
    fn counterexample_trace_replays_to_the_violating_state() {
        let stg = si_stg::generators::clatch(3);
        let mut syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let z = syn.results[0].signal;
        syn.circuit.implementations[0] = si_core::SignalImplementation {
            signal: z,
            kind: ImplKind::Combinational {
                cover: si_boolean::Cover::empty(stg.signal_count()),
                inverted: false,
            },
        };
        let rg = ReachabilityGraph::build(stg.net(), 100_000).unwrap();
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        for shards in [1, 4] {
            let report = verify_circuit_on_with(&stg, &syn.circuit, &rg, &enc, shards);
            assert!(!report.is_ok());
            let trace = report.trace.as_ref().expect("violations come with a trace");
            // Replay the firing sequence on the net: it must be enabled at
            // every step and end at the state of the first violation.
            let net = stg.net();
            let mut m = net.initial_marking();
            for &t in trace {
                assert!(
                    net.is_enabled(&m, t),
                    "{shards} shards: dead trace step {t}"
                );
                m = net.fire(&m, t);
            }
            assert_eq!(
                rg.state_of(&m),
                Some(report.violations[0].at_state()),
                "{shards} shards: trace does not reach the violating state"
            );
        }
    }

    #[test]
    fn sharded_verification_matches_sequential() {
        let stg = benchmarks::running_example();
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let rg = ReachabilityGraph::build(stg.net(), 100_000).unwrap();
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        // A clean circuit and a sabotaged one: violation lists must be
        // identical at any shard count.
        let mut broken = syn.circuit.clone();
        broken.implementations[0].kind = ImplKind::Combinational {
            cover: Cover::empty(stg.signal_count()),
            inverted: false,
        };
        for circuit in [&syn.circuit, &broken] {
            let seq = verify_circuit_on_with(&stg, circuit, &rg, &enc, 1);
            for shards in [2, 4, 8] {
                let par = verify_circuit_on_with(&stg, circuit, &rg, &enc, shards);
                assert_eq!(seq.violations, par.violations);
                assert_eq!(seq.states_checked, par.states_checked);
                assert_eq!(seq.is_ok(), par.is_ok());
            }
        }
    }

    #[test]
    fn all_architectures_verify_on_suite() {
        for stg in benchmarks::synthesizable_suite() {
            for arch in [
                Architecture::ComplexGate,
                Architecture::ExcitationFunction,
                Architecture::PerRegion,
            ] {
                for stage in [MinimizeStages::none(), MinimizeStages::full()] {
                    let syn = synthesize(
                        &stg,
                        &SynthesisOptions {
                            architecture: arch,
                            stages: stage,
                            ..Default::default()
                        },
                    )
                    .unwrap_or_else(|e| panic!("{} {arch:?}: {e}", stg.name()));
                    let report = verify_circuit(&stg, &syn.circuit);
                    assert!(
                        report.is_ok(),
                        "{} under {arch:?} {stage:?}: {:?}",
                        stg.name(),
                        &report.violations[..report.violations.len().min(3)]
                    );
                }
            }
        }
    }
}
