//! State-based verification of synthesized circuits (the role of reference \[32\] in
//! the paper: every synthesis result is independently checked to be speed
//! independent).
//!
//! Two layers:
//!
//! * **functional correctness** — at every reachable marking the
//!   implementation's next value equals the specified next-state function
//!   (eq. 1 for complex gates; the C-latch/gC semantics make this the
//!   correct-cover condition (2) including backward-expansion
//!   observability);
//! * **monotonic covers** (Property 1 + Appendix E): along reachability
//!   edges a set network never re-rises while its signal is high and never
//!   falls while the signal is low (symmetrically for reset) — the
//!   glitch-freedom condition behind speed independence.

use si_boolean::Cover;
use si_core::{Circuit, ImplKind};
use si_petri::{ReachabilityGraph, StateId};
use si_stg::{SignalId, StateEncoding, Stg};

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The implementation computes a wrong next value at a reachable state.
    Functional {
        /// The signal.
        signal: SignalId,
        /// The state where the mismatch occurs.
        state: StateId,
        /// What the implementation produces.
        produced: bool,
        /// What the specification requires.
        required: bool,
    },
    /// A set network re-rises / falls non-monotonically (Property 1).
    NonMonotonicSet {
        /// The signal.
        signal: SignalId,
        /// Source state of the offending edge.
        from: StateId,
        /// Target state of the offending edge.
        to: StateId,
    },
    /// A reset network re-rises / falls non-monotonically.
    NonMonotonicReset {
        /// The signal.
        signal: SignalId,
        /// Source state of the offending edge.
        from: StateId,
        /// Target state of the offending edge.
        to: StateId,
    },
}

/// Result of [`verify_circuit`].
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// All found violations (empty = verified).
    pub violations: Vec<Violation>,
    /// Number of reachable states examined.
    pub states_checked: usize,
}

impl VerificationReport {
    /// `true` when no violations were found.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The specified next value of `signal` at state `s`: the target of an
/// enabled transition of the signal, else the current value.
fn spec_next(
    stg: &Stg,
    rg: &ReachabilityGraph,
    enc: &StateEncoding,
    s: StateId,
    signal: SignalId,
) -> bool {
    for &(t, _) in rg.successors(s) {
        if stg.signal_of(t) == signal {
            return stg.direction_of(t).target_value();
        }
    }
    enc.value(s, signal)
}

/// Verifies a circuit against its STG on the explicit reachability graph.
///
/// # Panics
///
/// Panics if the STG is not safe/consistent (callers verify synthesizable
/// inputs, which always are).
pub fn verify_circuit(stg: &Stg, circuit: &Circuit) -> VerificationReport {
    match verify_circuit_with(stg, circuit, si_petri::ReachOptions::with_cap(4_000_000)) {
        Ok(report) => report,
        Err(e) => panic!("state-based verification impossible: {e}"),
    }
}

/// Superseded spelling of [`verify_circuit_with`] with a bare state cap.
///
/// # Errors
///
/// Any [`si_petri::ReachError`] from building the reachability graph.
#[deprecated(
    since = "0.2.0",
    note = "use verify_circuit_with(stg, circuit, ReachOptions::with_cap(cap)) — one options \
            surface for cap and shards — or Engine::verify for cached-artifact pipelines"
)]
pub fn verify_circuit_capped(
    stg: &Stg,
    circuit: &Circuit,
    cap: usize,
) -> Result<VerificationReport, si_petri::ReachError> {
    verify_circuit_with(stg, circuit, si_petri::ReachOptions::with_cap(cap))
}

/// Verifies with explicit [`si_petri::ReachOptions`]: `reach.cap` bounds
/// the specification's state space (the call returns
/// [`si_petri::ReachError::StateCapExceeded`] instead of hanging past it)
/// and `reach.shards > 1` builds the reachability graph — the dominant
/// cost of state-based verification on the scalable families — with the
/// sharded multi-threaded engine. The report is identical either way (the
/// engines produce the same graph, state numbering included).
///
/// This is a one-shot wrapper over [`si_core::Engine`]; pipelines that
/// also synthesize or check conformance should hold an `Engine` and call
/// [`crate::EngineVerify::verify`] so the graph is built once.
///
/// # Errors
///
/// Any [`si_petri::ReachError`] from building the reachability graph.
pub fn verify_circuit_with(
    stg: &Stg,
    circuit: &Circuit,
    reach: si_petri::ReachOptions,
) -> Result<VerificationReport, si_petri::ReachError> {
    use crate::EngineVerify;
    si_core::Engine::new(stg).reach(reach).verify(circuit)
}

/// Verification over a **prebuilt** reachability graph and encoding — the
/// form the [`si_core::Engine`] artifact cache calls (via
/// [`crate::EngineVerify`]) so a synth-then-verify pipeline explores the
/// state space once.
pub fn verify_circuit_on(
    stg: &Stg,
    circuit: &Circuit,
    rg: &ReachabilityGraph,
    enc: &StateEncoding,
) -> VerificationReport {
    let mut report = VerificationReport {
        violations: Vec::new(),
        states_checked: rg.state_count(),
    };

    for imp in &circuit.implementations {
        let signal = imp.signal;
        // Functional check at every reachable state.
        for s in rg.states() {
            let produced = imp.next_value(enc.code(s), enc.value(s, signal));
            let required = spec_next(stg, rg, enc, s, signal);
            if produced != required {
                report.violations.push(Violation::Functional {
                    signal,
                    state: s,
                    produced,
                    required,
                });
            }
        }

        // Monotonicity of the excitation networks.
        let (set, reset) = match &imp.kind {
            ImplKind::CLatch { .. } | ImplKind::GcLatch { .. } => {
                imp.excitation_covers().expect("latch kinds have covers")
            }
            ImplKind::GatedLatch { data, control } => {
                (control.and(data), control.and(&data.complement()))
            }
            ImplKind::Combinational { .. } => continue, // eq. (1) suffices [5]
        };
        let on = |cover: &Cover, s: StateId| cover.contains_vertex(enc.code(s));
        for s in rg.states() {
            for &(_, d) in rg.successors(s) {
                let (vs, vd) = (enc.value(s, signal), enc.value(d, signal));
                // Set network: may not re-rise while the signal is high, may
                // not fall while the signal is low (pre-excitation).
                if vs && vd && !on(&set, s) && on(&set, d) {
                    report.violations.push(Violation::NonMonotonicSet {
                        signal,
                        from: s,
                        to: d,
                    });
                }
                if !vs && !vd && on(&set, s) && !on(&set, d) {
                    report.violations.push(Violation::NonMonotonicSet {
                        signal,
                        from: s,
                        to: d,
                    });
                }
                // Reset network: symmetric.
                if !vs && !vd && !on(&reset, s) && on(&reset, d) {
                    report.violations.push(Violation::NonMonotonicReset {
                        signal,
                        from: s,
                        to: d,
                    });
                }
                if vs && vd && on(&reset, s) && !on(&reset, d) {
                    report.violations.push(Violation::NonMonotonicReset {
                        signal,
                        from: s,
                        to: d,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_core::{synthesize, Architecture, MinimizeStages, SynthesisOptions};
    use si_stg::benchmarks;

    #[test]
    fn synthesized_toggle_verifies() {
        let stg = si_stg::parse_g(
            "\
.model toggle
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
",
        )
        .unwrap();
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let report = verify_circuit(&stg, &syn.circuit);
        assert!(report.is_ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn broken_circuit_caught() {
        let stg = si_stg::generators::clatch(2);
        let mut syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        // Sabotage: invert the implementation.
        let z = syn.results[0].signal;
        syn.circuit.implementations[0] = si_core::SignalImplementation {
            signal: z,
            kind: ImplKind::Combinational {
                cover: Cover::empty(stg.signal_count()),
                inverted: false,
            },
        };
        let report = verify_circuit(&stg, &syn.circuit);
        assert!(!report.is_ok());
        assert!(matches!(report.violations[0], Violation::Functional { .. }));
    }

    #[test]
    fn non_monotonic_cover_caught() {
        // Running example, signal d with a hand-broken set cover that skips
        // the fork code 1111 but grabs 1001 deep in the quiescent region.
        let stg = benchmarks::running_example();
        let syn = synthesize(
            &stg,
            &SynthesisOptions {
                architecture: Architecture::ExcitationFunction,
                stages: MinimizeStages::none(),
                ..Default::default()
            },
        )
        .unwrap();
        let d = stg.signal_by_name("d").unwrap();
        let idx = syn
            .circuit
            .implementations
            .iter()
            .position(|i| i.signal == d)
            .unwrap();
        let mut broken = syn.circuit.clone();
        if let ImplKind::CLatch { set, .. } = &mut broken.implementations[idx].kind {
            set.push(Cover::from_cube("1001".parse().unwrap()));
        }
        let report = verify_circuit(&stg, &broken);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NonMonotonicSet { .. })));
    }

    #[test]
    fn all_architectures_verify_on_suite() {
        for stg in benchmarks::synthesizable_suite() {
            for arch in [
                Architecture::ComplexGate,
                Architecture::ExcitationFunction,
                Architecture::PerRegion,
            ] {
                for stage in [MinimizeStages::none(), MinimizeStages::full()] {
                    let syn = synthesize(
                        &stg,
                        &SynthesisOptions {
                            architecture: arch,
                            stages: stage,
                            ..Default::default()
                        },
                    )
                    .unwrap_or_else(|e| panic!("{} {arch:?}: {e}", stg.name()));
                    let report = verify_circuit(&stg, &syn.circuit);
                    assert!(
                        report.is_ok(),
                        "{} under {arch:?} {stage:?}: {:?}",
                        stg.name(),
                        &report.violations[..report.violations.len().min(3)]
                    );
                }
            }
        }
    }
}
