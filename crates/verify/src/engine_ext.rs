//! Verification methods on the synthesis session.
//!
//! `si_core::Engine` owns the cached reachability artifacts but cannot
//! depend on this crate (the dependency points the other way), so the
//! verification half of the pipeline arrives as an extension trait:
//! import [`EngineVerify`] (it is in `sisyn::prelude`) and the whole flow
//! reads as methods on one session object.

use crate::check::{verify_circuit_on_opts, VerificationReport};
use crate::conform::{engine_conformance, ConformanceReport};
use si_core::{Circuit, Engine};
use si_petri::ReachError;

/// Speed-independence verification over an [`Engine`]'s cached artifacts.
///
/// Both methods reuse the session's reachability graph: a
/// synthesize-then-verify-then-conformance pipeline explores the
/// specification's state space **exactly once** (pinned by a build-count
/// test).
///
/// # Examples
///
/// ```
/// use si_core::Engine;
/// use si_verify::EngineVerify;
///
/// let stg = si_stg::generators::clatch(2);
/// let engine = Engine::new(&stg);
/// let syn = engine.synthesize()?;
/// assert!(engine.verify(&syn.circuit)?.is_ok());
/// assert!(engine.check_conformance(&syn.circuit)?.is_ok());
/// assert_eq!(engine.reach_build_count(), 1); // graph shared by both checks
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait EngineVerify {
    /// Functional + monotonic-cover verification
    /// ([`crate::verify_circuit_with`] semantics) over the cached graph.
    /// The violation search runs on the session's configured shard count
    /// (`Engine::shards`) under the session's soft budget (deadline /
    /// cancellation — an interrupted search returns a partial report
    /// tagged [`VerificationReport::interrupted`]); the report is
    /// identical at any shard count.
    ///
    /// # Errors
    ///
    /// Any [`ReachError`] from building the session's reachability graph
    /// — including [`ReachError::Interrupted`] when the budget ran out
    /// mid-build — or [`ReachError::WorkerPanicked`] from the search.
    fn verify(&self, circuit: &Circuit) -> Result<VerificationReport, ReachError>;

    /// Product-automaton conformance checking
    /// ([`crate::check_conformance_with`] semantics). The session's
    /// budget bounds the product exploration (exhausting it returns a
    /// partial report tagged [`ConformanceReport::interrupted`], not an
    /// error) and the session's shard count parallelizes it; the probe
    /// graph falls back to the historical 4M-state headroom (one-shot,
    /// outside the session cache) when the session cap is too small for
    /// the specification, so a small cap still allows partial product
    /// exploration.
    ///
    /// # Errors
    ///
    /// [`ReachError::NotSafe`] on a broken specification and
    /// [`ReachError::WorkerPanicked`] from the exploration.
    fn check_conformance(&self, circuit: &Circuit) -> Result<ConformanceReport, ReachError>;
}

impl EngineVerify for Engine<'_> {
    fn verify(&self, circuit: &Circuit) -> Result<VerificationReport, ReachError> {
        let rg = self.reachability()?;
        let enc = self.encoding()?;
        verify_circuit_on_opts(self.stg(), circuit, rg, enc, &self.reach_options())
    }

    fn check_conformance(&self, circuit: &Circuit) -> Result<ConformanceReport, ReachError> {
        engine_conformance(self, circuit, self.reach_options())
    }
}
