//! Verification methods on the synthesis session.
//!
//! `si_core::Engine` owns the cached reachability artifacts but cannot
//! depend on this crate (the dependency points the other way), so the
//! verification half of the pipeline arrives as an extension trait:
//! import [`EngineVerify`] (it is in `sisyn::prelude`) and the whole flow
//! reads as methods on one session object.

use crate::check::{verify_circuit_on_with, VerificationReport};
use crate::conform::{engine_conformance, ConformanceReport};
use si_core::{Circuit, Engine};
use si_petri::ReachError;

/// Speed-independence verification over an [`Engine`]'s cached artifacts.
///
/// Both methods reuse the session's reachability graph: a
/// synthesize-then-verify-then-conformance pipeline explores the
/// specification's state space **exactly once** (pinned by a build-count
/// test).
///
/// # Examples
///
/// ```
/// use si_core::Engine;
/// use si_verify::EngineVerify;
///
/// let stg = si_stg::generators::clatch(2);
/// let engine = Engine::new(&stg);
/// let syn = engine.synthesize()?;
/// assert!(engine.verify(&syn.circuit)?.is_ok());
/// assert!(engine.check_conformance(&syn.circuit).is_ok());
/// assert_eq!(engine.reach_build_count(), 1); // graph shared by both checks
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait EngineVerify {
    /// Functional + monotonic-cover verification
    /// ([`crate::verify_circuit_with`] semantics) over the cached graph.
    /// The violation search runs on the session's configured shard count
    /// (`Engine::shards`); the report is identical at any.
    ///
    /// # Errors
    ///
    /// Any [`ReachError`] from building the session's reachability graph.
    fn verify(&self, circuit: &Circuit) -> Result<VerificationReport, ReachError>;

    /// Product-automaton conformance checking
    /// ([`crate::check_conformance_with`] semantics). The session's cap
    /// bounds the product exploration and the session's shard count
    /// parallelizes it; the probe graph falls back to the
    /// historical 4M-state headroom (one-shot, outside the session cache)
    /// when the session cap is too small for the specification, so a
    /// small cap still allows partial product exploration. Past that,
    /// overflow surfaces as
    /// [`crate::ConformanceFailure::StateCapExceeded`] in the report.
    fn check_conformance(&self, circuit: &Circuit) -> ConformanceReport;
}

impl EngineVerify for Engine<'_> {
    fn verify(&self, circuit: &Circuit) -> Result<VerificationReport, ReachError> {
        let rg = self.reachability()?;
        let enc = self.encoding()?;
        Ok(verify_circuit_on_with(
            self.stg(),
            circuit,
            rg,
            enc,
            self.reach_options().shards,
        ))
    }

    fn check_conformance(&self, circuit: &Circuit) -> ConformanceReport {
        engine_conformance(self, circuit, self.reach_options())
    }
}
