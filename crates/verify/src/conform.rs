//! Product-automaton conformance checking under the unbounded gate delay
//! model (§III-B hazard-freedom, checked behaviourally).
//!
//! The circuit (atomic networks + latch per signal) is composed with the
//! STG acting as the environment. A product state is a pair
//! `(marking, wire values)`; the exploration is exhaustive up to a cap:
//!
//! * **input** transitions fire whenever the STG enables them;
//! * an **output** is *excited* when its implementation's next value
//!   differs from its current wire value; firing it must correspond to an
//!   enabled STG transition of that signal — otherwise the circuit produces
//!   an **unexpected output** (conformance failure);
//! * if some other firing removes the excitation of an output, the circuit
//!   has a **disabled output** — a potential glitch, i.e. a hazard;
//! * if the STG can proceed with an output the circuit never excites, the
//!   implementation has a **liveness failure**.
//!
//! For speed-independent circuits the exploration terminates with no
//! failures; this is the behavioural mirror of the paper's claim that
//! correct + monotonic covers yield SI implementations.

use si_boolean::Bits;
use si_core::Circuit;
use si_petri::{Marking, TransId};
use si_stg::{SignalId, SignalKind, Stg};
use std::collections::{HashMap, VecDeque};

/// A conformance failure discovered during product exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConformanceFailure {
    /// An excited output has no matching enabled STG transition.
    UnexpectedOutput {
        /// The offending signal.
        signal: SignalId,
        /// Wire values at the failure state.
        code: Bits,
    },
    /// Firing `fired` removed the excitation of `disabled` — a hazard.
    DisabledOutput {
        /// The transition whose firing disabled the output.
        fired: TransId,
        /// The output signal that lost its excitation.
        disabled: SignalId,
    },
    /// The STG expects an output the circuit never produces.
    LivenessFailure {
        /// The starved transition.
        transition: TransId,
    },
    /// The exploration hit the state cap (result inconclusive).
    StateCapExceeded,
}

/// Result of [`check_conformance`].
#[derive(Clone, Debug, Default)]
pub struct ConformanceReport {
    /// All discovered failures (empty = conformant and hazard-free).
    pub failures: Vec<ConformanceFailure>,
    /// Number of product states explored.
    pub states_explored: usize,
}

impl ConformanceReport {
    /// `true` when the circuit conforms and is hazard-free.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Exhaustively explores the circuit × environment product up to `cap`
/// states.
pub fn check_conformance(stg: &Stg, circuit: &Circuit, cap: usize) -> ConformanceReport {
    check_conformance_with(stg, circuit, si_petri::ReachOptions::with_cap(cap))
}

/// Like [`check_conformance`] but with explicit [`si_petri::ReachOptions`]:
/// `reach.cap` bounds the product exploration and `reach.shards > 1` builds
/// the specification's reachability graph (the probe that seeds the initial
/// wire encoding) on the sharded multi-threaded engine.
///
/// The probe keeps at least the historical 4M-state headroom so a small
/// product cap still allows partial product exploration; if even that is
/// exceeded the report carries
/// [`ConformanceFailure::StateCapExceeded`] instead of panicking. This is a
/// one-shot wrapper over [`si_core::Engine`]; pipelines that also verify
/// should hold an `Engine` and call
/// [`crate::EngineVerify::check_conformance`] so the probe graph is shared.
///
/// # Panics
///
/// Panics if the specification's net is not safe (callers verify
/// synthesizable inputs, which always are) — an unsafe net is a broken
/// specification, not an inconclusive exploration.
pub fn check_conformance_with(
    stg: &Stg,
    circuit: &Circuit,
    reach: si_petri::ReachOptions,
) -> ConformanceReport {
    let probe_opts = si_petri::ReachOptions {
        cap: reach.cap.max(4_000_000),
        shards: reach.shards,
    };
    let engine = si_core::Engine::new(stg).reach(probe_opts);
    engine_conformance(&engine, circuit, reach.cap)
}

/// Conformance over an [`si_core::Engine`]'s cached probe graph: the
/// engine supplies the reachability graph and encoding that seed the
/// initial wire values, `cap` bounds the product exploration itself.
///
/// When the session's cap is too small for the specification, the probe
/// falls back to a **one-shot** graph at the historical 4M-state headroom
/// (without touching the session cache), so a small product cap still
/// allows partial product exploration — the same contract as
/// [`check_conformance_with`]. Only past that headroom does the report
/// carry [`ConformanceFailure::StateCapExceeded`].
pub(crate) fn engine_conformance(
    engine: &si_core::Engine<'_>,
    circuit: &Circuit,
    cap: usize,
) -> ConformanceReport {
    let stg = engine.stg();
    let code0 = match engine.reachability() {
        Ok(rg) => {
            let enc = engine.encoding().expect("reachability already succeeded");
            let s0 = rg
                .state_of(&stg.net().initial_marking())
                .expect("initial state");
            enc.code(s0).clone()
        }
        Err(si_petri::ReachError::StateCapExceeded { cap: session_cap })
            if session_cap < 4_000_000 =>
        {
            // Probe-headroom fallback, outside the session cache.
            let probe = si_petri::ReachOptions {
                cap: 4_000_000,
                shards: engine.reach_options().shards,
            };
            match si_petri::ReachabilityGraph::build_with(stg.net(), probe) {
                Ok(rg) => {
                    let enc = si_stg::StateEncoding::compute(stg, &rg).expect("consistent");
                    let s0 = rg
                        .state_of(&stg.net().initial_marking())
                        .expect("initial state");
                    enc.code(s0).clone()
                }
                Err(si_petri::ReachError::StateCapExceeded { .. }) => {
                    return ConformanceReport {
                        failures: vec![ConformanceFailure::StateCapExceeded],
                        states_explored: 0,
                    };
                }
                Err(e @ si_petri::ReachError::NotSafe { .. }) => {
                    panic!("conformance check on a non-safe specification: {e}")
                }
            }
        }
        Err(si_petri::ReachError::StateCapExceeded { .. }) => {
            return ConformanceReport {
                failures: vec![ConformanceFailure::StateCapExceeded],
                states_explored: 0,
            };
        }
        Err(e @ si_petri::ReachError::NotSafe { .. }) => {
            panic!("conformance check on a non-safe specification: {e}")
        }
    };
    explore_product(stg, circuit, code0, cap)
}

/// The product-automaton exploration proper, from explicit initial wire
/// values `code0`.
fn explore_product(stg: &Stg, circuit: &Circuit, code0: Bits, cap: usize) -> ConformanceReport {
    let net = stg.net();
    let excited = |code: &Bits| -> Vec<SignalId> {
        circuit
            .implementations
            .iter()
            .filter(|imp| {
                imp.next_value(code, code.get(imp.signal.index())) != code.get(imp.signal.index())
            })
            .map(|imp| imp.signal)
            .collect()
    };

    let mut report = ConformanceReport::default();
    let mut seen: HashMap<(Marking, Bits), u32> = HashMap::new();
    let mut queue: VecDeque<(Marking, Bits)> = VecDeque::new();
    let start = (net.initial_marking(), code0);
    seen.insert(start.clone(), 0);
    queue.push_back(start);

    while let Some((marking, code)) = queue.pop_front() {
        if report.failures.len() >= 8 {
            break; // enough evidence
        }
        let excited_now = excited(&code);
        let enabled: Vec<TransId> = net.enabled_transitions(&marking);

        // Every excited output must be justified by an enabled transition
        // of that signal in the right direction.
        for &z in &excited_now {
            let target = !code.get(z.index());
            let justified = enabled
                .iter()
                .any(|&t| stg.signal_of(t) == z && stg.direction_of(t).target_value() == target);
            if !justified {
                report.failures.push(ConformanceFailure::UnexpectedOutput {
                    signal: z,
                    code: code.clone(),
                });
                continue;
            }
        }

        // Liveness: an enabled synthesized transition must be excited.
        for &t in &enabled {
            let sig = stg.signal_of(t);
            if stg.signal_kind(sig).is_synthesized() && !excited_now.contains(&sig) {
                // The output may still be mid-handshake elsewhere; a true
                // starvation shows as: enabled in the STG, value already at
                // the source level, but not excited.
                let source = !stg.direction_of(t).target_value();
                if code.get(sig.index()) == source {
                    report
                        .failures
                        .push(ConformanceFailure::LivenessFailure { transition: t });
                }
            }
        }

        // Successors: inputs fire freely; outputs fire when excited (and we
        // already know they are justified).
        for &t in &enabled {
            let sig = stg.signal_of(t);
            let is_input = stg.signal_kind(sig) == SignalKind::Input;
            let fires = if is_input {
                // The wire of an input follows the STG directly; only fire
                // it from the consistent level.
                code.get(sig.index()) != stg.direction_of(t).target_value()
            } else {
                excited_now.contains(&sig)
                    && code.get(sig.index()) != stg.direction_of(t).target_value()
            };
            if !fires {
                continue;
            }
            let marking2 = net.fire(&marking, t);
            let mut code2 = code.clone();
            code2.toggle(sig.index());

            // Hazard check: no previously excited output may lose its
            // excitation (other than the one that fired).
            let excited_after = excited(&code2);
            for &z in &excited_now {
                if z != sig && !excited_after.contains(&z) {
                    report.failures.push(ConformanceFailure::DisabledOutput {
                        fired: t,
                        disabled: z,
                    });
                }
            }

            let key = (marking2, code2);
            if !seen.contains_key(&key) {
                if seen.len() >= cap {
                    report.failures.push(ConformanceFailure::StateCapExceeded);
                    report.states_explored = seen.len();
                    return report;
                }
                seen.insert(key.clone(), seen.len() as u32);
                queue.push_back(key);
            }
        }
    }
    report.states_explored = seen.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_core::{synthesize, SynthesisOptions};
    use si_stg::benchmarks;

    #[test]
    fn synthesized_circuits_conform() {
        for stg in [
            benchmarks::half_handshake(),
            benchmarks::converter(),
            benchmarks::burst2(),
            si_stg::generators::clatch(3),
        ] {
            let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
            let report = check_conformance(&stg, &syn.circuit, 1_000_000);
            assert!(
                report.is_ok(),
                "{}: {:?}",
                stg.name(),
                &report.failures[..report.failures.len().min(3)]
            );
        }
    }

    #[test]
    fn inverted_output_is_not_conformant() {
        let stg = si_stg::generators::clatch(2);
        let mut syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let z = syn.results[0].signal;
        syn.circuit.implementations[0] = si_core::SignalImplementation {
            signal: z,
            kind: si_core::ImplKind::Combinational {
                cover: si_boolean::Cover::universe(stg.signal_count()),
                inverted: false,
            },
        };
        let report = check_conformance(&stg, &syn.circuit, 100_000);
        assert!(!report.is_ok());
    }
}
