//! Product-automaton conformance checking under the unbounded gate delay
//! model (§III-B hazard-freedom, checked behaviourally).
//!
//! The circuit (atomic networks + latch per signal) is composed with the
//! STG acting as the environment. A product state is a pair
//! `(marking, wire values)`; the exploration is exhaustive up to a cap:
//!
//! * **input** transitions fire whenever the STG enables them;
//! * an **output** is *excited* when its implementation's next value
//!   differs from its current wire value; firing it must correspond to an
//!   enabled STG transition of that signal — otherwise the circuit produces
//!   an **unexpected output** (conformance failure);
//! * if some other firing removes the excitation of an output, the circuit
//!   has a **disabled output** — a potential glitch, i.e. a hazard;
//! * if the STG can proceed with an output the circuit never excites, the
//!   implementation has a **liveness failure**.
//!
//! For speed-independent circuits the exploration terminates with no
//! failures; this is the behavioural mirror of the paper's claim that
//! correct + monotonic covers yield SI implementations.
//!
//! The product is defined as a [`si_petri::space::StateSpace`] — packed
//! states are `marking words ‖ wire-value words`, successors the product
//! firings above — and driven by the workspace's generic explorers, so
//! conformance gets sharded parallel exploration (`reach.shards > 1`),
//! reachability-identical cap semantics and a firing-sequence
//! counterexample ([`ConformanceReport::trace`]) from the same machinery
//! as every other traversal.

use si_boolean::Bits;
use si_core::Circuit;
use si_petri::space::{explore_with, ExploreError, ExploreOptions, SpaceVisitor, StateSpace};
use si_petri::{FiringView, Interrupt, InterruptReason, ReachError, TransId};
use si_stg::{SignalId, SignalKind, Stg};

/// A conformance failure discovered during product exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConformanceFailure {
    /// An excited output has no matching enabled STG transition.
    UnexpectedOutput {
        /// The offending signal.
        signal: SignalId,
        /// Wire values at the failure state.
        code: Bits,
    },
    /// Firing `fired` removed the excitation of `disabled` — a hazard.
    DisabledOutput {
        /// The transition whose firing disabled the output.
        fired: TransId,
        /// The output signal that lost its excitation.
        disabled: SignalId,
    },
    /// The STG expects an output the circuit never produces.
    LivenessFailure {
        /// The starved transition.
        transition: TransId,
    },
}

/// Result of [`check_conformance`].
#[derive(Clone, Debug, Default)]
pub struct ConformanceReport {
    /// All discovered failures (empty = conformant and hazard-free).
    pub failures: Vec<ConformanceFailure>,
    /// Number of product states explored.
    pub states_explored: usize,
    /// Counterexample: a firing sequence from the initial product state
    /// to the state at which `failures[0]` was observed (`None` when the
    /// circuit conforms).
    pub trace: Option<Vec<TransId>>,
    /// `Some` when the product exploration was stopped early by the
    /// budget (state cap, wall-clock deadline, cancellation): the verdict
    /// is **partial** — every reported failure is real, but a clean
    /// report only means "no failure in the `states_explored` product
    /// states explored".
    pub interrupted: Option<Interrupt>,
}

impl ConformanceReport {
    /// `true` when no failure was found. For an interrupted exploration
    /// this only covers the explored prefix — gate on
    /// [`ConformanceReport::is_conclusive`] for a definitive verdict.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// `true` when the exploration ran to completion (the verdict covers
    /// the whole product, not just an explored prefix).
    pub fn is_conclusive(&self) -> bool {
        self.interrupted.is_none()
    }
}

/// Collecting more failures than this is pointless — the verdict is long
/// settled; the explorers stop once the budget is spent.
const ENOUGH_EVIDENCE: usize = 8;

/// Exhaustively explores the circuit × environment product up to `cap`
/// states.
///
/// # Errors
///
/// See [`check_conformance_with`].
pub fn check_conformance(
    stg: &Stg,
    circuit: &Circuit,
    cap: usize,
) -> Result<ConformanceReport, ReachError> {
    check_conformance_with(stg, circuit, si_petri::ReachOptions::with_cap(cap))
}

/// Like [`check_conformance`] but with explicit [`si_petri::ReachOptions`]:
/// the budget (state cap, deadline, cancellation) bounds the product
/// exploration and `reach.shards > 1` runs **both** the specification's
/// reachability probe (which seeds the initial wire encoding) and the
/// product exploration itself on the sharded multi-threaded explorer. The
/// verdict is identical at any shard count.
///
/// Exhausting the budget is **not** an error: the report comes back
/// partial, tagged [`ConformanceReport::interrupted`]. The probe keeps at
/// least the historical 4M-state headroom so a small product cap still
/// allows partial product exploration; only past that does the report turn
/// inconclusive with zero product states. This is a one-shot wrapper over
/// [`si_core::Engine`]; pipelines that also verify should hold an `Engine`
/// and call [`crate::EngineVerify::check_conformance`] so the probe graph
/// is shared.
///
/// # Errors
///
/// [`ReachError::NotSafe`] when the specification's net is unsafe (a
/// broken specification, not an inconclusive exploration), and
/// [`ReachError::WorkerPanicked`] when a sharded explorer worker panicked.
pub fn check_conformance_with(
    stg: &Stg,
    circuit: &Circuit,
    reach: si_petri::ReachOptions,
) -> Result<ConformanceReport, ReachError> {
    let mut probe_opts = reach.clone();
    probe_opts.budget.cap = reach.budget.cap.max(4_000_000);
    let engine = si_core::Engine::new(stg).reach(probe_opts);
    engine_conformance(&engine, circuit, reach)
}

/// A zero-progress inconclusive report: the specification probe itself ran
/// out of budget, so not a single product state was explored.
fn probe_exhausted(reason: InterruptReason) -> ConformanceReport {
    ConformanceReport {
        failures: Vec::new(),
        states_explored: 0,
        trace: None,
        interrupted: Some(Interrupt {
            reason,
            states_explored: 0,
            elapsed: std::time::Duration::ZERO,
        }),
    }
}

/// Conformance over an [`si_core::Engine`]'s cached probe graph: the
/// engine supplies the reachability graph and encoding that seed the
/// initial wire values; `reach`'s budget bounds the product exploration
/// itself and `reach.shards` parallelizes it.
///
/// When the session's cap is too small for the specification, the probe
/// falls back to a **one-shot** graph at the historical 4M-state headroom
/// (without touching the session cache), so a small product cap still
/// allows partial product exploration — the same contract as
/// [`check_conformance_with`]. Only past that headroom (or when the
/// probe's deadline/cancellation fires first) does the report turn
/// inconclusive with zero product states.
pub(crate) fn engine_conformance(
    engine: &si_core::Engine<'_>,
    circuit: &Circuit,
    reach: si_petri::ReachOptions,
) -> Result<ConformanceReport, ReachError> {
    let _span = si_obs::span("verify.conformance");
    let stg = engine.stg();
    let code0 = match engine.reachability() {
        Ok(rg) => {
            let enc = engine.encoding().expect("reachability already succeeded");
            let s0 = rg
                .state_of(&stg.net().initial_marking())
                .expect("initial state");
            enc.code(s0).clone()
        }
        Err(ReachError::StateCapExceeded { cap: session_cap }) if session_cap < 4_000_000 => {
            // Probe-headroom fallback, outside the session cache.
            let mut probe = engine.reach_options();
            probe.budget.cap = 4_000_000;
            match si_petri::ReachabilityGraph::build_with(stg.net(), probe) {
                Ok(rg) => {
                    let enc = si_stg::StateEncoding::compute(stg, &rg).expect("consistent");
                    let s0 = rg
                        .state_of(&stg.net().initial_marking())
                        .expect("initial state");
                    enc.code(s0).clone()
                }
                Err(ReachError::StateCapExceeded { .. }) => {
                    return Ok(probe_exhausted(InterruptReason::CapExceeded))
                }
                Err(ReachError::Interrupted { reason, .. }) => return Ok(probe_exhausted(reason)),
                Err(e) => return Err(e),
            }
        }
        Err(ReachError::StateCapExceeded { .. }) => {
            return Ok(probe_exhausted(InterruptReason::CapExceeded))
        }
        Err(ReachError::Interrupted { reason, .. }) => return Ok(probe_exhausted(reason)),
        Err(e) => return Err(e),
    };
    explore_product(stg, circuit, code0, reach)
}

/// The product-automaton exploration proper, from explicit initial wire
/// values `code0`, on the explorer selected by `reach.shards`.
fn explore_product(
    stg: &Stg,
    circuit: &Circuit,
    code0: Bits,
    reach: si_petri::ReachOptions,
) -> Result<ConformanceReport, ReachError> {
    let space = ProductSpace::new(stg, circuit, code0);
    let opts = ExploreOptions::from(reach)
        .max_violations(ENOUGH_EVIDENCE)
        .witness();
    let expl = match explore_with(&space, opts) {
        Ok(expl) => expl,
        Err(ExploreError::WorkerPanicked { shard, message }) => {
            return Err(ReachError::WorkerPanicked { shard, message })
        }
        Err(ExploreError::Fatal(_)) => unreachable!("the product space has no fatal violations"),
    };
    let trace = expl
        .violations
        .first()
        .map(|&(gid, _)| expl.witness(gid).into_iter().map(TransId).collect());
    Ok(ConformanceReport {
        interrupted: expl.interrupt(),
        states_explored: expl.states,
        failures: expl.violations.into_iter().map(|(_, v)| v).collect(),
        trace,
    })
}

/// What the product space needs to know about one STG transition.
#[derive(Copy, Clone)]
struct TransInfo {
    /// Index of the transition's signal.
    sig: usize,
    /// The wire value the transition drives its signal to.
    target: bool,
    /// The environment fires it (input signal) — the circuit otherwise.
    is_input: bool,
    /// The signal is synthesized (output/internal): an enabled transition
    /// of it must be matched by an excitation (liveness).
    synthesized: bool,
}

/// The spec × circuit product space. Packed states are
/// `marking words ‖ wire-value words`; labels are STG transition indices.
struct ProductSpace<'a> {
    circuit: &'a Circuit,
    view: FiringView,
    /// Words of the marking part.
    mw: usize,
    /// Words of the wire-value part.
    cw: usize,
    /// Number of signals (wire-value bit width).
    nsig: usize,
    initial: Vec<u64>,
    tinfo: Vec<TransInfo>,
    /// Excited implementations are looked up by signal index.
    imp_of_sig: Vec<Option<usize>>,
}

impl<'a> ProductSpace<'a> {
    fn new(stg: &'a Stg, circuit: &'a Circuit, code0: Bits) -> Self {
        let net = stg.net();
        let view = net.firing_view();
        let mw = view.words();
        let nsig = stg.signal_count();
        debug_assert_eq!(code0.len(), nsig);
        let cw = code0.as_words().len();
        let mut initial = net.initial_marking().as_words().to_vec();
        initial.extend_from_slice(code0.as_words());
        let tinfo = net
            .transitions()
            .map(|t| {
                let sig = stg.signal_of(t);
                TransInfo {
                    sig: sig.index(),
                    target: stg.direction_of(t).target_value(),
                    is_input: stg.signal_kind(sig) == SignalKind::Input,
                    synthesized: stg.signal_kind(sig).is_synthesized(),
                }
            })
            .collect();
        let mut imp_of_sig = vec![None; nsig];
        for (i, imp) in circuit.implementations.iter().enumerate() {
            imp_of_sig[imp.signal.index()] = Some(i);
        }
        ProductSpace {
            circuit,
            view,
            mw,
            cw,
            nsig,
            initial,
            tinfo,
            imp_of_sig,
        }
    }

    /// The wire values of a packed product state, as [`Bits`].
    fn code_of(&self, state: &[u64]) -> Bits {
        Bits::from_words(self.nsig, state[self.mw..].to_vec())
    }
}

impl StateSpace for ProductSpace<'_> {
    type Violation = ConformanceFailure;

    fn words(&self) -> usize {
        self.mw + self.cw
    }

    fn initial(&self) -> Vec<u64> {
        self.initial.clone()
    }

    fn for_each_successor<Vis: SpaceVisitor<ConformanceFailure>>(
        &self,
        state: &[u64],
        scratch: &mut [u64],
        visit: &mut Vis,
    ) -> Result<(), ConformanceFailure> {
        let (m, _) = state.split_at(self.mw);
        let code = self.code_of(state);
        let excited: Vec<usize> = self
            .circuit
            .implementations
            .iter()
            .filter(|imp| {
                let i = imp.signal.index();
                imp.next_value(&code, code.get(i)) != code.get(i)
            })
            .map(|imp| imp.signal.index())
            .collect();
        let enabled: Vec<usize> = (0..self.tinfo.len())
            .filter(|&ti| self.view.is_enabled(m, ti))
            .collect();

        // Every excited output must be justified by an enabled transition
        // of that signal in the right direction.
        for &z in &excited {
            let target = !code.get(z);
            let justified = enabled
                .iter()
                .any(|&t| self.tinfo[t].sig == z && self.tinfo[t].target == target);
            if !justified {
                visit.violation(ConformanceFailure::UnexpectedOutput {
                    signal: SignalId(z as u16),
                    code: code.clone(),
                });
                continue;
            }
        }

        // Liveness: an enabled synthesized transition must be excited.
        for &t in &enabled {
            let info = self.tinfo[t];
            if info.synthesized && !excited.contains(&info.sig) {
                // The output may still be mid-handshake elsewhere; a true
                // starvation shows as: enabled in the STG, value already at
                // the source level, but not excited.
                if code.get(info.sig) != info.target {
                    visit.violation(ConformanceFailure::LivenessFailure {
                        transition: TransId(t as u32),
                    });
                }
            }
        }

        // Successors: inputs fire freely; outputs fire when excited (and we
        // already know they are justified).
        for &t in &enabled {
            let info = self.tinfo[t];
            let fires = if info.is_input {
                // The wire of an input follows the STG directly; only fire
                // it from the consistent level.
                code.get(info.sig) != info.target
            } else {
                excited.contains(&info.sig) && code.get(info.sig) != info.target
            };
            if !fires {
                continue;
            }
            let (sm, sc) = scratch.split_at_mut(self.mw);
            self.view.fire_into(m, t, sm);
            sc.copy_from_slice(&state[self.mw..]);
            sc[info.sig / 64] ^= 1u64 << (info.sig % 64);
            let code2 = Bits::from_words(self.nsig, sc.to_vec());

            // Hazard check: no previously excited output may lose its
            // excitation (other than the one that fired).
            for &z in &excited {
                if z == info.sig {
                    continue;
                }
                let imp = &self.circuit.implementations
                    [self.imp_of_sig[z].expect("excited signals are implemented")];
                if imp.next_value(&code2, code2.get(z)) == code2.get(z) {
                    visit.violation(ConformanceFailure::DisabledOutput {
                        fired: TransId(t as u32),
                        disabled: SignalId(z as u16),
                    });
                }
            }

            if !visit.successor(t as u32, scratch) {
                return Ok(());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_core::{synthesize, SynthesisOptions};
    use si_stg::benchmarks;

    #[test]
    fn synthesized_circuits_conform() {
        for stg in [
            benchmarks::half_handshake(),
            benchmarks::converter(),
            benchmarks::burst2(),
            si_stg::generators::clatch(3),
        ] {
            let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
            let report = check_conformance(&stg, &syn.circuit, 1_000_000).unwrap();
            assert!(
                report.is_ok(),
                "{}: {:?}",
                stg.name(),
                &report.failures[..report.failures.len().min(3)]
            );
            assert!(report.is_conclusive());
            assert!(report.trace.is_none());
        }
    }

    #[test]
    fn inverted_output_is_not_conformant() {
        let stg = si_stg::generators::clatch(2);
        let mut syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let z = syn.results[0].signal;
        syn.circuit.implementations[0] = si_core::SignalImplementation {
            signal: z,
            kind: si_core::ImplKind::Combinational {
                cover: si_boolean::Cover::universe(stg.signal_count()),
                inverted: false,
            },
        };
        let report = check_conformance(&stg, &syn.circuit, 100_000).unwrap();
        assert!(!report.is_ok());
        assert!(report.trace.is_some());
    }

    #[test]
    fn conformance_counterexample_replays_in_the_product() {
        // Sabotaged circuit: the trace must replay through the product
        // semantics (fire the STG transition, toggle the wire) and end at
        // a state exhibiting the first reported failure.
        let stg = si_stg::generators::clatch(2);
        let mut syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let z = syn.results[0].signal;
        syn.circuit.implementations[0] = si_core::SignalImplementation {
            signal: z,
            kind: si_core::ImplKind::Combinational {
                cover: si_boolean::Cover::universe(stg.signal_count()),
                inverted: false,
            },
        };
        for shards in [1, 2] {
            let report = check_conformance_with(
                &stg,
                &syn.circuit,
                si_petri::ReachOptions::with_cap(100_000).shards(shards),
            )
            .unwrap();
            assert!(!report.is_ok());
            let trace = report.trace.as_ref().expect("failures come with a trace");
            let net = stg.net();
            let mut m = net.initial_marking();
            let rg = si_petri::ReachabilityGraph::build(net, 100_000).unwrap();
            let enc = si_stg::StateEncoding::compute(&stg, &rg).unwrap();
            let mut code = enc.code(rg.state_of(&m).unwrap()).clone();
            for &t in trace {
                assert!(
                    net.is_enabled(&m, t),
                    "{shards} shards: dead trace step {t}"
                );
                m = net.fire(&m, t);
                code.toggle(stg.signal_of(t).index());
            }
            // The failure state must exhibit the first reported failure.
            match &report.failures[0] {
                ConformanceFailure::UnexpectedOutput { code: fc, .. } => {
                    assert_eq!(&code, fc, "{shards} shards: trace misses the failure state");
                }
                other => {
                    // Liveness / hazard failures are observed at the trace
                    // end by construction; just sanity-check the state is
                    // reachable in the spec.
                    let _ = other;
                    assert!(rg.state_of(&m).is_some());
                }
            }
        }
    }
}
