//! Speed-independence verification of synthesized circuits.
//!
//! This crate plays the role of the BDD model checker of reference \[32\] in the
//! paper's flow: every circuit produced by the structural synthesis is
//! independently verified against its STG specification on the explicit
//! state space —
//!
//! * [`verify_circuit`] / [`verify_circuit_with`]: functional correctness
//!   at every reachable marking plus Property-1 monotonicity of every
//!   set/reset network;
//! * [`check_conformance`]: exhaustive product-automaton exploration under
//!   the unbounded gate delay model, detecting unexpected outputs, disabled
//!   (hazardous) outputs and starved outputs;
//! * [`EngineVerify`]: both checks as methods on the `si_core::Engine`
//!   session, sharing its cached reachability graph.
//!
//! Both checks are implemented as [`si_petri::space::StateSpace`]s driven
//! by the workspace's generic explorers: passing `shards > 1` (via
//! [`si_petri::ReachOptions`] or `Engine::shards`) runs the violation
//! search and the conformance product on the sharded multi-threaded
//! explorer, and every failing report carries a firing-sequence
//! counterexample ([`VerificationReport::trace`],
//! [`ConformanceReport::trace`]).
//!
//! # Examples
//!
//! The pipeline spelling — synthesize, verify and conformance-check over
//! one session, building the reachability graph once:
//!
//! ```
//! use si_core::Engine;
//! use si_verify::EngineVerify;
//!
//! let stg = si_stg::generators::clatch(2);
//! let engine = Engine::new(&stg);
//! let syn = engine.synthesize()?;
//! assert!(engine.verify(&syn.circuit)?.is_ok());
//! assert!(engine.check_conformance(&syn.circuit)?.is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The one-shot free functions ([`verify_circuit`], [`check_conformance`])
//! remain as thin wrappers for single calls.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod check;
mod conform;
mod engine_ext;
mod sim;

pub use check::{
    verify_circuit, verify_circuit_on, verify_circuit_on_opts, verify_circuit_on_with,
    verify_circuit_with, VerificationReport, Violation,
};
pub use conform::{
    check_conformance, check_conformance_with, ConformanceFailure, ConformanceReport,
};
pub use engine_ext::EngineVerify;
pub use sim::{random_walks, record_walk, WalkOutcome};
