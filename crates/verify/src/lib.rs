//! Speed-independence verification of synthesized circuits.
//!
//! This crate plays the role of the BDD model checker of reference \[32\] in the
//! paper's flow: every circuit produced by the structural synthesis is
//! independently verified against its STG specification on the explicit
//! state space —
//!
//! * [`verify_circuit`]: functional correctness at every reachable marking
//!   plus Property-1 monotonicity of every set/reset network;
//! * [`check_conformance`]: exhaustive product-automaton exploration under
//!   the unbounded gate delay model, detecting unexpected outputs, disabled
//!   (hazardous) outputs and starved outputs.
//!
//! # Examples
//!
//! ```
//! use si_core::{synthesize, SynthesisOptions};
//! use si_verify::{check_conformance, verify_circuit};
//!
//! let stg = si_stg::generators::clatch(2);
//! let syn = synthesize(&stg, &SynthesisOptions::default())?;
//! assert!(verify_circuit(&stg, &syn.circuit).is_ok());
//! assert!(check_conformance(&stg, &syn.circuit, 100_000).is_ok());
//! # Ok::<(), si_core::SynthesisError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod check;
mod conform;
mod sim;

pub use check::{
    verify_circuit, verify_circuit_capped, verify_circuit_with, VerificationReport, Violation,
};
pub use conform::{
    check_conformance, check_conformance_with, ConformanceFailure, ConformanceReport,
};
pub use sim::{random_walks, record_walk, WalkOutcome};
