//! Randomized unbounded-delay simulation.
//!
//! [`crate::check_conformance`] explores the circuit × environment product
//! exhaustively; this module complements it with long *random walks* under
//! adversarial scheduling — cheap on specifications whose product is too
//! large to exhaust, and a natural fault-injection harness: a sabotaged
//! circuit is expected to fail within a few thousand steps.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use si_boolean::Bits;
use si_core::Circuit;
use si_stg::{SignalId, SignalKind, Stg};

/// Outcome of one random walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Completed all steps without a violation.
    Clean {
        /// Steps actually taken.
        steps: usize,
    },
    /// The circuit excited an output with no matching enabled transition.
    UnexpectedOutput {
        /// The offending signal.
        signal: SignalId,
        /// Step index of the failure.
        step: usize,
    },
    /// A firing removed the excitation of another output.
    DisabledOutput {
        /// The output that lost its excitation.
        signal: SignalId,
        /// Step index of the failure.
        step: usize,
    },
    /// No transition could fire but the specification is not finished —
    /// the composed system deadlocked.
    Deadlock {
        /// Step index of the deadlock.
        step: usize,
    },
}

impl WalkOutcome {
    /// `true` for [`WalkOutcome::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, WalkOutcome::Clean { .. })
    }
}

/// Runs `walks` random schedules of `steps` steps each; returns the first
/// non-clean outcome, or the clean summary of the longest walk.
pub fn random_walks(
    stg: &Stg,
    circuit: &Circuit,
    walks: usize,
    steps: usize,
    seed: u64,
) -> WalkOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = WalkOutcome::Clean { steps: 0 };
    for w in 0..walks {
        let outcome = walk(stg, circuit, steps, &mut rng);
        match outcome {
            WalkOutcome::Clean { steps: s } => {
                if let WalkOutcome::Clean { steps: b } = best {
                    if s > b {
                        best = WalkOutcome::Clean { steps: s };
                    }
                }
            }
            other => {
                let _ = w;
                return other;
            }
        }
    }
    best
}

/// Runs one recorded random walk: returns the outcome plus the fired
/// transition trace (for waveform rendering / debugging).
pub fn record_walk(
    stg: &Stg,
    circuit: &Circuit,
    steps: usize,
    seed: u64,
) -> (WalkOutcome, Vec<si_petri::TransId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Vec::new();
    let outcome = walk_inner(stg, circuit, steps, &mut rng, Some(&mut trace));
    (outcome, trace)
}

fn walk(stg: &Stg, circuit: &Circuit, steps: usize, rng: &mut StdRng) -> WalkOutcome {
    walk_inner(stg, circuit, steps, rng, None)
}

fn walk_inner(
    stg: &Stg,
    circuit: &Circuit,
    steps: usize,
    rng: &mut StdRng,
    mut trace: Option<&mut Vec<si_petri::TransId>>,
) -> WalkOutcome {
    let net = stg.net();
    // Initial wire values from the consistent encoding.
    let rg = si_petri::ReachabilityGraph::build(net, 4_000_000).expect("safe");
    let enc = si_stg::StateEncoding::compute(stg, &rg).expect("consistent");
    let s0 = rg.state_of(&net.initial_marking()).expect("initial");
    let mut code: Bits = enc.code(s0).clone();
    let mut marking = net.initial_marking();

    let excited = |code: &Bits| -> Vec<SignalId> {
        circuit
            .implementations
            .iter()
            .filter(|imp| {
                imp.next_value(code, code.get(imp.signal.index())) != code.get(imp.signal.index())
            })
            .map(|imp| imp.signal)
            .collect()
    };

    for step in 0..steps {
        let enabled = net.enabled_transitions(&marking);
        let excited_now = excited(&code);

        // Conformance: every excited output must be justified.
        for &z in &excited_now {
            let target = !code.get(z.index());
            let ok = enabled
                .iter()
                .any(|&t| stg.signal_of(t) == z && stg.direction_of(t).target_value() == target);
            if !ok {
                return WalkOutcome::UnexpectedOutput { signal: z, step };
            }
        }

        // Fireable moves: inputs freely, outputs when excited.
        let mut moves: Vec<si_petri::TransId> = Vec::new();
        for &t in &enabled {
            let sig = stg.signal_of(t);
            let level_ok = code.get(sig.index()) != stg.direction_of(t).target_value();
            if !level_ok {
                continue;
            }
            if stg.signal_kind(sig) == SignalKind::Input || excited_now.contains(&sig) {
                moves.push(t);
            }
        }
        let Some(&t) = moves.choose(rng) else {
            return WalkOutcome::Deadlock { step };
        };
        // Occasionally bias toward racing outputs first (adversarial-ish).
        let t = if rng.gen_bool(0.3) {
            *moves
                .iter()
                .find(|&&u| stg.signal_kind(stg.signal_of(u)).is_synthesized())
                .unwrap_or(&t)
        } else {
            t
        };

        marking = net.fire(&marking, t);
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(t);
        }
        let fired_sig = stg.signal_of(t);
        code.toggle(fired_sig.index());

        // Hazard: previously excited outputs must stay excited.
        let excited_after = excited(&code);
        for &z in &excited_now {
            if z != fired_sig && !excited_after.contains(&z) {
                return WalkOutcome::DisabledOutput { signal: z, step };
            }
        }
    }
    WalkOutcome::Clean { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_core::{synthesize, ImplKind, SynthesisOptions};

    #[test]
    fn clean_circuits_walk_clean() {
        for stg in [
            si_stg::benchmarks::burst2(),
            si_stg::benchmarks::vme_read_csc(),
            si_stg::generators::clatch(4),
        ] {
            let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
            let outcome = random_walks(&stg, &syn.circuit, 8, 4000, 42);
            assert!(outcome.is_clean(), "{}: {outcome:?}", stg.name());
        }
    }

    #[test]
    fn fault_injection_is_detected() {
        let stg = si_stg::generators::clatch(3);
        let mut syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        // Sabotage: make z combinational-high whenever any input is high —
        // fires far too early.
        let z = syn.results[0].signal;
        let w = stg.signal_count();
        let mut any_input = si_boolean::Cover::empty(w);
        for s in stg.signals() {
            if stg.signal_kind(s) == si_stg::SignalKind::Input {
                any_input.push(si_boolean::Cube::literal(w, s.index(), true));
            }
        }
        syn.circuit.implementations[0] = si_core::SignalImplementation {
            signal: z,
            kind: ImplKind::Combinational {
                cover: any_input,
                inverted: false,
            },
        };
        let outcome = random_walks(&stg, &syn.circuit, 8, 4000, 7);
        assert!(!outcome.is_clean(), "sabotage must be detected");
    }

    #[test]
    fn deterministic_given_seed() {
        let stg = si_stg::benchmarks::half_handshake();
        let syn = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let a = random_walks(&stg, &syn.circuit, 2, 500, 99);
        let b = random_walks(&stg, &syn.circuit, 2, 500, 99);
        assert_eq!(a, b);
    }
}
