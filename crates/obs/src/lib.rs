//! Unified tracing, metrics and profiling for the synthesis stack.
//!
//! Everything here is process-global and behind one runtime switch:
//!
//! * **Spans** — hierarchical enter/exit timing ([`span`]) aggregated by
//!   name-path into a tree; nesting gives the invariant that a node's
//!   children never sum to more than the node itself.
//! * **Metrics** — named atomic counters, gauges and log₂-bucketed
//!   histograms in a global registry ([`counter_add`], [`gauge_set`],
//!   [`histogram_record`]).
//! * **Renderers** — the same snapshot as a human tree profile
//!   ([`render_tree`]), a JSON object in the `--json` vocabulary
//!   ([`render_json`]) and Prometheus-style text exposition
//!   ([`render_prometheus`]).
//! * **Progress heartbeats** — an independently-armed periodic stderr
//!   line ([`arm_progress`] / [`progress_tick`]) driven from the
//!   explorers' existing amortized budget checkpoints.
//! * **A locked line sink** — [`log_line`] / [`log_lines`] serialize
//!   multi-threaded stderr logging so lines never shear.
//!
//! The switch is **off by default** and the off-path of every recording
//! helper is a single relaxed atomic load ([`enabled`]): instrumented
//! code pays one predictable branch at sites that already sit on
//! amortized checkpoints, and nothing else. The process-wide
//! [`record_count`] hook pins this in tests — a disabled run records
//! exactly zero observations.
//!
//! ```
//! si_obs::set_enabled(true);
//! {
//!     let _outer = si_obs::span("work");
//!     let _inner = si_obs::span("phase");
//!     si_obs::counter_add("work.items", 3);
//! }
//! let spans = si_obs::span_snapshot();
//! assert_eq!(spans[0].name, "work");
//! assert_eq!(spans[0].children[0].name, "phase");
//! si_obs::set_enabled(false);
//! si_obs::reset();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The switch

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is observation on? One relaxed atomic load — this is the entire
/// off-path cost of every instrumented site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns observation on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Process-wide count of observations that actually landed (span exits,
/// counter/gauge/histogram records). A test hook in the spirit of
/// `ReachabilityGraph::build_count()`: a disabled run must leave it
/// unchanged, pinning the single-load off-path.
static RECORDS: AtomicU64 = AtomicU64::new(0);

/// Total observations recorded since process start (the `RECORDS` seal).
pub fn record_count() -> u64 {
    RECORDS.load(Ordering::Relaxed)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Metric registry

/// A log₂-bucketed histogram: bucket `k` counts values whose bit length
/// is `k`, i.e. `v == 0` lands in bucket 0 and `2^(k-1) <= v < 2^k`
/// lands in bucket `k`. 64 buckets cover the full `u64` range.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0u64; 65].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let k = (64 - v.leading_zeros()) as usize;
        self.buckets[k].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-empty `(bucket_ceiling, count)` pairs in ascending order,
    /// where a ceiling of `c` means "values ≤ c".
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (k, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                let ceil = ((1u128 << k) - 1) as u64;
                out.push((ceil, n));
            }
        }
        out
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn counter_handle(name: &str) -> Arc<AtomicU64> {
    let mut reg = lock(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
    {
        Metric::Counter(c) => Arc::clone(c),
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

fn gauge_handle(name: &str) -> Arc<AtomicI64> {
    let mut reg = lock(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))))
    {
        Metric::Gauge(g) => Arc::clone(g),
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

fn histogram_handle(name: &str) -> Arc<Histogram> {
    let mut reg = lock(registry());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
    {
        Metric::Histogram(h) => Arc::clone(h),
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Adds `n` to the named counter. No-op (one relaxed load) when disabled.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    RECORDS.fetch_add(1, Ordering::Relaxed);
    counter_handle(name).fetch_add(n, Ordering::Relaxed);
}

/// Increments the named counter by one. No-op when disabled.
#[inline]
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Sets the named gauge. No-op (one relaxed load) when disabled.
#[inline]
pub fn gauge_set(name: &str, v: i64) {
    if !enabled() {
        return;
    }
    RECORDS.fetch_add(1, Ordering::Relaxed);
    gauge_handle(name).store(v, Ordering::Relaxed);
}

/// Raises the named gauge to `v` if `v` is larger (high-water mark).
/// No-op when disabled.
#[inline]
pub fn gauge_max(name: &str, v: i64) {
    if !enabled() {
        return;
    }
    RECORDS.fetch_add(1, Ordering::Relaxed);
    gauge_handle(name).fetch_max(v, Ordering::Relaxed);
}

/// Records a value into the named log₂ histogram. No-op when disabled.
#[inline]
pub fn histogram_record(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    RECORDS.fetch_add(1, Ordering::Relaxed);
    histogram_handle(name).record(v);
}

/// Reads the named counter's current value, if it exists.
pub fn counter_value(name: &str) -> Option<u64> {
    match lock(registry()).get(name) {
        Some(Metric::Counter(c)) => Some(c.load(Ordering::Relaxed)),
        _ => None,
    }
}

/// Reads the named gauge's current value, if it exists.
pub fn gauge_value(name: &str) -> Option<i64> {
    match lock(registry()).get(name) {
        Some(Metric::Gauge(g)) => Some(g.load(Ordering::Relaxed)),
        _ => None,
    }
}

/// Stores a gauge value bypassing the enabled switch. For snapshot-time
/// synchronization only (e.g. `si-serve` mirroring its queue/store
/// counters into the registry when a `metrics` snapshot is requested) —
/// never call this from instrumented hot paths.
pub fn gauge_sync(name: &str, v: i64) {
    gauge_handle(name).store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Spans

thread_local! {
    static SPAN_PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug, Default)]
struct SpanNode {
    calls: u64,
    total_ns: u64,
    children: BTreeMap<&'static str, SpanNode>,
}

fn span_root() -> &'static Mutex<SpanNode> {
    static SPANS: OnceLock<Mutex<SpanNode>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(SpanNode::default()))
}

/// RAII guard of one span entry; records elapsed time on drop. Inert
/// (and free beyond the construction-time check) when tracing is off.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Enters a named span on this thread. Spans nest: a span opened while
/// another is alive on the same thread becomes its child in the
/// aggregated profile tree. When tracing is disabled this is one
/// relaxed load and the guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { start: None };
    }
    SPAN_PATH.with(|p| p.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        let path: Vec<&'static str> = SPAN_PATH.with(|p| {
            let mut stack = p.borrow_mut();
            let path = stack.clone();
            stack.pop();
            path
        });
        if path.is_empty() {
            return; // reset() raced the guard; nothing to attribute.
        }
        RECORDS.fetch_add(1, Ordering::Relaxed);
        let mut node = lock(span_root());
        let mut cur = &mut *node;
        for name in path {
            cur = cur.children.entry(name).or_default();
        }
        cur.calls += 1;
        cur.total_ns += elapsed_ns;
    }
}

/// One node of the aggregated span tree, as returned by
/// [`span_snapshot`].
#[derive(Debug, Clone)]
pub struct SpanSnapshot {
    /// Span name (the string passed to [`span`]).
    pub name: String,
    /// Number of enter/exit pairs aggregated into this node.
    pub calls: u64,
    /// Total nanoseconds across all calls.
    pub total_ns: u64,
    /// Child spans (those opened while this one was alive).
    pub children: Vec<SpanSnapshot>,
}

fn snapshot_node(name: &str, node: &SpanNode) -> SpanSnapshot {
    SpanSnapshot {
        name: name.to_string(),
        calls: node.calls,
        total_ns: node.total_ns,
        children: node
            .children
            .iter()
            .map(|(n, c)| snapshot_node(n, c))
            .collect(),
    }
}

/// The aggregated span forest (top-level spans and their subtrees).
pub fn span_snapshot() -> Vec<SpanSnapshot> {
    let root = lock(span_root());
    root.children
        .iter()
        .map(|(n, c)| snapshot_node(n, c))
        .collect()
}

// ---------------------------------------------------------------------------
// Progress heartbeats

static PROGRESS_NS: AtomicU64 = AtomicU64::new(0);
static PROGRESS_LAST: AtomicU64 = AtomicU64::new(0);

fn progress_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Arms periodic progress heartbeats at the given interval. Heartbeats
/// are independent of the profiling switch: [`progress_tick`] emits a
/// line through the locked sink whenever at least `interval` has passed
/// since the previous heartbeat.
pub fn arm_progress(interval: Duration) {
    progress_epoch();
    PROGRESS_NS.store(interval.as_nanos().max(1) as u64, Ordering::Relaxed);
}

/// Are progress heartbeats armed? One relaxed load — explorers read
/// this once per run to fold the tick into their existing checkpoints.
#[inline(always)]
pub fn progress_armed() -> bool {
    PROGRESS_NS.load(Ordering::Relaxed) != 0
}

/// Reports exploration progress; called from the explorers' amortized
/// checkpoints. Emits a heartbeat line (states explored, frontier size,
/// elapsed) if the armed interval has elapsed, else returns quickly.
pub fn progress_tick(states: usize, frontier: usize) {
    let every = PROGRESS_NS.load(Ordering::Relaxed);
    if every == 0 {
        return;
    }
    let now = progress_epoch().elapsed().as_nanos() as u64;
    let last = PROGRESS_LAST.load(Ordering::Relaxed);
    if now.saturating_sub(last) < every {
        return;
    }
    // One thread wins the tick; losers skip rather than double-report.
    if PROGRESS_LAST
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        log_line(&format!(
            "[progress] states={states} frontier={frontier} elapsed={:.1}s",
            now as f64 / 1e9
        ));
    }
}

// ---------------------------------------------------------------------------
// Locked stderr sink

fn sink() -> &'static Mutex<()> {
    static SINK: OnceLock<Mutex<()>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(()))
}

/// Writes one line to stderr under the process-wide sink lock, so lines
/// emitted from concurrent threads never shear.
pub fn log_line(line: &str) {
    let _guard = lock(sink());
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// Writes a multi-line block to stderr atomically (single sink lock, a
/// trailing newline is added if missing).
pub fn log_lines(text: &str) {
    let _guard = lock(sink());
    let mut err = std::io::stderr().lock();
    if text.ends_with('\n') {
        let _ = write!(err, "{text}");
    } else {
        let _ = writeln!(err, "{text}");
    }
}

// ---------------------------------------------------------------------------
// Renderers

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn render_tree_node(out: &mut String, name: &str, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{name}");
    let _ = writeln!(
        out,
        "{label:<40} {:>12}ms  x{}",
        fmt_ms(node.total_ns),
        node.calls
    );
    for (child_name, child) in &node.children {
        render_tree_node(out, child_name, child, depth + 1);
    }
}

/// Renders the profile as a human-readable tree (spans, then counters,
/// gauges and histograms), suitable for stderr.
pub fn render_tree() -> String {
    let mut out = String::from("── profile ──────────────────────────────\n");
    {
        let root = lock(span_root());
        if root.children.is_empty() {
            out.push_str("(no spans recorded)\n");
        }
        for (name, node) in &root.children {
            render_tree_node(&mut out, name, node, 0);
        }
    }
    let reg = lock(registry());
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => counters.push((name, c.load(Ordering::Relaxed))),
            Metric::Gauge(g) => gauges.push((name, g.load(Ordering::Relaxed))),
            Metric::Histogram(h) => histograms.push((name, h)),
        }
    }
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in counters {
            let _ = writeln!(out, "  {name:<38} {v:>14}");
        }
    }
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in gauges {
            let _ = writeln!(out, "  {name:<38} {v:>14}");
        }
    }
    if !histograms.is_empty() {
        out.push_str("histograms (log2 buckets as ≤ceiling:count):\n");
        for (name, h) in histograms {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(ceil, n)| format!("≤{ceil}:{n}"))
                .collect();
            let _ = writeln!(
                out,
                "  {name:<38} n={} sum={} [{}]",
                h.count(),
                h.sum(),
                buckets.join(" ")
            );
        }
    }
    out.push_str("─────────────────────────────────────────");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json_span(out: &mut String, name: &str, node: &SpanNode) {
    let _ = write!(
        out,
        "{{\"name\": \"{}\", \"calls\": {}, \"total_ms\": {}, \"children\": [",
        json_escape(name),
        node.calls,
        fmt_ms(node.total_ns)
    );
    for (i, (child_name, child)) in node.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_json_span(out, child_name, child);
    }
    out.push_str("]}");
}

/// Renders the profile snapshot as one JSON object in the CLI's
/// `--json` vocabulary: `{"spans": [...], "counters": {...},
/// "gauges": {...}, "histograms": {...}}`.
pub fn render_json() -> String {
    let mut out = String::from("{\"spans\": [");
    {
        let root = lock(span_root());
        for (i, (name, node)) in root.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_json_span(&mut out, name, node);
        }
    }
    let reg = lock(registry());
    out.push_str("], \"counters\": {");
    let mut first = true;
    for (name, metric) in reg.iter() {
        if let Metric::Counter(c) = metric {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\": {}",
                json_escape(name),
                c.load(Ordering::Relaxed)
            );
        }
    }
    out.push_str("}, \"gauges\": {");
    let mut first = true;
    for (name, metric) in reg.iter() {
        if let Metric::Gauge(g) = metric {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\": {}",
                json_escape(name),
                g.load(Ordering::Relaxed)
            );
        }
    }
    out.push_str("}, \"histograms\": {");
    let mut first = true;
    for (name, metric) in reg.iter() {
        if let Metric::Histogram(h) = metric {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(ceil, n)| format!("[{ceil}, {n}]"))
                .collect();
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                json_escape(name),
                h.count(),
                h.sum(),
                buckets.join(", ")
            );
        }
    }
    out.push_str("}}");
    out
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn flatten_span_ms(out: &mut Vec<(String, u64, u64)>, prefix: &str, name: &str, node: &SpanNode) {
    let path = if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    };
    out.push((path.clone(), node.calls, node.total_ns));
    for (child_name, child) in &node.children {
        flatten_span_ms(out, &path, child_name, child);
    }
}

/// Renders the snapshot as Prometheus-style text exposition
/// (`# TYPE` lines, `_total` counters, `le`-labelled histogram
/// buckets; span times as `span_seconds_total` keyed by dotted path).
pub fn render_prometheus() -> String {
    let mut out = String::new();
    let mut spans = Vec::new();
    {
        let root = lock(span_root());
        for (name, node) in &root.children {
            flatten_span_ms(&mut spans, "", name, node);
        }
    }
    if !spans.is_empty() {
        out.push_str("# TYPE si_span_seconds_total counter\n");
        out.push_str("# TYPE si_span_calls_total counter\n");
        for (path, calls, total_ns) in &spans {
            let _ = writeln!(
                out,
                "si_span_seconds_total{{span=\"{path}\"}} {:.9}",
                *total_ns as f64 / 1e9
            );
            let _ = writeln!(out, "si_span_calls_total{{span=\"{path}\"}} {calls}");
        }
    }
    let reg = lock(registry());
    for (name, metric) in reg.iter() {
        let pname = prom_name(name);
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE si_{pname}_total counter");
                let _ = writeln!(out, "si_{pname}_total {}", c.load(Ordering::Relaxed));
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE si_{pname} gauge");
                let _ = writeln!(out, "si_{pname} {}", g.load(Ordering::Relaxed));
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE si_{pname} histogram");
                let mut cumulative = 0u64;
                for (ceil, n) in h.nonzero_buckets() {
                    cumulative += n;
                    let _ = writeln!(out, "si_{pname}_bucket{{le=\"{ceil}\"}} {cumulative}");
                }
                let _ = writeln!(out, "si_{pname}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "si_{pname}_sum {}", h.sum());
                let _ = writeln!(out, "si_{pname}_count {}", h.count());
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reset (tests and long-lived services)

/// Clears all recorded spans and metrics and disarms progress
/// heartbeats. The enabled switch and [`record_count`] are left alone.
/// Meant for tests and for snapshot-per-scrape services.
pub fn reset() {
    lock(span_root()).children.clear();
    lock(registry()).clear();
    PROGRESS_NS.store(0, Ordering::Relaxed);
    PROGRESS_LAST.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global switch serializes tests that flip it.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        lock(GATE.get_or_init(|| Mutex::new(())))
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        set_enabled(false);
        reset();
        let before = record_count();
        {
            let _s = span("never");
            counter_add("never.counter", 7);
            gauge_set("never.gauge", 7);
            histogram_record("never.histogram", 7);
        }
        assert_eq!(record_count(), before);
        assert!(span_snapshot().is_empty());
        assert_eq!(counter_value("never.counter"), None);
    }

    #[test]
    fn spans_nest_and_children_bound_parent() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
            {
                let _inner = span("inner");
            }
        }
        let snap = span_snapshot();
        set_enabled(false);
        assert_eq!(snap.len(), 1);
        let outer = &snap[0];
        assert_eq!((outer.name.as_str(), outer.calls), ("outer", 1));
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!((inner.name.as_str(), inner.calls), ("inner", 2));
        assert!(inner.total_ns <= outer.total_ns);
    }

    #[test]
    fn metrics_register_and_render() {
        let _g = serial();
        set_enabled(true);
        reset();
        counter_add("test.counter", 41);
        counter_inc("test.counter");
        gauge_set("test.gauge", -3);
        gauge_max("test.gauge", 9);
        gauge_max("test.gauge", 5);
        histogram_record("test.hist", 0);
        histogram_record("test.hist", 1);
        histogram_record("test.hist", 5);
        histogram_record("test.hist", 5000);
        set_enabled(false);

        assert_eq!(counter_value("test.counter"), Some(42));
        assert_eq!(gauge_value("test.gauge"), Some(9));

        let tree = render_tree();
        assert!(tree.contains("test.counter"), "{tree}");
        assert!(tree.contains("42"), "{tree}");

        let json = render_json();
        assert!(json.contains("\"test.counter\": 42"), "{json}");
        assert!(json.contains("\"test.gauge\": 9"), "{json}");
        assert!(
            json.contains("\"test.hist\": {\"count\": 4, \"sum\": 5006"),
            "{json}"
        );

        let prom = render_prometheus();
        assert!(prom.contains("si_test_counter_total 42"), "{prom}");
        assert!(prom.contains("si_test_gauge 9"), "{prom}");
        assert!(
            prom.contains("si_test_hist_bucket{le=\"+Inf\"} 4"),
            "{prom}"
        );
        assert!(prom.contains("si_test_hist_sum 5006"), "{prom}");
        reset();
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(u64::MAX);
        // 0 → ≤0; 1 → ≤1; 2,3 → ≤3; 4 → ≤7; MAX → ≤MAX.
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (u64::MAX, 1)]
        );
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn threaded_spans_do_not_shear() {
        let _g = serial();
        set_enabled(true);
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..50 {
                        let _s = span("worker");
                        counter_inc("worker.iterations");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = span_snapshot();
        set_enabled(false);
        let worker = snap.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.calls, 200);
        assert_eq!(counter_value("worker.iterations"), Some(200));
        reset();
    }

    #[test]
    fn progress_tick_respects_interval() {
        let _g = serial();
        reset();
        assert!(!progress_armed());
        progress_tick(1, 1); // disarmed: no-op
        arm_progress(Duration::from_millis(1));
        assert!(progress_armed());
        std::thread::sleep(Duration::from_millis(2));
        progress_tick(10, 2);
        reset();
        assert!(!progress_armed());
    }
}
