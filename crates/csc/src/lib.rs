//! Structural CSC resolution by state-signal insertion — the subsystem
//! behind `sisyn resolve`.
//!
//! When the structural analysis cannot establish complete state coding
//! (§VI of the paper: "by adding state signals, the covers can always be
//! reduced to nonintersecting" — the procedure itself is deferred to the
//! companion paper \[27\]), synthesis rejects the STG. This crate
//! implements the missing piece as a scalable search, built on three
//! pillars:
//!
//! 1. **Conflict cores** ([`conflict_cores`]): the structural obstructions
//!    — preset places of synthesized transitions whose ER covers the
//!    refinement rounds cannot separate from a witness place (Theorem 14)
//!    — extracted from the [`StructuralContext`] of the input. Insertion
//!    candidates are generated *around* the cores, nearest first, instead
//!    of enumerating all transition pairs blindly ([`targeted_candidates`]).
//! 2. **Incremental re-analysis**
//!    ([`StructuralContext::build_incremental`], in `si-core`): each
//!    candidate's structural context is replayed from the input's recorded
//!    refinement trace, recomputing only the covers the insertion touched
//!    — bit-identical to a full rebuild (prop-tested) without paying for
//!    one per candidate (pinned by [`StructuralContext::build_count`]).
//! 3. **Parallel candidate evaluation** ([`resolve`]): surviving
//!    candidates are scored concurrently (std threads behind the
//!    `parallel` feature), ranked by a cost model (estimated literal delta
//!    plus a concurrency-reduction penalty), and accepted through the
//!    behavioural oracle under a [`Strategy`] — greedy first-fit in core
//!    proximity order, or beam search over the best-ranked survivors.
//!
//! The pre-subsystem blind search is kept verbatim as
//! [`resolve_csc_blind`], the equivalence oracle and bench baseline (the
//! same pattern as the `_naive` engines of `si-petri`).
//!
//! # Examples
//!
//! ```
//! use si_csc::EngineResolve;
//!
//! let raw = si_stg::benchmarks::vme_read_raw();
//! let engine = si_core::Engine::new(&raw).cap(100_000);
//! let (fixed, _plan) = engine.resolve_csc(50_000).expect("resolvable");
//! assert_eq!(fixed.signal_count(), raw.signal_count() + 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cores;
mod engine_ext;
mod search;

pub use cores::{conflict_cores, targeted_candidate_tiers, targeted_candidates, ConflictCore};
pub use engine_ext::EngineResolve;
pub use search::{
    resolve, resolve_csc, resolve_csc_blind, resolve_csc_with, CscOptions, Resolution,
    ResolveOutcome, ResolveStats, Strategy,
};

// The types the subsystem's API is phrased in.
pub use si_core::StructuralContext;
pub use si_stg::{apply_insertion, apply_insertion_mapped, InsertionMap, InsertionPlan};
