//! CSC resolution as an [`Engine`] method.
//!
//! `si-csc` depends on `si-core` (resolution drives whole `Engine`
//! sessions per candidate), so — like speed-independence verification in
//! `si-verify` — the engine surface lives here as an extension trait. It
//! is re-exported from `sisyn::prelude`, so `engine.resolve_csc(..)`
//! keeps reading exactly as before the subsystem split.

use crate::search::{resolve, CscOptions, Resolution, ResolveOutcome, ResolveStats};
use si_core::{no_conflict_resolution, Engine};
use si_stg::{InsertionPlan, Stg};

/// CSC resolution methods of the synthesis session.
pub trait EngineResolve {
    /// CSC resolution by state-signal insertion with the session's
    /// reachability options as the acceptance oracle and the default
    /// greedy strategy.
    ///
    /// Returns the repaired STG and the insertion plan, or `None` when no
    /// candidate within `budget` works; see [`crate::resolve_csc`] for
    /// the plan semantics.
    fn resolve_csc(&self, budget: usize) -> Option<(Stg, InsertionPlan)>;

    /// The full-control form: explicit [`CscOptions`] (strategy, beam
    /// width, workers, oracle reach options), returning the search
    /// statistics alongside the resolution. The session's cached
    /// structural context serves the no-conflict fast path.
    fn resolve_csc_outcome(&self, options: &CscOptions) -> ResolveOutcome;
}

impl EngineResolve for Engine<'_> {
    fn resolve_csc(&self, budget: usize) -> Option<(Stg, InsertionPlan)> {
        self.resolve_csc_outcome(
            &CscOptions::default()
                .budget(budget)
                .reach(self.reach_options()),
        )
        .resolution
        .map(|r| (r.stg, r.plan))
    }

    fn resolve_csc_outcome(&self, options: &CscOptions) -> ResolveOutcome {
        // Reuse the session's cached context: a check-then-resolve
        // pipeline analyzes the input once.
        if let Ok(ctx) = self.context() {
            if let Some((same, plan)) = no_conflict_resolution(self.stg(), ctx) {
                return ResolveOutcome {
                    resolution: Some(Resolution {
                        stg: same,
                        plan,
                        cost: 0,
                    }),
                    stats: ResolveStats::new(options.strategy),
                };
            }
        }
        resolve(self.stg(), options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_resolve_matches_free_function() {
        let raw = si_stg::benchmarks::vme_read_raw();
        let engine = Engine::new(&raw).cap(100_000);
        let (fixed_engine, plan_engine) = engine.resolve_csc(50_000).expect("resolvable");
        let (fixed_free, plan_free) =
            crate::resolve_csc_with(&raw, 50_000, engine.reach_options()).expect("resolvable");
        assert_eq!(plan_engine, plan_free);
        assert_eq!(si_stg::write_g(&fixed_engine), si_stg::write_g(&fixed_free));
    }

    #[test]
    fn fast_path_reports_zero_search() {
        let stg = si_stg::benchmarks::burst2();
        let engine = Engine::new(&stg);
        let outcome = engine.resolve_csc_outcome(&CscOptions::default());
        assert!(outcome.resolution.is_some());
        assert_eq!(outcome.stats.evaluated, 0);
        assert_eq!(outcome.stats.oracle_calls, 0);
    }
}
