//! The candidate search: structural scoring, cost ranking, strategies and
//! the behavioural acceptance oracle.
//!
//! The search pipeline per candidate:
//!
//! 1. `apply_insertion_mapped` — the STG surgery (`si_stg::edit`);
//! 2. [`StructuralContext::build_incremental`] — incremental re-analysis
//!    replaying the input's refinement trace (no full context rebuild);
//! 3. structural pruning — candidates whose CSC verdict stays `Unknown`
//!    are rejected without ever touching a state graph;
//! 4. cost model — estimated literal delta (place-cover cube growth plus
//!    the literals of the new signal's own excitation covers) plus a
//!    penalty per concurrent place pair the insertion serializes;
//! 5. behavioural oracle — liveness, safeness, consistency, CSC and output
//!    semimodularity on the candidate's own [`Engine`] session.
//!
//! Steps 1–4 are scored concurrently across a std-thread worker pool
//! (`parallel` feature); the oracle runs in deterministic rank order, so
//! the outcome is identical at any worker count.

use crate::cores::{conflict_cores, targeted_candidate_tiers};
use si_core::{no_conflict_resolution, CscVerdict, Engine, RefinementTrace, StructuralContext};
use si_petri::{Interrupt, PlaceId, ReachOptions, TransId};
use si_stg::{
    apply_insertion, apply_insertion_mapped, semimodularity_violations, CodingAnalysis,
    InsertionMap, InsertionPlan, StateEncoding, Stg,
};
use std::time::Instant;

/// Candidate-selection strategy of [`resolve`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// First fit in core-proximity order: candidates are scored in
    /// batches and the first structural survivor the oracle accepts wins.
    /// Cheapest wall time; the plan quality rides on the tier ordering.
    Greedy,
    /// Score candidates tier by tier (expanding core-proximity radius,
    /// within the budget) until a completed tier yields structural
    /// survivors; rank those survivors by the cost model and oracle the
    /// best `beam_width` in rank order — the accepted plan is the
    /// least-cost one the oracle admits *within the nearest productive
    /// tier* (the full space is only scored when every closer tier is
    /// barren, which keeps beam cost comparable to greedy).
    Beam,
}

impl Strategy {
    /// The stable CLI identifier (`--strategy` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Greedy => "greedy",
            Strategy::Beam => "beam",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "greedy" => Ok(Strategy::Greedy),
            "beam" => Ok(Strategy::Beam),
            other => Err(format!(
                "unknown strategy {other:?} (expected greedy or beam)"
            )),
        }
    }
}

/// Options of the CSC resolution search.
#[derive(Clone, Debug)]
pub struct CscOptions {
    /// Candidate-search budget: how many insertion candidates may be
    /// structurally evaluated (distinct from `reach.cap`, which bounds
    /// each candidate's acceptance oracle).
    pub budget: usize,
    /// The search strategy.
    pub strategy: Strategy,
    /// How many ranked survivors the beam strategy oracles.
    pub beam_width: usize,
    /// Reachability options of the behavioural acceptance oracle.
    pub reach: ReachOptions,
    /// Worker threads for the structural scoring phase; `0` picks the
    /// hardware thread count. Ignored without the `parallel` feature.
    pub workers: usize,
    /// Name of the inserted signal.
    pub signal_name: String,
}

impl Default for CscOptions {
    fn default() -> Self {
        CscOptions {
            budget: 100_000,
            strategy: Strategy::Greedy,
            beam_width: 8,
            reach: ReachOptions::with_cap(1_000_000),
            workers: 0,
            signal_name: "csc0".to_string(),
        }
    }
}

impl CscOptions {
    /// Sets the candidate-search budget.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the beam width.
    pub fn beam_width(mut self, width: usize) -> Self {
        self.beam_width = width.max(1);
        self
    }

    /// Sets the oracle's reachability options.
    pub fn reach(mut self, reach: ReachOptions) -> Self {
        self.reach = reach;
        self
    }

    /// Sets the scoring worker count (`0` = hardware threads).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    fn effective_workers(&self) -> usize {
        if cfg!(feature = "parallel") {
            if self.workers == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                self.workers
            }
        } else {
            1
        }
    }
}

/// Counters of one [`resolve`] run — the `--json` search statistics of
/// `sisyn resolve`.
///
/// When the input fails the structural preconditions (inconsistent / not
/// SM-coverable) the resolver falls back to [`resolve_csc_blind`], which
/// has no counters: only `wall_ms` and `strategy` are meaningful then.
#[derive(Clone, Debug)]
pub struct ResolveStats {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Conflict cores extracted from the input.
    pub cores: usize,
    /// Insertion candidates generated (deduplicated, budget-capped).
    pub generated: usize,
    /// Candidates structurally evaluated (incremental re-analyses).
    pub evaluated: usize,
    /// Candidates the structural pruning rejected.
    pub rejected: usize,
    /// Behavioural oracle runs.
    pub oracle_calls: usize,
    /// Oracle runs that rejected the candidate.
    pub oracle_rejected: usize,
    /// Candidates whose scoring worker panicked. Panics are isolated per
    /// candidate (`si_fault::run_isolated`): the panicking candidate is
    /// skipped and the search continues on the surviving ones.
    pub panicked: usize,
    /// Set when the oracle budget's deadline or cancellation token stopped
    /// the search early; `states_explored` carries the number of
    /// candidates evaluated up to that point. The outcome then reports the
    /// best resolution found so far (possibly none) — inconclusive, not
    /// failed.
    pub interrupted: Option<Interrupt>,
    /// End-to-end wall time in milliseconds.
    pub wall_ms: f64,
}

impl ResolveStats {
    pub(crate) fn new(strategy: Strategy) -> Self {
        ResolveStats {
            strategy,
            cores: 0,
            generated: 0,
            evaluated: 0,
            rejected: 0,
            oracle_calls: 0,
            oracle_rejected: 0,
            panicked: 0,
            interrupted: None,
            wall_ms: 0.0,
        }
    }

    /// Records a deadline/cancellation interruption (first one wins).
    fn interrupt(&mut self, reason: si_petri::InterruptReason, elapsed: std::time::Duration) {
        if self.interrupted.is_none() {
            self.interrupted = Some(Interrupt {
                reason,
                states_explored: self.evaluated,
                elapsed,
            });
        }
    }
}

/// A successful resolution: the repaired STG, the plan that produced it
/// and its cost-model score (`0` for the no-conflict fast path).
#[derive(Clone, Debug)]
pub struct Resolution {
    /// The repaired STG (one more internal signal).
    pub stg: Stg,
    /// The accepted insertion plan (the sentinel plan when the input
    /// already satisfied CSC).
    pub plan: InsertionPlan,
    /// Cost-model score of the accepted candidate.
    pub cost: i64,
}

/// The result of [`resolve`]: the resolution (if any) plus the search
/// statistics, which are reported even on failure.
#[derive(Clone, Debug)]
pub struct ResolveOutcome {
    /// The resolution, or `None` when no candidate within the budget
    /// passed both the structural pruning and the behavioural oracle.
    pub resolution: Option<Resolution>,
    /// Search statistics.
    pub stats: ResolveStats,
}

/// Searches for a single-signal insertion that resolves the CSC conflicts
/// of `stg` under the given options. See the crate docs for the pipeline.
///
/// When the input already satisfies CSC it is returned unchanged together
/// with the no-op sentinel plan (`si_core::sentinel_plan`).
pub fn resolve(stg: &Stg, options: &CscOptions) -> ResolveOutcome {
    let _span = si_obs::span("csc.resolve");
    let t0 = Instant::now();
    let ctx_full0 = StructuralContext::build_count();
    let ctx_incr0 = StructuralContext::incremental_count();
    let mut stats = ResolveStats::new(options.strategy);
    let Ok((parent, trace)) = StructuralContext::build_traced(stg) else {
        // The input fails the structural preconditions; fall back to the
        // blind search for exact behavioural parity (its candidates are
        // built from scratch and may still pass — rare, but the old
        // semantics). The blind search has no counters, so only `wall_ms`
        // and the requested strategy label are meaningful in the returned
        // stats on this path.
        let resolution = resolve_csc_blind(stg, options.budget, options.reach.clone())
            .map(|(stg, plan)| Resolution { stg, plan, cost: 0 });
        stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        return ResolveOutcome { resolution, stats };
    };
    if let Some((same, plan)) = no_conflict_resolution(stg, &parent) {
        stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        return ResolveOutcome {
            resolution: Some(Resolution {
                stg: same,
                plan,
                cost: 0,
            }),
            stats,
        };
    }

    let cores = conflict_cores(&parent);
    stats.cores = cores.len();
    let tiers = targeted_candidate_tiers(&parent, &cores, options.budget);
    stats.generated = tiers.iter().map(Vec::len).sum();
    let workers = options.effective_workers();
    let name = fresh_signal_name(stg, &options.signal_name);

    let mut resolution = None;
    match options.strategy {
        Strategy::Greedy => {
            // Fixed-size batches keep the outcome deterministic at any
            // worker count: survivors of a batch are oracled in candidate
            // order before the next batch is scored.
            let batch = (workers * 8).max(32);
            'outer: for chunk in tiers.iter().flat_map(|tier| tier.chunks(batch)) {
                if let Some(reason) = options.reach.budget.check_soft(0) {
                    stats.interrupt(reason, t0.elapsed());
                    break 'outer;
                }
                let results = evaluate_batch(stg, &parent, &trace, &name, chunk, workers);
                stats.evaluated += chunk.len();
                for (i, result) in results.into_iter().enumerate() {
                    let result = match result {
                        Ok(scored) => scored,
                        Err(_panic) => {
                            stats.panicked += 1;
                            continue;
                        }
                    };
                    let Some((candidate, cost)) = result else {
                        stats.rejected += 1;
                        continue;
                    };
                    stats.oracle_calls += 1;
                    if oracle_accepts(&candidate, &options.reach) {
                        resolution = Some(Resolution {
                            stg: candidate,
                            plan: chunk[i].clone(),
                            cost,
                        });
                        break 'outer;
                    }
                    stats.oracle_rejected += 1;
                }
            }
        }
        Strategy::Beam => {
            // Score tier by tier; once a completed tier has structural
            // survivors, rank them by cost and oracle the best. Ranking
            // within completed tiers keeps beam cost comparable to greedy
            // (the full candidate space is only scored when every closer
            // tier is barren) while still optimizing the cost model.
            let batch = (workers * 8).max(32);
            let mut survivors: Vec<(i64, usize, Stg, InsertionPlan)> = Vec::new();
            let mut order = 0usize;
            'scoring: for tier in &tiers {
                for chunk in tier.chunks(batch) {
                    if let Some(reason) = options.reach.budget.check_soft(0) {
                        // Graceful degradation: rank whatever survived the
                        // batches scored so far instead of discarding them.
                        stats.interrupt(reason, t0.elapsed());
                        break 'scoring;
                    }
                    let results = evaluate_batch(stg, &parent, &trace, &name, chunk, workers);
                    stats.evaluated += chunk.len();
                    for (i, result) in results.into_iter().enumerate() {
                        match result {
                            Ok(Some((candidate, cost))) => {
                                survivors.push((cost, order, candidate, chunk[i].clone()))
                            }
                            Ok(None) => stats.rejected += 1,
                            Err(_panic) => stats.panicked += 1,
                        }
                        order += 1;
                    }
                }
                if !survivors.is_empty() {
                    break;
                }
            }
            survivors.sort_by_key(|&(cost, index, _, _)| (cost, index));
            for (cost, _, candidate, plan) in survivors.into_iter().take(options.beam_width) {
                if let Some(reason) = options.reach.budget.check_soft(0) {
                    stats.interrupt(reason, t0.elapsed());
                    break;
                }
                stats.oracle_calls += 1;
                if oracle_accepts(&candidate, &options.reach) {
                    resolution = Some(Resolution {
                        stg: candidate,
                        plan,
                        cost,
                    });
                    break;
                }
                stats.oracle_rejected += 1;
            }
        }
    }
    stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if si_obs::enabled() {
        si_obs::counter_add("csc.cores", stats.cores as u64);
        si_obs::counter_add("csc.tiers", tiers.len() as u64);
        si_obs::counter_add("csc.candidates", stats.generated as u64);
        si_obs::counter_add("csc.evaluated", stats.evaluated as u64);
        si_obs::counter_add("csc.rejected", stats.rejected as u64);
        si_obs::counter_add("csc.oracle_calls", stats.oracle_calls as u64);
        si_obs::counter_add("csc.oracle_rejected", stats.oracle_rejected as u64);
        // Reanalysis-vs-rebuild split of the candidate scoring, from the
        // process-wide StructuralContext hooks: incremental replays are
        // the design invariant (never a full rebuild per candidate).
        si_obs::counter_add(
            "csc.context_reanalyses",
            (StructuralContext::incremental_count() - ctx_incr0) as u64,
        );
        si_obs::counter_add(
            "csc.context_rebuilds",
            (StructuralContext::build_count() - ctx_full0) as u64,
        );
    }
    ResolveOutcome { resolution, stats }
}

/// The configured insertion-signal name, uniquified against the input's
/// signals by a numeric suffix (`csc0` → `csc0_1`, `csc0_2`, … —
/// resolving an STG that already went through a resolution round must
/// not collide).
fn fresh_signal_name(stg: &Stg, base: &str) -> String {
    if stg.signal_by_name(base).is_none() {
        return base.to_string();
    }
    (1..)
        .map(|i| format!("{base}_{i}"))
        .find(|name| stg.signal_by_name(name).is_none())
        .expect("some suffixed name is free")
}

/// One candidate's scoring outcome: `Ok(Some)` on a structural survivor
/// with its cost, `Ok(None)` on a structural reject, `Err` on a panic
/// captured by the isolation boundary.
type EvalOutcome = Result<Option<(Stg, i64)>, String>;

/// Scores one batch of candidates, preserving input order. With the
/// `parallel` feature and `workers > 1` the batch is distributed over a
/// scoped std-thread pool; the per-slot results make the outcome
/// independent of scheduling.
///
/// Each candidate is scored inside a panic-isolation boundary
/// (`si_fault::run_isolated`): a panicking candidate yields `Err(message)`
/// in its slot — and, under the `failpoints` feature, hosts the
/// `csc::evaluate` injection site (value = in-batch candidate index) —
/// while the pool and every other candidate proceed normally.
fn evaluate_batch(
    base: &Stg,
    parent: &StructuralContext<'_>,
    trace: &RefinementTrace,
    name: &str,
    plans: &[InsertionPlan],
    workers: usize,
) -> Vec<EvalOutcome> {
    let eval_isolated = |i: usize| {
        si_fault::run_isolated(|| {
            si_fault::fail_point!("csc::evaluate", i);
            evaluate_one(base, parent, trace, name, &plans[i])
        })
    };
    #[cfg(feature = "parallel")]
    if workers > 1 && plans.len() > 1 {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<EvalOutcome>>> =
            plans.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers.min(plans.len()) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= plans.len() {
                        break;
                    }
                    *si_fault::relock(&slots[i]) = Some(eval_isolated(i));
                });
            }
        });
        return slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .expect("worker filled every slot")
            })
            .collect();
    }
    let _ = workers;
    (0..plans.len()).map(eval_isolated).collect()
}

/// Structural evaluation of one candidate: surgery, incremental
/// re-analysis, CSC pruning, cost. `None` when the candidate is rejected.
fn evaluate_one(
    base: &Stg,
    parent: &StructuralContext<'_>,
    trace: &RefinementTrace,
    name: &str,
    plan: &InsertionPlan,
) -> Option<(Stg, i64)> {
    let (candidate, map) = apply_insertion_mapped(base, name, plan);
    let cost = {
        let ctx = StructuralContext::build_incremental(parent, trace, &candidate, &map).ok()?;
        if !ctx.csc_holds() {
            return None;
        }
        cost_of(parent, &ctx, &map)
    };
    Some((candidate, cost))
}

/// The candidate cost model: estimated literal delta (place-cover cube
/// growth plus the literals of the new signal's excitation covers — the
/// logic the insertion adds) plus a penalty per concurrent place pair the
/// insertion serializes (lost concurrency is lost performance in the
/// implemented circuit).
fn cost_of(parent: &StructuralContext<'_>, ctx: &StructuralContext<'_>, map: &InsertionMap) -> i64 {
    const CONCURRENCY_PENALTY: i64 = 4;
    let cube_delta = ctx.total_cubes() as i64 - parent.total_cubes() as i64;
    let new_signal_literals =
        ctx.er_cover(map.rise).literal_count() + ctx.er_cover(map.fall).literal_count();
    let mut serialized = 0i64;
    let mapped: Vec<(PlaceId, PlaceId)> = map
        .place_to_new
        .iter()
        .enumerate()
        .filter_map(|(old, new)| new.map(|n| (PlaceId(old as u32), n)))
        .collect();
    for (i, &(old_p, new_p)) in mapped.iter().enumerate() {
        for &(old_q, new_q) in &mapped[i + 1..] {
            if parent.analysis.cr.places(old_p, old_q) && !ctx.analysis.cr.places(new_p, new_q) {
                serialized += 1;
            }
        }
    }
    cube_delta + new_signal_literals as i64 + CONCURRENCY_PENALTY * serialized
}

/// Does the behavioural oracle accept the candidate completely? Runs on
/// the candidate's own [`Engine`] session under `reach` (cap and shard
/// count): liveness, safeness, consistency, CSC and output
/// semimodularity.
fn oracle_accepts(stg: &Stg, reach: &ReachOptions) -> bool {
    let engine = Engine::new(stg).reach(reach.clone());
    let Ok(rg) = engine.reachability() else {
        return false;
    };
    if !rg.is_live(stg.net()) {
        return false;
    }
    let Ok(enc) = StateEncoding::compute(stg, rg) else {
        return false;
    };
    let coding = CodingAnalysis::compute(stg, rg, &enc);
    coding.has_csc() && semimodularity_violations(stg, rg).is_empty()
}

/// Searches for a single-signal insertion that resolves the CSC conflicts
/// of `stg` with the default options (greedy strategy, 1M-state oracle
/// cap). Returns the repaired STG and the plan, or `None` when no
/// candidate within `budget` works.
///
/// When the input already satisfies CSC it is returned unchanged together
/// with the no-op sentinel plan (`rise_split == fall_split == PlaceId(0)`,
/// no waits — impossible for a real insertion, whose split places always
/// differ).
pub fn resolve_csc(stg: &Stg, budget: usize) -> Option<(Stg, InsertionPlan)> {
    resolve_csc_with(stg, budget, ReachOptions::with_cap(1_000_000))
}

/// Like [`resolve_csc`] but with explicit [`ReachOptions`] for the
/// behavioural acceptance oracle: `reach.cap` bounds the candidate's state
/// space and `reach.shards > 1` runs the oracle's reachability build on
/// the sharded multi-threaded engine.
pub fn resolve_csc_with(
    stg: &Stg,
    budget: usize,
    reach: ReachOptions,
) -> Option<(Stg, InsertionPlan)> {
    resolve(stg, &CscOptions::default().budget(budget).reach(reach))
        .resolution
        .map(|r| (r.stg, r.plan))
}

/// The pre-subsystem blind search, kept verbatim as the equivalence
/// oracle and bench baseline: all ordered pairs of distinct simple places
/// under a budget, first without wait arcs, then with one wait arc from
/// every transition — each candidate paying a **full**
/// [`StructuralContext::build`] before the behavioural oracle.
pub fn resolve_csc_blind(
    stg: &Stg,
    budget: usize,
    reach: ReachOptions,
) -> Option<(Stg, InsertionPlan)> {
    if let Ok(ctx) = StructuralContext::build(stg) {
        if let Some(done) = no_conflict_resolution(stg, &ctx) {
            return Some(done);
        }
    }
    let net = stg.net();
    let splittable: Vec<PlaceId> = net
        .places()
        .filter(|&p| {
            net.pre_p(p).len() == 1
                && net.post_p(p).len() == 1
                && !net.initial_marking().get(p.index())
                && stg
                    .signal_kind(stg.signal_of(net.post_p(p)[0]))
                    .is_synthesized()
        })
        .collect();

    let mut tried = 0usize;
    // Pass 1: plain arc splits. Pass 2: with one wait arc.
    for with_waits in [false, true] {
        for &rise in &splittable {
            for &fall in &splittable {
                if rise == fall {
                    continue;
                }
                let wait_options: Vec<Vec<(TransId, bool)>> = if with_waits {
                    net.transitions()
                        .flat_map(|t| [vec![(t, true)], vec![(t, false)]])
                        .collect()
                } else {
                    vec![Vec::new()]
                };
                for rise_waits in wait_options {
                    // A wait from the transition x+ precedes is cyclic junk.
                    if rise_waits
                        .iter()
                        .any(|&(t, _)| t == net.post_p(rise)[0] || t == net.pre_p(rise)[0])
                    {
                        continue;
                    }
                    tried += 1;
                    if tried > budget {
                        return None;
                    }
                    let plan = InsertionPlan {
                        rise_split: rise,
                        fall_split: fall,
                        rise_waits,
                    };
                    let candidate = apply_insertion(stg, "csc0", &plan);
                    // Structural pruning — full rebuild per candidate.
                    let Ok(ctx) = StructuralContext::build(&candidate) else {
                        continue;
                    };
                    if matches!(ctx.csc_verdict(), CscVerdict::Unknown { .. }) {
                        continue;
                    }
                    // Behavioural acceptance.
                    if oracle_accepts(&candidate, &reach) {
                        return Some((candidate, plan));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vme_read_conflict_is_resolved_automatically() {
        let raw = si_stg::benchmarks::vme_read_raw();
        let (fixed, plan) = resolve_csc(&raw, 50_000).expect("resolvable");
        assert_eq!(fixed.signal_count(), raw.signal_count() + 1);
        // The repaired STG synthesizes and verifies.
        let syn = si_core::synthesize(&fixed, &si_core::SynthesisOptions::default())
            .expect("synthesizable");
        assert!(syn.literal_area > 0);
        let _ = plan;
    }

    #[test]
    fn csc_clean_stg_returned_unchanged() {
        let stg = si_stg::benchmarks::burst2();
        let (same, plan) = resolve_csc(&stg, 10).expect("already clean");
        assert_eq!(same.signal_count(), stg.signal_count());
        assert!(plan.rise_waits.is_empty());
    }

    #[test]
    fn apply_insertion_shapes_the_net() {
        let stg = si_stg::benchmarks::half_handshake();
        let net = stg.net();
        // split <a+,b+> for x+ and <a-,b-> for x-.
        let ap = stg.transition_by_display("a+").unwrap();
        let am = stg.transition_by_display("a-").unwrap();
        let rise = net.post_t(ap)[0];
        let fall = net.post_t(am)[0];
        let plan = InsertionPlan {
            rise_split: rise,
            fall_split: fall,
            rise_waits: Vec::new(),
        };
        let out = apply_insertion(&stg, "x", &plan);
        assert_eq!(out.signal_count(), stg.signal_count() + 1);
        assert_eq!(
            out.net().transition_count(),
            stg.net().transition_count() + 2
        );
        // behaviour stays live and consistent
        assert!(oracle_accepts(&out, &ReachOptions::with_cap(10_000)));
    }

    #[test]
    fn beam_strategy_resolves_vme_with_stats() {
        let raw = si_stg::benchmarks::vme_read_raw();
        let outcome = resolve(
            &raw,
            &CscOptions::default()
                .strategy(Strategy::Beam)
                .budget(50_000),
        );
        let resolution = outcome.resolution.expect("beam resolves the VME bus");
        assert_eq!(resolution.stg.signal_count(), raw.signal_count() + 1);
        assert!(outcome.stats.cores > 0);
        assert!(outcome.stats.evaluated > 0);
        assert!(outcome.stats.oracle_calls > 0);
        // Beam scores whole tiers (here every closer tier is barren, so
        // the full candidate space was scored before committing).
        assert!(outcome.stats.evaluated > 0);
        assert!(outcome.stats.evaluated <= outcome.stats.generated);
    }

    #[test]
    fn subsystem_and_blind_search_agree_on_resolvability() {
        for (stg, budget) in [
            (si_stg::benchmarks::vme_read_raw(), 50_000usize),
            (si_stg::benchmarks::burst2(), 100),
        ] {
            let reach = ReachOptions::with_cap(100_000);
            let blind = resolve_csc_blind(&stg, budget, reach.clone());
            let new = resolve_csc_with(&stg, budget, reach.clone());
            assert_eq!(blind.is_some(), new.is_some(), "{}", stg.name());
            if let (Some((b, _)), Some((n, _))) = (blind, new) {
                assert_eq!(b.signal_count(), n.signal_count(), "{}", stg.name());
                // Both picks must pass the full behavioural oracle.
                assert!(oracle_accepts(&b, &reach));
                assert!(oracle_accepts(&n, &reach));
            }
        }
    }

    #[test]
    fn parallel_scoring_is_deterministic() {
        let raw = si_stg::benchmarks::vme_read_raw();
        let base = resolve(&raw, &CscOptions::default().budget(50_000).workers(1));
        let multi = resolve(&raw, &CscOptions::default().budget(50_000).workers(4));
        let (a, b) = (base.resolution.unwrap(), multi.resolution.unwrap());
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.cost, b.cost);
        assert_eq!(si_stg::write_g(&a.stg), si_stg::write_g(&b.stg));
    }
}
