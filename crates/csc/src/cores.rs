//! Conflict-core extraction and targeted candidate generation.
//!
//! A **conflict core** is the structural obstruction behind an unresolved
//! CSC verdict: a preset place `p` of a synthesized transition `t` for
//! which no SM-component free of Theorem 14 witnesses exists — together
//! with the witness places `q` whose (refined) cover still intersects the
//! excitation cover `C(t)`. The refinement rounds of the
//! [`StructuralContext`] could not separate these ER/QR covers, so a state
//! signal must be inserted to tell the two regions apart.
//!
//! Because the separating signal has to flip *between* the core's regions,
//! useful insertion points cluster around the core in the net graph. The
//! candidate generator exploits that: it emits insertion plans in
//! expanding-radius tiers around the cores — nearest first — and only
//! degenerates to the full blind enumeration (the pre-subsystem search
//! space) in the last tier. At an unbounded budget it covers exactly the
//! old search space, just ordered by how likely a candidate is to break
//! a core; a finite budget is spent on the core-proximal subset first.

use si_core::{CscVerdict, StructuralContext};
use si_petri::{PlaceId, TransId};
use si_stg::InsertionPlan;
use std::collections::HashSet;

/// One structural CSC obstruction (Theorem 14): a preset place of a
/// synthesized transition that no witness-free SM-component covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictCore {
    /// The unresolved preset place `p`.
    pub place: PlaceId,
    /// The synthesized transitions `t` with `p ∈ •t` whose ER the
    /// refinement could not separate.
    pub transitions: Vec<TransId>,
    /// Witness places `q` (within the SM-cover components containing `p`)
    /// whose cover intersects some `C(t)`.
    pub witnesses: Vec<PlaceId>,
}

/// Extracts the conflict cores of a context whose CSC verdict is
/// [`CscVerdict::Unknown`]; empty when CSC already holds.
pub fn conflict_cores(ctx: &StructuralContext<'_>) -> Vec<ConflictCore> {
    let CscVerdict::Unknown { places } = ctx.csc_verdict() else {
        return Vec::new();
    };
    let stg = ctx.stg;
    let net = stg.net();
    places
        .into_iter()
        .map(|p| {
            let mut transitions = Vec::new();
            let mut witnesses = Vec::new();
            for &t in net.post_p(p) {
                if !stg.signal_kind(stg.signal_of(t)).is_synthesized() {
                    continue;
                }
                transitions.push(t);
                let er = ctx.er_cover(t);
                let sig = stg.signal_of(t);
                for sm in &ctx.sm_cover {
                    if !sm.contains_place(p) {
                        continue;
                    }
                    for &q in sm.places() {
                        if q == p {
                            continue;
                        }
                        // Same-signal-feeding places cannot witness
                        // (Theorem 14, condition 2).
                        if net.post_p(q).iter().any(|&u| stg.signal_of(u) == sig) {
                            continue;
                        }
                        if ctx.place_cover[q.index()].intersects(&er) {
                            witnesses.push(q);
                        }
                    }
                }
            }
            witnesses.sort_unstable();
            witnesses.dedup();
            ConflictCore {
                place: p,
                transitions,
                witnesses,
            }
        })
        .collect()
}

/// The places an insertion may split: simple (one producer, one consumer),
/// initially unmarked, and delaying only a synthesized transition —
/// inserting state signals in front of environment transitions would
/// change the interface contract (input properness).
fn splittable_places(ctx: &StructuralContext<'_>) -> Vec<PlaceId> {
    let stg = ctx.stg;
    let net = stg.net();
    net.places()
        .filter(|&p| {
            net.pre_p(p).len() == 1
                && net.post_p(p).len() == 1
                && !net.initial_marking().get(p.index())
                && stg
                    .signal_kind(stg.signal_of(net.post_p(p)[0]))
                    .is_synthesized()
        })
        .collect()
}

/// Undirected arc-hop distance from the core seed transitions to every
/// transition (`t → p → t'` counts one hop).
fn core_distances(ctx: &StructuralContext<'_>, cores: &[ConflictCore]) -> Vec<usize> {
    let net = ctx.stg.net();
    let nt = net.transition_count();
    let mut dist = vec![usize::MAX; nt];
    let mut frontier: Vec<TransId> = Vec::new();
    let seed = |t: TransId, dist: &mut Vec<usize>, frontier: &mut Vec<TransId>| {
        if dist[t.index()] == usize::MAX {
            dist[t.index()] = 0;
            frontier.push(t);
        }
    };
    for core in cores {
        for &t in &core.transitions {
            seed(t, &mut dist, &mut frontier);
        }
        for &p in std::iter::once(&core.place).chain(&core.witnesses) {
            for &t in net.pre_p(p).iter().chain(net.post_p(p)) {
                seed(t, &mut dist, &mut frontier);
            }
        }
    }
    while let Some(t) = frontier.pop() {
        let d = dist[t.index()] + 1;
        for &p in net.post_t(t).iter().chain(net.pre_t(t)) {
            for &u in net.post_p(p).iter().chain(net.pre_p(p)) {
                if dist[u.index()] > d {
                    dist[u.index()] = d;
                    frontier.push(u);
                }
            }
        }
    }
    dist
}

/// Generates insertion candidates targeted at breaking `cores`, as
/// expanding-radius tiers (deduplicated across tiers, at most `limit`
/// plans in total). The final tier is the full blind enumeration, so
/// with an unbounded `limit` the tiers together cover the exact search
/// space of [`crate::resolve_csc_blind`] — only ordered by core
/// proximity. Under a *finite* `limit` the generator spends the budget
/// on core-proximal plans first, which is a different (deliberately
/// better-ordered) budget subset than the blind search's place-id
/// order. The beam strategy consumes the tier structure (it ranks
/// within completed tiers); greedy just flattens it.
pub fn targeted_candidate_tiers(
    ctx: &StructuralContext<'_>,
    cores: &[ConflictCore],
    limit: usize,
) -> Vec<Vec<InsertionPlan>> {
    let net = ctx.stg.net();
    let splittable = splittable_places(ctx);
    let dist = core_distances(ctx, cores);
    let place_dist = |p: PlaceId| dist[net.pre_p(p)[0].index()].min(dist[net.post_p(p)[0].index()]);

    let mut tiers: Vec<Vec<InsertionPlan>> = Vec::new();
    let mut seen: HashSet<InsertionPlan> = HashSet::new();
    let mut total = 0usize;
    let mut emit = |plan: InsertionPlan, plans: &mut Vec<InsertionPlan>, total: &mut usize| {
        if seen.insert(plan.clone()) {
            plans.push(plan);
            *total += 1;
        }
    };

    'tiers: for radius in [1usize, 2, 3, usize::MAX] {
        let tier_places: Vec<PlaceId> = splittable
            .iter()
            .copied()
            .filter(|&p| radius == usize::MAX || place_dist(p) <= radius)
            .collect();
        let tier_waits: Vec<TransId> = net
            .transitions()
            .filter(|&t| radius == usize::MAX || dist[t.index()] <= radius)
            .collect();
        // Pass 1: plain arc splits. Pass 2: with one wait arc (marked and
        // unmarked variants) — the same shapes as the blind search.
        let mut tier = Vec::new();
        for with_waits in [false, true] {
            for &rise in &tier_places {
                for &fall in &tier_places {
                    if rise == fall {
                        continue;
                    }
                    let wait_options: Vec<Vec<(TransId, bool)>> = if with_waits {
                        tier_waits
                            .iter()
                            .flat_map(|&t| [vec![(t, true)], vec![(t, false)]])
                            .collect()
                    } else {
                        vec![Vec::new()]
                    };
                    for rise_waits in wait_options {
                        // A wait from the transitions x+ sits between is
                        // cyclic junk.
                        if rise_waits
                            .iter()
                            .any(|&(t, _)| t == net.post_p(rise)[0] || t == net.pre_p(rise)[0])
                        {
                            continue;
                        }
                        if total >= limit {
                            // Budget exhausted: stop enumerating instead of
                            // walking the remaining O(|P|²·|T|) shapes.
                            if !tier.is_empty() {
                                tiers.push(tier);
                            }
                            break 'tiers;
                        }
                        emit(
                            InsertionPlan {
                                rise_split: rise,
                                fall_split: fall,
                                rise_waits,
                            },
                            &mut tier,
                            &mut total,
                        );
                    }
                }
            }
        }
        if !tier.is_empty() {
            tiers.push(tier);
        }
    }
    tiers
}

/// The flattened form of [`targeted_candidate_tiers`].
pub fn targeted_candidates(
    ctx: &StructuralContext<'_>,
    cores: &[ConflictCore],
    limit: usize,
) -> Vec<InsertionPlan> {
    targeted_candidate_tiers(ctx, cores, limit)
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vme_cores_point_at_the_conflict() {
        let stg = si_stg::benchmarks::vme_read_raw();
        let ctx = StructuralContext::build(&stg).unwrap();
        let cores = conflict_cores(&ctx);
        assert!(!cores.is_empty());
        for core in &cores {
            assert!(!core.transitions.is_empty(), "core without transitions");
            assert!(!core.witnesses.is_empty(), "core without witnesses");
        }
    }

    #[test]
    fn clean_stg_has_no_cores() {
        let stg = si_stg::benchmarks::burst2();
        let ctx = StructuralContext::build(&stg).unwrap();
        assert!(conflict_cores(&ctx).is_empty());
    }

    #[test]
    fn targeted_candidates_are_tiered_and_complete() {
        let stg = si_stg::benchmarks::vme_read_raw();
        let ctx = StructuralContext::build(&stg).unwrap();
        let cores = conflict_cores(&ctx);
        let few = targeted_candidates(&ctx, &cores, 50);
        assert_eq!(few.len(), 50);
        // Unlimited generation reaches the blind search space: all ordered
        // pairs without waits appear somewhere.
        let all = targeted_candidates(&ctx, &cores, usize::MAX);
        let splittable = splittable_places(&ctx);
        let pair_count = splittable.len() * (splittable.len() - 1);
        let no_wait = all.iter().filter(|p| p.rise_waits.is_empty()).count();
        assert_eq!(no_wait, pair_count);
        // No duplicates.
        let set: HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }
}
