//! Bit-identity of the incremental re-analysis: for any STG and any
//! applicable insertion plan, `StructuralContext::build_incremental` after
//! `apply_insertion` must equal `StructuralContext::build` on the fresh
//! STG in every derived artifact — covers, refinement rounds, conflicts
//! and the CSC verdict. The incremental path may only be *faster*, never
//! different.

use proptest::prelude::*;
use si_core::{CscVerdict, StructuralContext};
use si_petri::{PlaceId, TransId};
use si_stg::{apply_insertion_mapped, InsertionPlan, Stg};

/// The places the resolve loop may split (same filter as the search).
fn splittable(stg: &Stg) -> Vec<PlaceId> {
    let net = stg.net();
    net.places()
        .filter(|&p| {
            net.pre_p(p).len() == 1
                && net.post_p(p).len() == 1
                && !net.initial_marking().get(p.index())
                && stg
                    .signal_kind(stg.signal_of(net.post_p(p)[0]))
                    .is_synthesized()
        })
        .collect()
}

/// A deterministic plan sample: all ordered pairs (capped), one wait
/// variant per pair drawn round-robin from the transitions.
fn plan_sample(stg: &Stg, cap: usize) -> Vec<InsertionPlan> {
    let net = stg.net();
    let places = splittable(stg);
    let nt = net.transition_count();
    let mut plans = Vec::new();
    let mut wait_seed = 0usize;
    'done: for (i, &rise) in places.iter().enumerate() {
        for &fall in &places {
            if rise == fall {
                continue;
            }
            plans.push(InsertionPlan {
                rise_split: rise,
                fall_split: fall,
                rise_waits: Vec::new(),
            });
            // One wait variant, skipping the cyclic-junk shapes.
            let w = TransId(((wait_seed + i) % nt) as u32);
            wait_seed += 1;
            if w != net.post_p(rise)[0] && w != net.pre_p(rise)[0] {
                plans.push(InsertionPlan {
                    rise_split: rise,
                    fall_split: fall,
                    rise_waits: vec![(w, wait_seed.is_multiple_of(2))],
                });
            }
            if plans.len() >= cap {
                break 'done;
            }
        }
    }
    plans
}

/// Asserts every observable artifact of the two contexts is identical.
fn assert_identical(
    name: &str,
    plan: &InsertionPlan,
    full: &StructuralContext,
    inc: &StructuralContext,
) {
    assert_eq!(
        full.refinement_rounds, inc.refinement_rounds,
        "{name} {plan:?}: refinement rounds differ"
    );
    assert_eq!(
        full.place_cover, inc.place_cover,
        "{name} {plan:?}: place covers differ"
    );
    assert_eq!(
        full.cubes.cubes, inc.cubes.cubes,
        "{name} {plan:?}: cover cubes differ"
    );
    assert_eq!(full.qps, inc.qps, "{name} {plan:?}: QPS differ");
    assert_eq!(
        full.sm_cover.len(),
        inc.sm_cover.len(),
        "{name} {plan:?}: SM-cover sizes differ"
    );
    for (a, b) in full.sm_cover.iter().zip(&inc.sm_cover) {
        assert_eq!(a.place_set(), b.place_set(), "{name} {plan:?}: SM differs");
    }
    assert_eq!(
        full.conflicts(),
        inc.conflicts(),
        "{name} {plan:?}: conflicts differ"
    );
    assert_eq!(
        full.csc_verdict(),
        inc.csc_verdict(),
        "{name} {plan:?}: verdict differs"
    );
}

/// Cross-checks one STG over a plan sample. Returns how many plans were
/// actually comparable (some candidates fail the structural preconditions
/// on both paths — that must agree too).
fn check_stg(stg: &Stg, cap: usize) -> usize {
    let (parent, trace) = match StructuralContext::build_traced(stg) {
        Ok(p) => p,
        Err(_) => return 0,
    };
    let mut compared = 0;
    for plan in plan_sample(stg, cap) {
        let (candidate, map) = apply_insertion_mapped(stg, "cscx", &plan);
        let full = StructuralContext::build(&candidate);
        let inc = StructuralContext::build_incremental(&parent, &trace, &candidate, &map);
        match (full, inc) {
            (Ok(full), Ok(inc)) => {
                assert_identical(stg.name(), &plan, &full, &inc);
                compared += 1;
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{} {plan:?}: errors differ", stg.name()),
            (a, b) => panic!(
                "{} {plan:?}: one path failed — full: {:?}, incremental: {:?}",
                stg.name(),
                a.err(),
                b.err()
            ),
        }
    }
    compared
}

#[test]
fn incremental_matches_full_rebuild_on_benchmarks() {
    let mut compared = 0;
    for stg in si_stg::benchmarks::synthesizable_suite() {
        compared += check_stg(&stg, 40);
    }
    compared += check_stg(&si_stg::benchmarks::vme_read_raw(), 60);
    assert!(compared > 100, "only {compared} candidates compared");
}

#[test]
fn incremental_matches_full_rebuild_on_generators() {
    let mut compared = 0;
    for stg in [
        si_stg::generators::vme_chain(2),
        si_stg::generators::vme_chain(5),
        si_stg::generators::clatch(4),
        si_stg::generators::burst(3),
        si_stg::generators::muller_pipeline(4),
        si_stg::generators::sequencer(4),
        si_stg::generators::selector(3),
    ] {
        compared += check_stg(&stg, 30);
    }
    assert!(compared > 60, "only {compared} candidates compared");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random plans over the conflicted scalable family: random split
    /// pairs, random wait sources, marked and unmarked.
    #[test]
    fn random_plans_on_vme_chain(
        n in 1usize..6,
        rise_seed in 0usize..1000,
        fall_seed in 0usize..1000,
        wait_seed in 0usize..1000,
        marked_seed in 0usize..2,
        with_wait_seed in 0usize..2,
    ) {
        let (marked, with_wait) = (marked_seed == 1, with_wait_seed == 1);
        let stg = si_stg::generators::vme_chain(n);
        let places = splittable(&stg);
        prop_assume!(places.len() >= 2);
        let rise = places[rise_seed % places.len()];
        let fall = places[fall_seed % places.len()];
        prop_assume!(rise != fall);
        let net = stg.net();
        let mut rise_waits = Vec::new();
        if with_wait {
            let w = TransId((wait_seed % net.transition_count()) as u32);
            prop_assume!(w != net.post_p(rise)[0] && w != net.pre_p(rise)[0]);
            rise_waits.push((w, marked));
        }
        let plan = InsertionPlan { rise_split: rise, fall_split: fall, rise_waits };
        let (parent, trace) = StructuralContext::build_traced(&stg).unwrap();
        let (candidate, map) = apply_insertion_mapped(&stg, "cscx", &plan);
        let full = StructuralContext::build(&candidate);
        let inc = StructuralContext::build_incremental(&parent, &trace, &candidate, &map);
        match (full, inc) {
            (Ok(full), Ok(inc)) => assert_identical(stg.name(), &plan, &full, &inc),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => panic!("one path failed: full {:?} vs inc {:?}", a.err(), b.err()),
        }
        // The verdict drives the pruning: spot-check it is CSC-meaningful.
        let _ = matches!(
            StructuralContext::build(&candidate).map(|c| c.csc_verdict()),
            Ok(CscVerdict::UscHolds) | Ok(CscVerdict::CscHolds) | Ok(CscVerdict::Unknown { .. }) | Err(_)
        );
    }
}
