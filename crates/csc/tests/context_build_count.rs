//! Pins the headline property of the CSC subsystem: the resolve loop
//! evaluates candidates through the **incremental** re-analysis path and
//! never pays a full `StructuralContext::build` per candidate.
//!
//! Deliberately a single-test binary — the build-count hooks are
//! process-wide (the same pattern as `tests/engine_build_count.rs` for
//! `ReachabilityGraph::build_count`), so no other test may run in this
//! process.

use si_core::StructuralContext;
use si_csc::CscOptions;

#[test]
fn resolve_loop_reanalyzes_instead_of_rebuilding() {
    let raw = si_stg::benchmarks::vme_read_raw();
    let full_before = StructuralContext::build_count();
    let inc_before = StructuralContext::incremental_count();

    let outcome = si_csc::resolve(&raw, &CscOptions::default().budget(50_000));
    assert!(outcome.resolution.is_some(), "VME must resolve");

    let full = StructuralContext::build_count() - full_before;
    let inc = StructuralContext::incremental_count() - inc_before;
    assert!(
        outcome.stats.evaluated >= 10,
        "expected a real candidate search, evaluated only {}",
        outcome.stats.evaluated
    );
    // Every candidate went through the incremental path …
    assert_eq!(
        inc, outcome.stats.evaluated,
        "every evaluated candidate must use build_incremental"
    );
    // … while the full analysis ran a constant number of times (the traced
    // parent build), independent of how many candidates were tried.
    assert!(
        full <= 2,
        "resolve must not rebuild the context per candidate \
         ({full} full builds for {} candidates)",
        outcome.stats.evaluated
    );
}
