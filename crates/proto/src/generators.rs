//! Scalable CFSM families for tests and benchmarks, next to the Petri
//! `clatch`/`vme_*` generators: three deadlock-free topologies (`ring`,
//! `pipeline`, `fork_join`) and the deliberately deadlocking `dining`.
//!
//! All generators zero-pad numeric suffixes so canonical (name-sorted)
//! order equals construction order, and every generated system passes
//! [`crate::ProtoSystem`] validation by construction.

use crate::model::{ChannelKind, ProtoSystem};

fn width(n: usize) -> usize {
    n.saturating_sub(1).max(1).to_string().len()
}

/// Token ring of `n` modules over buffered channels: module `i` receives
/// from its left neighbour and forwards to its right
/// (`wait --c(i-1)?--> hold --c(i)!--> wait`), with every even-indexed
/// module holding a token initially. Deadlock-free and live for any
/// `n >= 2`; the reachable state count grows combinatorially in `n`
/// (token placements over `2n` ring positions), which makes it the
/// scaling workload of the deadlock benchmarks.
///
/// # Panics
///
/// If `n < 2`.
pub fn ring(n: usize) -> ProtoSystem {
    assert!(n >= 2, "ring needs at least 2 modules");
    let w = width(n);
    let mut b = ProtoSystem::builder(format!("ring{n}"));
    let chans: Vec<_> = (0..n)
        .map(|i| b.channel(format!("c{i:0w$}"), ChannelKind::Buffered))
        .collect();
    for i in 0..n {
        let m = b.module(format!("m{i:0w$}"));
        // Even modules start holding a token; odd ones wait for one.
        if i % 2 == 0 {
            b.init(m, "hold");
        } else {
            b.init(m, "wait");
        }
        b.recv(m, "wait", "hold", chans[(i + n - 1) % n]);
        b.send(m, "hold", "wait", chans[i]);
    }
    b.build().expect("ring is valid by construction")
}

/// Producer → `n` stages → consumer over 1-bounded buffered channels:
/// the producer emits forever (`gen --c0!--> rest --tau--> gen`), each
/// stage forwards (`empty --c(i)?--> full --c(i+1)!--> empty`), the
/// consumer drains forever. Deadlock-free and live for any `n >= 1`.
///
/// # Panics
///
/// If `n < 1`.
pub fn pipeline(n: usize) -> ProtoSystem {
    assert!(n >= 1, "pipeline needs at least 1 stage");
    let w = width(n + 1);
    let mut b = ProtoSystem::builder(format!("pipeline{n}"));
    let chans: Vec<_> = (0..=n)
        .map(|i| b.channel(format!("c{i:0w$}"), ChannelKind::Buffered))
        .collect();
    let p = b.module("producer");
    b.init(p, "gen");
    b.send(p, "gen", "rest", chans[0]);
    b.tau(p, "rest", "gen");
    for i in 0..n {
        let m = b.module(format!("stage{i:0w$}"));
        b.init(m, "empty");
        b.recv(m, "empty", "full", chans[i]);
        b.send(m, "full", "empty", chans[i + 1]);
    }
    let c = b.module("consumer");
    b.init(c, "idle");
    b.recv(c, "idle", "sink", chans[n]);
    b.tau(c, "sink", "idle");
    b.build().expect("pipeline is valid by construction")
}

/// Master/worker fork-join: the master fire-and-forgets one job to each
/// of `n` workers over `async` channels, then joins on their buffered
/// `done` channels in order; workers are `idle --job?--> busy
/// --done!--> idle`. Terminates quietly (master halts with nothing
/// pending) — clean for any `n >= 1`, and exercises `async` semantics
/// without overflowing (each channel carries exactly one message).
///
/// # Panics
///
/// If `n < 1`.
pub fn fork_join(n: usize) -> ProtoSystem {
    assert!(n >= 1, "fork_join needs at least 1 worker");
    let w = width(n);
    let mut b = ProtoSystem::builder(format!("fork_join{n}"));
    let jobs: Vec<_> = (0..n)
        .map(|i| b.channel(format!("job{i:0w$}"), ChannelKind::Async))
        .collect();
    let dones: Vec<_> = (0..n)
        .map(|i| b.channel(format!("done{i:0w$}"), ChannelKind::Buffered))
        .collect();
    let m = b.module("master");
    b.init(m, "fork0");
    for (i, &job) in jobs.iter().enumerate() {
        let to = if i + 1 < n {
            format!("fork{}", i + 1)
        } else {
            "join0".to_string()
        };
        b.send(m, &format!("fork{i}"), &to, job);
    }
    for (i, &done) in dones.iter().enumerate() {
        let to = if i + 1 < n {
            format!("join{}", i + 1)
        } else {
            "finished".to_string()
        };
        b.recv(m, &format!("join{i}"), &to, done);
    }
    for i in 0..n {
        let wk = b.module(format!("worker{i:0w$}"));
        b.init(wk, "idle");
        b.recv(wk, "idle", "busy", jobs[i]);
        b.send(wk, "busy", "idle", dones[i]);
    }
    b.build().expect("fork_join is valid by construction")
}

/// Dining philosophers over rendezvous fork channels — the classic
/// **deliberately deadlocking** system. Philosopher `i` grabs its left
/// fork (`l(i)`, fork `i`), then its right (`r(i)`, fork `i+1 mod n`),
/// eats, and puts both back (a second rendezvous on each channel); a
/// fork alternates take/put on whichever side grabbed it. The
/// all-grabbed-left configuration is reachable in `n` steps and is a
/// global deadlock: every philosopher holds a send, no rendezvous can
/// fire.
///
/// # Panics
///
/// If `n < 2`.
pub fn dining(n: usize) -> ProtoSystem {
    assert!(n >= 2, "dining needs at least 2 philosophers");
    let w = width(n);
    let mut b = ProtoSystem::builder(format!("dining{n}"));
    // l[i]: philosopher i <-> fork i; r[i]: philosopher i <-> fork i+1.
    let l: Vec<_> = (0..n)
        .map(|i| b.channel(format!("l{i:0w$}"), ChannelKind::Rendezvous))
        .collect();
    let r: Vec<_> = (0..n)
        .map(|i| b.channel(format!("r{i:0w$}"), ChannelKind::Rendezvous))
        .collect();
    for i in 0..n {
        let p = b.module(format!("phil{i:0w$}"));
        b.init(p, "thinking");
        b.send(p, "thinking", "has_left", l[i]);
        b.send(p, "has_left", "eating", r[i]);
        b.send(p, "eating", "put_one", l[i]);
        b.send(p, "put_one", "thinking", r[i]);
    }
    for i in 0..n {
        let f = b.module(format!("fork{i:0w$}"));
        b.init(f, "free");
        // Taken by the left-hand philosopher (i) ...
        b.recv(f, "free", "busy_l", l[i]);
        b.recv(f, "busy_l", "free", l[i]);
        // ... or by the right-hand philosopher (i-1).
        b.recv(f, "free", "busy_r", r[(i + n - 1) % n]);
        b.recv(f, "busy_r", "free", r[(i + n - 1) % n]);
    }
    b.build().expect("dining is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_deadlock;
    use crate::parse::{parse_proto, write_proto};

    #[test]
    fn clean_families_are_clean() {
        for sys in [ring(5), pipeline(3), fork_join(3)] {
            let report = check_deadlock(&sys).unwrap();
            assert!(report.is_ok(), "{}: {:?}", sys.name(), report.violations);
            assert!(report.is_conclusive());
        }
    }

    #[test]
    fn dining_deadlocks_at_every_size() {
        for n in [2, 3, 5] {
            let report = check_deadlock(&dining(n)).unwrap();
            assert!(report.deadlocks() >= 1, "dining({n})");
            // Reaching the all-grabbed-left state takes at least one
            // take-left per philosopher.
            assert!(report.trace_labels.as_ref().unwrap().len() >= n);
        }
    }

    #[test]
    fn generators_round_trip_through_the_text_format() {
        for sys in [ring(4), pipeline(2), fork_join(2), dining(3)] {
            let text = write_proto(&sys);
            let again = parse_proto(&text).unwrap();
            assert_eq!(write_proto(&again), text, "{}", sys.name());
        }
    }

    #[test]
    fn ring_grows_combinatorially() {
        let small = check_deadlock(&ring(4)).unwrap().states_explored;
        let big = check_deadlock(&ring(8)).unwrap().states_explored;
        assert!(big > 4 * small, "ring(4)={small}, ring(8)={big}");
    }
}
