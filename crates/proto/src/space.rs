//! `ProtoSpace`: the product state space of a CFSM system as a
//! [`si_petri::space::StateSpace`], so the shared sequential and sharded
//! explorers (and their budgets, witnesses and partial verdicts) run
//! protocol deadlock detection unchanged.
//!
//! A product state packs, into `u64` words, each module's local control
//! state (a bit field sized to the module's state count, never straddling
//! a word boundary) and one pending-message bit per buffered/async
//! channel (rendezvous channels are stateless). The **global actions**
//! are enumerated once, in canonical order, as the space's labels:
//!
//! * `tau` moves and buffered sends/receives are one module's transition
//!   (a buffered send fills the channel slot and blocks while it is
//!   full; an `async` send instead reports an
//!   [`ProtoViolation::Overflow`] when the slot is full);
//! * a rendezvous send and each matching receive of the peer module fuse
//!   into a single combined label.
//!
//! Violations are judged per state by `inspect`:
//!
//! * [`ProtoViolation::Deadlock`] — no global action is enabled, yet a
//!   send is pending (some module sits in a state with an outgoing send,
//!   or a channel slot is full);
//! * [`ProtoViolation::DanglingSend`] — a channel slot is full but the
//!   receiver, from its current local state, cannot even *locally* reach
//!   a receive on that channel (a sound over-approximation: if the local
//!   control graph has no path to a receive, no global schedule has one);
//! * [`ProtoViolation::Overflow`] — an `async` send fired onto a full
//!   slot (reported on the edge; the overflowing send produces no
//!   successor, keeping the space finite).

use crate::model::{ActionKind, ChannelId, ChannelKind, ModuleId, ProtoSystem};
use si_fault::fail_point;
use si_petri::space::{SpaceVisitor, StateSpace, Verdict};
use std::fmt;

/// A protocol violation discovered in the product space.
///
/// Ordered (`Ord`) so violation lists can be sorted canonically,
/// independent of exploration order.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ProtoViolation {
    /// No global action is enabled but a send is pending: some module's
    /// current state has an outgoing send, or a channel slot is full.
    Deadlock,
    /// The channel's slot is full and the receiver can never consume it.
    DanglingSend {
        /// The channel whose message is stuck.
        channel: ChannelId,
    },
    /// An `async` send fired while the channel's 1-bounded slot was
    /// already full.
    Overflow {
        /// The overflowed channel.
        channel: ChannelId,
        /// The sending module.
        module: ModuleId,
    },
}

impl ProtoViolation {
    /// Stable kind tag for JSON output (`deadlock` / `dangling-send` /
    /// `overflow`).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtoViolation::Deadlock => "deadlock",
            ProtoViolation::DanglingSend { .. } => "dangling-send",
            ProtoViolation::Overflow { .. } => "overflow",
        }
    }

    /// Renders the violation with channel/module names from `sys`.
    pub fn render(&self, sys: &ProtoSystem) -> String {
        match *self {
            ProtoViolation::Deadlock => "deadlock: no action enabled, send pending".to_string(),
            ProtoViolation::DanglingSend { channel } => format!(
                "dangling send: message on {:?} can never be received by {:?}",
                sys.channel(channel).name,
                sys.module(sys.channel(channel).receiver).name
            ),
            ProtoViolation::Overflow { channel, module } => format!(
                "overflow: {:?} sent on {:?} while its 1-bounded slot was full",
                sys.module(module).name,
                sys.channel(channel).name
            ),
        }
    }
}

/// A decoded product state: per-module local states and per-channel
/// pending bits, in canonical (system) order. `Ord` so states sort
/// canonically by content, independent of interner ids.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalState {
    /// Local state of each module, indexed by [`ModuleId`].
    pub locals: Vec<u16>,
    /// Pending bit of each channel, indexed by [`ChannelId`]
    /// (always `false` for rendezvous channels).
    pub slots: Vec<bool>,
}

impl GlobalState {
    /// Renders `mod=state ... | chan=• ...` with names from `sys`
    /// (full slots only; `|` part omitted when no slot is full).
    pub fn render(&self, sys: &ProtoSystem) -> String {
        let mut s = String::new();
        for (m, &l) in sys.modules().iter().zip(&self.locals) {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&m.name);
            s.push('=');
            s.push_str(m.state_name(l));
        }
        let full: Vec<&str> = sys
            .channels()
            .iter()
            .zip(&self.slots)
            .filter(|&(_, &f)| f)
            .map(|(c, _)| c.name.as_str())
            .collect();
        if !full.is_empty() {
            s.push_str(" | pending: ");
            s.push_str(&full.join(" "));
        }
        s
    }
}

/// Location of one packed bit field.
#[derive(Copy, Clone, Debug)]
struct Field {
    word: usize,
    shift: u32,
    mask: u64,
}

impl Field {
    #[inline]
    fn get(&self, state: &[u64]) -> u64 {
        (state[self.word] >> self.shift) & self.mask
    }

    #[inline]
    fn set(&self, state: &mut [u64], v: u64) {
        debug_assert_eq!(v & !self.mask, 0);
        state[self.word] = (state[self.word] & !(self.mask << self.shift)) | (v << self.shift);
    }
}

/// One global action (= one explorer label).
#[derive(Copy, Clone, Debug)]
enum Action {
    /// `module`: `from -tau-> to`.
    Internal { module: u32, from: u16, to: u16 },
    /// Buffered/async send: fills the channel slot.
    Send {
        module: u32,
        from: u16,
        to: u16,
        chan: u32,
    },
    /// Buffered/async receive: drains the channel slot.
    Recv {
        module: u32,
        from: u16,
        to: u16,
        chan: u32,
    },
    /// Rendezvous: sender and receiver step together.
    Sync {
        chan: u32,
        s_from: u16,
        s_to: u16,
        r_from: u16,
        r_to: u16,
    },
}

/// The product state space of one [`ProtoSystem`].
pub struct ProtoSpace<'a> {
    sys: &'a ProtoSystem,
    words: usize,
    /// Packed control-state field of each module.
    module_fields: Vec<Field>,
    /// Packed pending bit of each slotted channel (`None` for sync).
    slot_fields: Vec<Option<Field>>,
    /// Canonical global action table; index = explorer label.
    actions: Vec<Action>,
    /// Rendered name of each action, for witnesses and JSON.
    action_names: Vec<String>,
    /// `has_send[m]` bit `s`: local state `s` of module `m` has an
    /// outgoing send transition.
    has_send: Vec<Vec<u64>>,
    /// `can_receive[c]` (slotted channels only) bit `s`: from local state
    /// `s`, the channel's receiver can locally reach a receive on `c`.
    can_receive: Vec<Option<Vec<u64>>>,
}

#[inline]
fn bit(set: &[u64], i: u16) -> bool {
    set[i as usize / 64] >> (i as usize % 64) & 1 != 0
}

#[inline]
fn set_bit(set: &mut [u64], i: u16) {
    set[i as usize / 64] |= 1 << (i as usize % 64);
}

impl<'a> ProtoSpace<'a> {
    /// Builds the product space of `sys`.
    pub fn new(sys: &'a ProtoSystem) -> Self {
        // Pack module fields then channel slots; a field never straddles
        // a word boundary (module widths are ≤ 16 bits).
        let mut cursor = 0usize;
        let mut module_fields = Vec::with_capacity(sys.modules().len());
        for m in sys.modules() {
            let n = m.states.len() as u64;
            let width = if n <= 1 {
                1
            } else {
                64 - (n - 1).leading_zeros()
            };
            if cursor % 64 + width as usize > 64 {
                cursor = (cursor / 64 + 1) * 64;
            }
            module_fields.push(Field {
                word: cursor / 64,
                shift: (cursor % 64) as u32,
                mask: (1u64 << width) - 1,
            });
            cursor += width as usize;
        }
        let mut slot_fields = Vec::with_capacity(sys.channels().len());
        for c in sys.channels() {
            if c.kind.has_slot() {
                slot_fields.push(Some(Field {
                    word: cursor / 64,
                    shift: (cursor % 64) as u32,
                    mask: 1,
                }));
                cursor += 1;
            } else {
                slot_fields.push(None);
            }
        }
        let words = cursor.div_ceil(64).max(1);

        // Canonical action table: modules ascending, transitions in their
        // (already canonical) order; a rendezvous send pairs with each
        // receive transition of the peer, in the peer's order.
        let mut actions = Vec::new();
        for (mi, m) in sys.modules().iter().enumerate() {
            for t in &m.transitions {
                match t.action {
                    ActionKind::Internal => actions.push(Action::Internal {
                        module: mi as u32,
                        from: t.from,
                        to: t.to,
                    }),
                    ActionKind::Send(c) => {
                        let ch = sys.channel(c);
                        if ch.kind == ChannelKind::Rendezvous {
                            let peer = sys.module(ch.receiver);
                            for rt in &peer.transitions {
                                if rt.action == ActionKind::Receive(c) {
                                    actions.push(Action::Sync {
                                        chan: c.0,
                                        s_from: t.from,
                                        s_to: t.to,
                                        r_from: rt.from,
                                        r_to: rt.to,
                                    });
                                }
                            }
                        } else {
                            actions.push(Action::Send {
                                module: mi as u32,
                                from: t.from,
                                to: t.to,
                                chan: c.0,
                            });
                        }
                    }
                    ActionKind::Receive(c) => {
                        // Rendezvous receives are folded into the send side.
                        if sys.channel(c).kind.has_slot() {
                            actions.push(Action::Recv {
                                module: mi as u32,
                                from: t.from,
                                to: t.to,
                                chan: c.0,
                            });
                        }
                    }
                }
            }
        }
        let action_names = actions
            .iter()
            .map(|a| match *a {
                Action::Internal { module, from, to } => {
                    let m = &sys.modules()[module as usize];
                    format!(
                        "{}: {} -> {} : tau",
                        m.name,
                        m.state_name(from),
                        m.state_name(to)
                    )
                }
                Action::Send {
                    module,
                    from,
                    to,
                    chan,
                } => {
                    let m = &sys.modules()[module as usize];
                    format!(
                        "{}: {} -> {} : {}!",
                        m.name,
                        m.state_name(from),
                        m.state_name(to),
                        sys.channels()[chan as usize].name
                    )
                }
                Action::Recv {
                    module,
                    from,
                    to,
                    chan,
                } => {
                    let m = &sys.modules()[module as usize];
                    format!(
                        "{}: {} -> {} : {}?",
                        m.name,
                        m.state_name(from),
                        m.state_name(to),
                        sys.channels()[chan as usize].name
                    )
                }
                Action::Sync {
                    chan,
                    s_from,
                    s_to,
                    r_from,
                    r_to,
                } => {
                    let ch = &sys.channels()[chan as usize];
                    let s = sys.module(ch.sender);
                    let r = sys.module(ch.receiver);
                    format!(
                        "{}: {}.{} -> {} | {}.{} -> {}",
                        ch.name,
                        s.name,
                        s.state_name(s_from),
                        s.state_name(s_to),
                        r.name,
                        r.state_name(r_from),
                        r.state_name(r_to)
                    )
                }
            })
            .collect();

        // has_send[m]: local states with an outgoing send.
        let has_send = sys
            .modules()
            .iter()
            .map(|m| {
                let mut set = vec![0u64; m.states.len().div_ceil(64)];
                for t in &m.transitions {
                    if matches!(t.action, ActionKind::Send(_)) {
                        set_bit(&mut set, t.from);
                    }
                }
                set
            })
            .collect();

        // can_receive[c]: backward closure, in the receiver's local
        // control graph, of the sources of its receives on c.
        let can_receive = sys
            .channels()
            .iter()
            .enumerate()
            .map(|(ci, ch)| {
                if !ch.kind.has_slot() {
                    return None;
                }
                let m = sys.module(ch.receiver);
                let mut set = vec![0u64; m.states.len().div_ceil(64)];
                for t in &m.transitions {
                    if t.action == ActionKind::Receive(ChannelId(ci as u32)) {
                        set_bit(&mut set, t.from);
                    }
                }
                loop {
                    let mut grew = false;
                    for t in &m.transitions {
                        if bit(&set, t.to) && !bit(&set, t.from) {
                            set_bit(&mut set, t.from);
                            grew = true;
                        }
                    }
                    if !grew {
                        break Some(set);
                    }
                }
            })
            .collect();

        ProtoSpace {
            sys,
            words,
            module_fields,
            slot_fields,
            actions,
            action_names,
            has_send,
            can_receive,
        }
    }

    /// The system this space was built from.
    pub fn system(&self) -> &'a ProtoSystem {
        self.sys
    }

    /// Number of global actions (= explorer labels).
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// Human-readable name of action `label`.
    ///
    /// # Panics
    ///
    /// If `label` is not a valid action index.
    pub fn action_name(&self, label: u32) -> &str {
        &self.action_names[label as usize]
    }

    #[inline]
    fn local(&self, state: &[u64], m: usize) -> u16 {
        self.module_fields[m].get(state) as u16
    }

    #[inline]
    fn slot(&self, state: &[u64], c: usize) -> bool {
        match &self.slot_fields[c] {
            Some(f) => f.get(state) != 0,
            None => false,
        }
    }

    /// Whether `action` is enabled at `state`. An `async` send counts as
    /// enabled whenever its source state does — firing onto a full slot
    /// is the overflow violation, not a blocked send.
    fn enabled(&self, state: &[u64], action: &Action) -> bool {
        match *action {
            Action::Internal { module, from, .. } => self.local(state, module as usize) == from,
            Action::Send {
                module, from, chan, ..
            } => {
                self.local(state, module as usize) == from
                    && (self.sys.channels()[chan as usize].kind == ChannelKind::Async
                        || !self.slot(state, chan as usize))
            }
            Action::Recv {
                module, from, chan, ..
            } => self.local(state, module as usize) == from && self.slot(state, chan as usize),
            Action::Sync {
                chan,
                s_from,
                r_from,
                ..
            } => {
                let ch = &self.sys.channels()[chan as usize];
                self.local(state, ch.sender.0 as usize) == s_from
                    && self.local(state, ch.receiver.0 as usize) == r_from
            }
        }
    }

    /// Applies `action` (assumed enabled) to `state` into `out`.
    /// Returns `false` for the async-overflow case: the violation is the
    /// caller's to report and there is no successor.
    fn apply(&self, state: &[u64], action: &Action, out: &mut [u64]) -> bool {
        out.copy_from_slice(state);
        match *action {
            Action::Internal { module, to, .. } => {
                self.module_fields[module as usize].set(out, to as u64);
            }
            Action::Send {
                module, to, chan, ..
            } => {
                if self.slot(state, chan as usize) {
                    return false; // async send onto a full slot: overflow
                }
                self.module_fields[module as usize].set(out, to as u64);
                self.slot_fields[chan as usize]
                    .as_ref()
                    .unwrap()
                    .set(out, 1);
            }
            Action::Recv {
                module, to, chan, ..
            } => {
                self.module_fields[module as usize].set(out, to as u64);
                self.slot_fields[chan as usize]
                    .as_ref()
                    .unwrap()
                    .set(out, 0);
            }
            Action::Sync {
                chan, s_to, r_to, ..
            } => {
                let ch = &self.sys.channels()[chan as usize];
                self.module_fields[ch.sender.0 as usize].set(out, s_to as u64);
                self.module_fields[ch.receiver.0 as usize].set(out, r_to as u64);
            }
        }
        true
    }

    /// Whether a send is pending at `state`: a full slot, or a module
    /// whose current local state has an outgoing send.
    fn send_pending(&self, state: &[u64]) -> bool {
        (0..self.sys.channels().len()).any(|c| self.slot(state, c))
            || (0..self.sys.modules().len()).any(|m| bit(&self.has_send[m], self.local(state, m)))
    }

    /// The violations `inspect` reports at `state` (deadlock, dangling
    /// sends), in canonical order.
    fn inspect_violations(&self, state: &[u64]) -> Vec<ProtoViolation> {
        let mut out = Vec::new();
        if !self.actions.iter().any(|a| self.enabled(state, a)) && self.send_pending(state) {
            out.push(ProtoViolation::Deadlock);
        }
        for (c, ch) in self.sys.channels().iter().enumerate() {
            if self.slot(state, c) {
                let can = self.can_receive[c].as_ref().unwrap();
                if !bit(can, self.local(state, ch.receiver.0 as usize)) {
                    out.push(ProtoViolation::DanglingSend {
                        channel: ChannelId(c as u32),
                    });
                }
            }
        }
        out
    }

    /// Every violation observable at `state`: the per-state ones
    /// (`inspect`'s deadlock / dangling sends) plus the overflows that
    /// expanding the state would report on its outgoing edges — for
    /// tests and witness rendering.
    pub fn violations_at(&self, state: &[u64]) -> Vec<ProtoViolation> {
        let mut out = self.inspect_violations(state);
        for action in &self.actions {
            if let Action::Send { module, chan, .. } = *action {
                if self.enabled(state, action) && self.slot(state, chan as usize) {
                    out.push(ProtoViolation::Overflow {
                        channel: ChannelId(chan),
                        module: ModuleId(module),
                    });
                }
            }
        }
        out.dedup();
        out
    }

    /// The enabled action labels at `state`, ascending.
    pub fn enabled_actions(&self, state: &[u64]) -> Vec<u32> {
        self.actions
            .iter()
            .enumerate()
            .filter(|(_, a)| self.enabled(state, a))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Decodes a packed state.
    pub fn decode(&self, state: &[u64]) -> GlobalState {
        GlobalState {
            locals: (0..self.sys.modules().len())
                .map(|m| self.local(state, m))
                .collect(),
            slots: (0..self.sys.channels().len())
                .map(|c| self.slot(state, c))
                .collect(),
        }
    }

    /// Replays an action-label sequence from the initial state; `None` if
    /// some label is invalid or not enabled where it fires (an async
    /// overflow is not a move, so it also replays to `None`).
    pub fn replay(&self, labels: &[u32]) -> Option<Vec<u64>> {
        let mut cur = self.initial();
        let mut next = vec![0u64; self.words];
        for &l in labels {
            let action = self.actions.get(l as usize)?;
            if !self.enabled(&cur, action) || !self.apply(&cur, action, &mut next) {
                return None;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        Some(cur)
    }
}

impl fmt::Debug for ProtoSpace<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProtoSpace({:?}, {} words, {} actions)",
            self.sys.name(),
            self.words,
            self.actions.len()
        )
    }
}

impl StateSpace for ProtoSpace<'_> {
    type Violation = ProtoViolation;

    fn words(&self) -> usize {
        self.words
    }

    fn initial(&self) -> Vec<u64> {
        // Canonical renumbering puts every module's initial state at
        // local id 0, and all slots start empty.
        vec![0u64; self.words]
    }

    fn inspect<Vis: SpaceVisitor<ProtoViolation>>(&self, state: &[u64], sink: &mut Vis) -> Verdict {
        let vs = self.inspect_violations(state);
        if vs.is_empty() {
            return Verdict::Continue;
        }
        for v in vs {
            sink.violation(v);
        }
        Verdict::Violation
    }

    fn for_each_successor<Vis: SpaceVisitor<ProtoViolation>>(
        &self,
        state: &[u64],
        scratch: &mut [u64],
        visit: &mut Vis,
    ) -> Result<(), ProtoViolation> {
        fail_point!("proto::step", state[0]);
        for (label, action) in self.actions.iter().enumerate() {
            if !self.enabled(state, action) {
                continue;
            }
            if self.apply(state, action, scratch) {
                if !visit.successor(label as u32, scratch) {
                    return Ok(());
                }
            } else if let Action::Send { module, chan, .. } = *action {
                visit.violation(ProtoViolation::Overflow {
                    channel: ChannelId(chan),
                    module: ModuleId(module),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_proto;
    use si_petri::space::{explore, ExploreOptions};

    fn space_of(text: &str) -> (ProtoSystem, usize) {
        let sys = parse_proto(text).unwrap();
        let n = {
            let space = ProtoSpace::new(&sys);
            let e = explore(&space, ExploreOptions::with_cap(100_000)).unwrap();
            e.states
        };
        (sys, n)
    }

    #[test]
    fn rendezvous_handshake_has_four_states() {
        // client: idle -req!-> waiting -ack?-> idle
        // server: idle -req?-> busy -ack!-> idle
        let text = "\
.channel req sync
.channel ack buf
.module client
idle -> waiting : req!
waiting -> idle : ack?
.module server
idle -> busy : req?
busy -> idle : ack!
";
        // (idle,idle,–) → (waiting,busy,–) → (waiting,idle,ack) → back.
        let (sys, n) = space_of(text);
        assert_eq!(n, 3);
        let space = ProtoSpace::new(&sys);
        let e = explore(&space, ExploreOptions::with_cap(1000)).unwrap();
        assert!(e.violations.is_empty());
    }

    #[test]
    fn buffered_send_blocks_and_async_overflows() {
        let blocked = "\
.channel c buf
.module tx
a -> b : c!
b -> a : c!
.module rx
x -> x : c?
";
        // tx can only re-send after rx drains: no overflow possible,
        // and every send is eventually consumable — no violations.
        let sys = parse_proto(blocked).unwrap();
        let space = ProtoSpace::new(&sys);
        let e = explore(&space, ExploreOptions::with_cap(1000)).unwrap();
        assert!(e.violations.is_empty());

        let overflow = "\
.channel c async
.module tx
a -> b : c!
b -> a : c!
.module rx
x -> x : c?
";
        let sys = parse_proto(overflow).unwrap();
        let space = ProtoSpace::new(&sys);
        let e = explore(&space, ExploreOptions::with_cap(1000)).unwrap();
        assert!(e
            .violations
            .iter()
            .any(|(_, v)| matches!(v, ProtoViolation::Overflow { .. })));
    }

    #[test]
    fn dangling_send_and_deadlock_are_flagged() {
        // rx consumes once then absorbs in y; the second pending message
        // dangles and tx blocks forever → dangling send + deadlock.
        let text = "\
.channel c buf
.module tx
a -> b : c!
b -> a : c!
.module rx
x -> y : c?
y -> y : tau
";
        let sys = parse_proto(text).unwrap();
        let space = ProtoSpace::new(&sys);
        let e = explore(&space, ExploreOptions::with_cap(1000).witness()).unwrap();
        let kinds: Vec<&str> = e.violations.iter().map(|(_, v)| v.kind()).collect();
        assert!(kinds.contains(&"dangling-send"), "kinds: {kinds:?}");
        // No deadlock here: rx's tau self-loop keeps an action enabled
        // forever. Check the witness instead: the dangling state replays.
        let (gid, _) = e
            .violations
            .iter()
            .find(|(_, v)| matches!(v, ProtoViolation::DanglingSend { .. }))
            .unwrap();
        let trace = e.witness(*gid);
        let replayed = space.replay(&trace).unwrap();
        assert_eq!(replayed, e.key(*gid).to_vec());
        assert!(!space.violations_at(&replayed).is_empty());
    }

    #[test]
    fn true_deadlock_without_self_loop() {
        // Like above but rx truly halts in y: slot stays full, tx blocked
        // in b, no action enabled anywhere, send pending → deadlock.
        let text = "\
.channel c buf
.module tx
a -> b : c!
b -> a : c!
.module rx
x -> y : c?
";
        let sys = parse_proto(text).unwrap();
        let space = ProtoSpace::new(&sys);
        let e = explore(&space, ExploreOptions::with_cap(1000)).unwrap();
        assert!(e
            .violations
            .iter()
            .any(|(_, v)| matches!(v, ProtoViolation::Deadlock)));
        assert!(e
            .violations
            .iter()
            .any(|(_, v)| matches!(v, ProtoViolation::DanglingSend { .. })));
    }

    #[test]
    fn quiet_termination_is_not_a_deadlock() {
        // One rendezvous then both modules halt: no send pending at the
        // final state, so no violation.
        let text = "\
.channel go sync
.module a
s -> t : go!
.module b
u -> v : go?
";
        let sys = parse_proto(text).unwrap();
        let space = ProtoSpace::new(&sys);
        let e = explore(&space, ExploreOptions::with_cap(1000)).unwrap();
        assert_eq!(e.states, 2);
        assert!(e.violations.is_empty());
    }

    #[test]
    fn decode_and_replay_round_trip() {
        let text = "\
.channel c buf
.module tx
a -> b : c!
.module rx
x -> y : c?
";
        let sys = parse_proto(text).unwrap();
        let space = ProtoSpace::new(&sys);
        let init = space.initial();
        let d = space.decode(&init);
        assert_eq!(d.locals, vec![0, 0]);
        assert_eq!(d.slots, vec![false]);
        let labels = space.enabled_actions(&init);
        assert_eq!(labels.len(), 1, "only the send is enabled initially");
        let after = space.replay(&labels).unwrap();
        let d = space.decode(&after);
        assert_eq!(d.slots, vec![true]);
        assert!(space.replay(&[99]).is_none());
        assert_eq!(d.render(&sys), "rx=x tx=b | pending: c");
    }
}
