//! The CFSM system model: named modules (communicating finite state
//! machines), named point-to-point channels, and the validated,
//! canonicalized [`ProtoSystem`] the rest of the crate works on.
//!
//! A system is a set of **modules**, each a finite automaton over named
//! control states whose transitions either *send* on a channel (`c!`),
//! *receive* from a channel (`c?`) or move *internally* (`tau`). Channels
//! are point-to-point and unit-message: every channel has exactly one
//! sending module and one (different) receiving module, and carries no
//! payload — protocol meaning lives in the module states (a fork that is
//! `free` interprets a message as *take*, one that is `held` as *put*).
//!
//! Three channel semantics are supported (see [`ChannelKind`]):
//! rendezvous, 1-bounded blocking buffer, and 1-bounded *overflow-checked*
//! asynchronous buffer.
//!
//! [`ProtoBuilder::build`] **validates** (unique names, point-to-point
//! channels with at least one send and one receive, non-empty modules) and
//! **canonicalizes**: channels and modules are sorted by name, each
//! module's states are renumbered initial-first-then-alphabetical and its
//! transitions sorted — so two systems that differ only in declaration
//! order are structurally identical, and [`crate::write_proto`] emits a
//! canonical text form.

use std::collections::HashMap;
use std::fmt;

/// Index of a module in [`ProtoSystem::modules`] (canonical order).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ModuleId(pub u32);

/// Index of a channel in [`ProtoSystem::channels`] (canonical order).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub u32);

/// Communication semantics of one channel.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ChannelKind {
    /// Rendezvous: a send and a matching receive fire as **one** product
    /// step; the channel itself holds no state.
    Rendezvous,
    /// 1-bounded blocking buffer: a send fills the slot (disabled while
    /// the slot is full), a receive drains it.
    Buffered,
    /// 1-bounded *overflow-checked* buffer: like [`Self::Buffered`], but a
    /// control-enabled send onto a full slot is reported as a
    /// [`crate::ProtoViolation::Overflow`] — the 1-bound doubles as a
    /// boundedness check for protocols that assume fire-and-forget sends.
    Async,
}

impl ChannelKind {
    /// The `.proto` keyword of this kind (`sync` / `buf` / `async`).
    pub fn as_str(self) -> &'static str {
        match self {
            ChannelKind::Rendezvous => "sync",
            ChannelKind::Buffered => "buf",
            ChannelKind::Async => "async",
        }
    }

    /// Parses a `.proto` kind keyword.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sync" => Some(ChannelKind::Rendezvous),
            "buf" => Some(ChannelKind::Buffered),
            "async" => Some(ChannelKind::Async),
            _ => None,
        }
    }

    /// Whether the channel owns a pending-message slot in the packed
    /// product state (rendezvous channels are stateless).
    pub fn has_slot(self) -> bool {
        self != ChannelKind::Rendezvous
    }
}

/// What one local transition does.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ActionKind {
    /// An internal (`tau`) move: always enabled at its source state.
    Internal,
    /// Send one message on the channel.
    Send(ChannelId),
    /// Receive one message from the channel.
    Receive(ChannelId),
}

/// One transition of a module's local automaton.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct LocalTransition {
    /// Source local state.
    pub from: u16,
    /// Target local state.
    pub to: u16,
    /// The action performed.
    pub action: ActionKind,
}

/// One communicating finite state machine.
#[derive(Clone, Debug)]
pub struct Module {
    /// Module name (unique in the system).
    pub name: String,
    /// State names; index = local state id. The initial state is id `0`
    /// (canonical renumbering puts it first).
    pub states: Vec<String>,
    /// Local transitions, canonically sorted by `(from, action, to)`.
    pub transitions: Vec<LocalTransition>,
}

impl Module {
    /// The name of local state `s`.
    pub fn state_name(&self, s: u16) -> &str {
        &self.states[s as usize]
    }
}

/// One point-to-point channel.
#[derive(Clone, Debug)]
pub struct Channel {
    /// Channel name (unique in the system).
    pub name: String,
    /// Communication semantics.
    pub kind: ChannelKind,
    /// The unique sending module.
    pub sender: ModuleId,
    /// The unique receiving module.
    pub receiver: ModuleId,
}

/// A validated, canonicalized system of CFSMs.
#[derive(Clone, Debug)]
pub struct ProtoSystem {
    name: String,
    modules: Vec<Module>,
    channels: Vec<Channel>,
}

impl ProtoSystem {
    /// Starts building a system.
    pub fn builder(name: impl Into<String>) -> ProtoBuilder {
        ProtoBuilder {
            name: name.into(),
            modules: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// System name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The modules, in canonical (name-sorted) order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The channels, in canonical (name-sorted) order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The module with id `m`.
    pub fn module(&self, m: ModuleId) -> &Module {
        &self.modules[m.0 as usize]
    }

    /// The channel with id `c`.
    pub fn channel(&self, c: ChannelId) -> &Channel {
        &self.channels[c.0 as usize]
    }

    /// Total number of local transitions across all modules.
    pub fn transition_count(&self) -> usize {
        self.modules.iter().map(|m| m.transitions.len()).sum()
    }
}

/// How building a [`ProtoSystem`] can fail validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// Two modules share a name.
    DuplicateModule(String),
    /// Two channels share a name.
    DuplicateChannel(String),
    /// The system has no modules.
    NoModules,
    /// A module has no states (and therefore no initial state).
    EmptyModule(String),
    /// A module exceeds the packed-state width (65535 local states).
    TooManyStates(String),
    /// Two different modules send on the channel.
    MultipleSenders {
        /// The channel.
        channel: String,
        /// The two offending modules.
        modules: (String, String),
    },
    /// Two different modules receive from the channel.
    MultipleReceivers {
        /// The channel.
        channel: String,
        /// The two offending modules.
        modules: (String, String),
    },
    /// No module ever sends on the channel.
    NoSender(String),
    /// No module ever receives from the channel.
    NoReceiver(String),
    /// A module both sends on and receives from the channel.
    SelfChannel {
        /// The channel.
        channel: String,
        /// The module on both ends.
        module: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateModule(m) => write!(f, "duplicate module {m:?}"),
            ModelError::DuplicateChannel(c) => write!(f, "duplicate channel {c:?}"),
            ModelError::NoModules => write!(f, "the system has no modules"),
            ModelError::EmptyModule(m) => write!(f, "module {m:?} has no states"),
            ModelError::TooManyStates(m) => {
                write!(f, "module {m:?} exceeds 65535 local states")
            }
            ModelError::MultipleSenders { channel, modules } => write!(
                f,
                "channel {channel:?} has two senders ({:?} and {:?}); channels are point-to-point",
                modules.0, modules.1
            ),
            ModelError::MultipleReceivers { channel, modules } => write!(
                f,
                "channel {channel:?} has two receivers ({:?} and {:?}); channels are point-to-point",
                modules.0, modules.1
            ),
            ModelError::NoSender(c) => write!(f, "no module sends on channel {c:?}"),
            ModelError::NoReceiver(c) => write!(f, "no module receives from channel {c:?}"),
            ModelError::SelfChannel { channel, module } => write!(
                f,
                "module {module:?} both sends on and receives from channel {channel:?}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// A module under construction.
struct BuildModule {
    name: String,
    /// State names in first-mention order; `init` indexes into it.
    states: Vec<String>,
    by_name: HashMap<String, u16>,
    init: Option<u16>,
    transitions: Vec<LocalTransition>,
}

impl BuildModule {
    fn state(&mut self, name: &str) -> u16 {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = self.states.len() as u16;
        self.states.push(name.to_string());
        self.by_name.insert(name.to_string(), s);
        s
    }
}

/// Accumulates modules, channels and transitions; [`Self::build`]
/// validates and canonicalizes. State names are interned on first use; the
/// initial state defaults to the first state mentioned in the module.
pub struct ProtoBuilder {
    name: String,
    modules: Vec<BuildModule>,
    channels: Vec<(String, ChannelKind)>,
}

impl fmt::Debug for ProtoBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProtoBuilder({:?}, {} modules, {} channels)",
            self.name,
            self.modules.len(),
            self.channels.len()
        )
    }
}

impl ProtoBuilder {
    /// Declares a channel. Redeclaring a name returns the existing id
    /// (the kind of the first declaration wins); duplicates with
    /// *different* kinds are caught by [`Self::build`] via the parser's
    /// own duplicate check — programmatic callers declare each once.
    pub fn channel(&mut self, name: impl Into<String>, kind: ChannelKind) -> ChannelId {
        let name = name.into();
        if let Some(i) = self.channels.iter().position(|(n, _)| *n == name) {
            return ChannelId(i as u32);
        }
        self.channels.push((name, kind));
        ChannelId(self.channels.len() as u32 - 1)
    }

    /// Opens a module; subsequent transition calls reference it by id.
    pub fn module(&mut self, name: impl Into<String>) -> ModuleId {
        self.modules.push(BuildModule {
            name: name.into(),
            states: Vec::new(),
            by_name: HashMap::new(),
            init: None,
            transitions: Vec::new(),
        });
        ModuleId(self.modules.len() as u32 - 1)
    }

    /// Sets (or creates) the module's initial state. Without this call the
    /// first state mentioned in the module is initial.
    pub fn init(&mut self, m: ModuleId, state: &str) {
        let bm = &mut self.modules[m.0 as usize];
        let s = bm.state(state);
        bm.init = Some(s);
    }

    fn transition(&mut self, m: ModuleId, from: &str, to: &str, action: ActionKind) {
        let bm = &mut self.modules[m.0 as usize];
        let from = bm.state(from);
        let to = bm.state(to);
        bm.transitions.push(LocalTransition { from, to, action });
    }

    /// Adds a send transition `from --c!--> to`.
    pub fn send(&mut self, m: ModuleId, from: &str, to: &str, c: ChannelId) {
        self.transition(m, from, to, ActionKind::Send(c));
    }

    /// Adds a receive transition `from --c?--> to`.
    pub fn recv(&mut self, m: ModuleId, from: &str, to: &str, c: ChannelId) {
        self.transition(m, from, to, ActionKind::Receive(c));
    }

    /// Adds an internal transition `from --tau--> to`.
    pub fn tau(&mut self, m: ModuleId, from: &str, to: &str) {
        self.transition(m, from, to, ActionKind::Internal);
    }

    /// Validates and canonicalizes into a [`ProtoSystem`].
    ///
    /// # Errors
    ///
    /// Any [`ModelError`]: duplicate names, empty system/modules, or a
    /// channel that is not point-to-point (exactly one sender module, one
    /// different receiver module, each with at least one transition).
    pub fn build(self) -> Result<ProtoSystem, ModelError> {
        if self.modules.is_empty() {
            return Err(ModelError::NoModules);
        }
        for (i, m) in self.modules.iter().enumerate() {
            if m.states.is_empty() {
                return Err(ModelError::EmptyModule(m.name.clone()));
            }
            if m.states.len() > u16::MAX as usize {
                return Err(ModelError::TooManyStates(m.name.clone()));
            }
            if self.modules[..i].iter().any(|o| o.name == m.name) {
                return Err(ModelError::DuplicateModule(m.name.clone()));
            }
        }
        for (i, (name, _)) in self.channels.iter().enumerate() {
            if self.channels[..i].iter().any(|(n, _)| n == name) {
                return Err(ModelError::DuplicateChannel(name.clone()));
            }
        }

        // Point-to-point validation: infer each channel's unique sender
        // and receiver from the transitions using it.
        let mut ends: Vec<(Option<usize>, Option<usize>)> = vec![(None, None); self.channels.len()];
        for (mi, m) in self.modules.iter().enumerate() {
            for t in &m.transitions {
                let (slot, c) = match t.action {
                    ActionKind::Send(c) => (0, c),
                    ActionKind::Receive(c) => (1, c),
                    ActionKind::Internal => continue,
                };
                let e = &mut ends[c.0 as usize];
                let end = if slot == 0 { &mut e.0 } else { &mut e.1 };
                match *end {
                    None => *end = Some(mi),
                    Some(prev) if prev != mi => {
                        let channel = self.channels[c.0 as usize].0.clone();
                        let modules = (
                            self.modules[prev].name.clone(),
                            self.modules[mi].name.clone(),
                        );
                        return Err(if slot == 0 {
                            ModelError::MultipleSenders { channel, modules }
                        } else {
                            ModelError::MultipleReceivers { channel, modules }
                        });
                    }
                    Some(_) => {}
                }
            }
        }
        let mut channel_ends = Vec::with_capacity(self.channels.len());
        for ((name, _), &(s, r)) in self.channels.iter().zip(&ends) {
            let s = s.ok_or_else(|| ModelError::NoSender(name.clone()))?;
            let r = r.ok_or_else(|| ModelError::NoReceiver(name.clone()))?;
            if s == r {
                return Err(ModelError::SelfChannel {
                    channel: name.clone(),
                    module: self.modules[s].name.clone(),
                });
            }
            channel_ends.push((s, r));
        }

        // Canonicalize: channels by name, modules by name, states
        // initial-first-then-alphabetical, transitions sorted.
        let mut chan_order: Vec<usize> = (0..self.channels.len()).collect();
        chan_order.sort_by(|&a, &b| self.channels[a].0.cmp(&self.channels[b].0));
        let mut chan_map = vec![ChannelId(0); self.channels.len()];
        for (new, &old) in chan_order.iter().enumerate() {
            chan_map[old] = ChannelId(new as u32);
        }
        let mut mod_order: Vec<usize> = (0..self.modules.len()).collect();
        mod_order.sort_by(|&a, &b| self.modules[a].name.cmp(&self.modules[b].name));
        let mut mod_map = vec![ModuleId(0); self.modules.len()];
        for (new, &old) in mod_order.iter().enumerate() {
            mod_map[old] = ModuleId(new as u32);
        }

        let modules = mod_order
            .iter()
            .map(|&oi| {
                let m = &self.modules[oi];
                let init = m.init.unwrap_or(0);
                let mut state_order: Vec<u16> = (0..m.states.len() as u16).collect();
                state_order.sort_by_key(|&s| {
                    (s != init, m.states[s as usize].clone()) // initial state first
                });
                let mut state_map = vec![0u16; m.states.len()];
                for (new, &old) in state_order.iter().enumerate() {
                    state_map[old as usize] = new as u16;
                }
                let remap_action = |a: ActionKind| match a {
                    ActionKind::Internal => ActionKind::Internal,
                    ActionKind::Send(c) => ActionKind::Send(chan_map[c.0 as usize]),
                    ActionKind::Receive(c) => ActionKind::Receive(chan_map[c.0 as usize]),
                };
                let mut transitions: Vec<LocalTransition> = m
                    .transitions
                    .iter()
                    .map(|t| LocalTransition {
                        from: state_map[t.from as usize],
                        to: state_map[t.to as usize],
                        action: remap_action(t.action),
                    })
                    .collect();
                transitions.sort();
                transitions.dedup();
                Module {
                    name: m.name.clone(),
                    states: state_order
                        .iter()
                        .map(|&s| m.states[s as usize].clone())
                        .collect(),
                    transitions,
                }
            })
            .collect();
        let channels = chan_order
            .iter()
            .map(|&oi| {
                let (s, r) = channel_ends[oi];
                Channel {
                    name: self.channels[oi].0.clone(),
                    kind: self.channels[oi].1,
                    sender: mod_map[s],
                    receiver: mod_map[r],
                }
            })
            .collect();
        Ok(ProtoSystem {
            name: self.name,
            modules,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ping --c!--> pong, pong --c?--> done.
    fn two_party(kind: ChannelKind) -> ProtoSystem {
        let mut b = ProtoSystem::builder("two");
        let c = b.channel("c", kind);
        let ping = b.module("ping");
        b.send(ping, "start", "sent", c);
        let pong = b.module("pong");
        b.recv(pong, "idle", "got", c);
        b.build().unwrap()
    }

    #[test]
    fn build_canonicalizes_names_and_states() {
        let sys = two_party(ChannelKind::Buffered);
        assert_eq!(sys.name(), "two");
        assert_eq!(sys.modules().len(), 2);
        assert_eq!(sys.modules()[0].name, "ping");
        assert_eq!(sys.modules()[1].name, "pong");
        // Initial state renumbered to 0 even though sorting would put
        // "got"/"sent" elsewhere.
        assert_eq!(sys.modules()[0].states, vec!["start", "sent"]);
        assert_eq!(sys.modules()[1].states, vec!["idle", "got"]);
        let c = &sys.channels()[0];
        assert_eq!(sys.module(c.sender).name, "ping");
        assert_eq!(sys.module(c.receiver).name, "pong");
    }

    #[test]
    fn declaration_order_does_not_matter() {
        let mut b = ProtoSystem::builder("two");
        let pong = b.module("pong");
        let ping = b.module("ping");
        let c = b.channel("c", ChannelKind::Buffered);
        b.recv(pong, "idle", "got", c);
        b.send(ping, "start", "sent", c);
        let sys = b.build().unwrap();
        let canon = two_party(ChannelKind::Buffered);
        assert_eq!(format!("{sys:?}"), format!("{canon:?}"));
    }

    #[test]
    fn point_to_point_is_enforced() {
        let mut b = ProtoSystem::builder("bad");
        let c = b.channel("c", ChannelKind::Buffered);
        let m0 = b.module("m0");
        b.send(m0, "a", "b", c);
        let m1 = b.module("m1");
        b.send(m1, "a", "b", c);
        let m2 = b.module("m2");
        b.recv(m2, "a", "b", c);
        assert!(matches!(b.build(), Err(ModelError::MultipleSenders { .. })));

        let mut b = ProtoSystem::builder("bad");
        let c = b.channel("c", ChannelKind::Buffered);
        let m0 = b.module("m0");
        b.send(m0, "a", "b", c);
        assert_eq!(b.build().unwrap_err(), ModelError::NoReceiver("c".into()));

        let mut b = ProtoSystem::builder("bad");
        let c = b.channel("c", ChannelKind::Buffered);
        let m0 = b.module("m0");
        b.send(m0, "a", "b", c);
        b.recv(m0, "b", "a", c);
        assert!(matches!(b.build(), Err(ModelError::SelfChannel { .. })));
    }

    #[test]
    fn empty_and_duplicate_shapes_are_rejected() {
        assert_eq!(
            ProtoSystem::builder("e").build().unwrap_err(),
            ModelError::NoModules
        );
        let mut b = ProtoSystem::builder("e");
        b.module("m");
        assert_eq!(b.build().unwrap_err(), ModelError::EmptyModule("m".into()));
        let mut b = ProtoSystem::builder("e");
        let m = b.module("m");
        b.tau(m, "a", "b");
        let m2 = b.module("m");
        b.tau(m2, "a", "b");
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::DuplicateModule("m".into())
        );
    }
}
