//! `si-proto`: a CFSM channel-protocol front end on the shared
//! state-space engine — parse or generate a system of communicating
//! finite state machines, build its product space as a
//! [`si_petri::space::StateSpace`], and detect global deadlocks,
//! dangling sends and channel overflows with replayable
//! action-sequence witnesses.
//!
//! The crate is the second user-facing workload of the engine (after
//! circuit synthesis/verification): the same sequential and sharded
//! explorers, budgets, partial verdicts and witness machinery run a
//! protocol product space they were never specialized for.
//!
//! ```text
//!  .proto text ──parse_proto──▶ ProtoSystem ──ProtoSpace::new──▶ StateSpace
//!  generators ─┘ (validated,     │                                  │
//!  ring/dining…   canonical)     │                        explore_with (seq
//!                                │                         or sharded, under
//!                                ▼                         a Budget)
//!                      check_deadlock[_with] ◀────────── Exploration
//!                                │                         (violations +
//!                                ▼                          witness parents)
//!                        DeadlockReport: canonical violations, action-
//!                        sequence trace, inconclusive tag on interruption
//! ```
//!
//! # Examples
//!
//! ```
//! use si_proto::{check_deadlock, dining, pipeline};
//!
//! let report = check_deadlock(&pipeline(4)).unwrap();
//! assert!(report.is_ok() && report.is_conclusive());
//!
//! let report = check_deadlock(&dining(3)).unwrap();
//! assert!(report.deadlocks() >= 1);
//! for step in report.trace.as_ref().unwrap() {
//!     println!("{step}"); // e.g. "l0: phil0.thinking -> has_left | fork0.free -> busy_l"
//! }
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod generators;
pub mod model;
pub mod parse;
pub mod space;

pub use check::{check_deadlock, check_deadlock_with, DeadlockReport, ProtoError, DEFAULT_CAP};
pub use generators::{dining, fork_join, pipeline, ring};
pub use model::{
    ActionKind, Channel, ChannelId, ChannelKind, LocalTransition, ModelError, Module, ModuleId,
    ProtoBuilder, ProtoSystem,
};
pub use parse::{parse_proto, write_proto, ParseError};
pub use space::{GlobalState, ProtoSpace, ProtoViolation};
