//! Text format for CFSM systems: `parse_proto` and the canonical
//! `write_proto` printer.
//!
//! The format is line-oriented, `#` starts a comment:
//!
//! ```text
//! .system handshake
//! .channel req sync          # sync | buf | async
//! .channel ack buf
//!
//! .module client
//! .init idle                 # optional; defaults to first state named
//! idle    -> waiting : req!
//! waiting -> idle    : ack?
//! .end                       # optional; next .module / EOF also closes
//!
//! .module server
//! idle -> busy : req?
//! busy -> idle : ack!
//! ```
//!
//! Transition lines read `FROM -> TO : LABEL` where `LABEL` is `CHAN!`
//! (send), `CHAN?` (receive) or `tau` (internal). Channels must be
//! declared with `.channel` before use. Parsing ends with
//! [`crate::ProtoSystem`] validation, so `parse_proto` only returns
//! systems the rest of the crate accepts, and
//! `parse_proto(&write_proto(&sys))` reproduces `sys` exactly.

use crate::model::{ActionKind, ChannelId, ChannelKind, ModelError, ProtoSystem};
use std::collections::HashMap;
use std::fmt;

/// A parse or validation failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-file validation errors).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

/// Parses the `.proto` text format into a validated [`ProtoSystem`].
///
/// # Errors
///
/// [`ParseError`] on malformed lines, undeclared channels, duplicate
/// declarations, or any [`ModelError`] from final validation.
pub fn parse_proto(text: &str) -> Result<ProtoSystem, ParseError> {
    let err = |line: usize, msg: String| Err(ParseError { line, msg });
    let mut name: Option<String> = None;
    let mut builder = ProtoSystem::builder("");
    let mut channels: HashMap<String, ChannelId> = HashMap::new();
    let mut current = None; // open module, if any
    let mut saw_module = false;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let head = words.next().unwrap();
        match head {
            ".system" => {
                let (Some(n), None) = (words.next(), words.next()) else {
                    return err(lineno, ".system takes exactly one name".into());
                };
                if name.is_some() {
                    return err(lineno, "duplicate .system directive".into());
                }
                if !ident_ok(n) {
                    return err(lineno, format!("invalid system name {n:?}"));
                }
                name = Some(n.to_string());
            }
            ".channel" => {
                let (Some(n), Some(k), None) = (words.next(), words.next(), words.next()) else {
                    return err(
                        lineno,
                        ".channel takes a name and a kind (sync|buf|async)".into(),
                    );
                };
                if !ident_ok(n) {
                    return err(lineno, format!("invalid channel name {n:?}"));
                }
                let Some(kind) = ChannelKind::parse(k) else {
                    return err(
                        lineno,
                        format!("unknown channel kind {k:?} (want sync|buf|async)"),
                    );
                };
                if channels.contains_key(n) {
                    return err(lineno, format!("duplicate channel {n:?}"));
                }
                channels.insert(n.to_string(), builder.channel(n, kind));
            }
            ".module" => {
                let (Some(n), None) = (words.next(), words.next()) else {
                    return err(lineno, ".module takes exactly one name".into());
                };
                if !ident_ok(n) {
                    return err(lineno, format!("invalid module name {n:?}"));
                }
                current = Some(builder.module(n));
                saw_module = true;
            }
            ".init" => {
                let (Some(s), None) = (words.next(), words.next()) else {
                    return err(lineno, ".init takes exactly one state name".into());
                };
                let Some(m) = current else {
                    return err(lineno, ".init outside a .module block".into());
                };
                if !ident_ok(s) {
                    return err(lineno, format!("invalid state name {s:?}"));
                }
                builder.init(m, s);
            }
            ".end" => {
                if words.next().is_some() {
                    return err(lineno, ".end takes no arguments".into());
                }
                if current.take().is_none() {
                    return err(lineno, ".end outside a .module block".into());
                }
            }
            _ if head.starts_with('.') => {
                return err(lineno, format!("unknown directive {head:?}"));
            }
            _ => {
                // FROM -> TO : LABEL
                let Some(m) = current else {
                    return err(lineno, "transition outside a .module block".into());
                };
                let rest: Vec<&str> = std::iter::once(head).chain(words).collect();
                let [from, arrow, to, colon, label] = rest[..] else {
                    return err(
                        lineno,
                        format!("expected `FROM -> TO : LABEL`, got {line:?}"),
                    );
                };
                if arrow != "->" || colon != ":" {
                    return err(
                        lineno,
                        format!("expected `FROM -> TO : LABEL`, got {line:?}"),
                    );
                }
                if !ident_ok(from) || !ident_ok(to) {
                    return err(lineno, format!("invalid state name in {line:?}"));
                }
                if label == "tau" {
                    builder.tau(m, from, to);
                } else if let Some(chan) = label.strip_suffix('!') {
                    let Some(&c) = channels.get(chan) else {
                        return err(lineno, format!("undeclared channel {chan:?}"));
                    };
                    builder.send(m, from, to, c);
                } else if let Some(chan) = label.strip_suffix('?') {
                    let Some(&c) = channels.get(chan) else {
                        return err(lineno, format!("undeclared channel {chan:?}"));
                    };
                    builder.recv(m, from, to, c);
                } else {
                    return err(
                        lineno,
                        format!("label {label:?} is not `CHAN!`, `CHAN?` or `tau`"),
                    );
                }
            }
        }
    }
    if !saw_module && name.is_none() && channels.is_empty() {
        return err(
            0,
            "empty input: no .system, .channel or .module directives".into(),
        );
    }
    let mut sys = builder.build()?;
    // `builder` was created with an empty name; splice in the declared one.
    if let Some(n) = name {
        sys = rename(sys, n);
    }
    Ok(sys)
}

/// Rebuilds `sys` under a different system name (the builder fixes the
/// name at creation; parsing learns it from `.system` mid-stream).
fn rename(sys: ProtoSystem, name: String) -> ProtoSystem {
    let mut b = ProtoSystem::builder(name);
    let chans: Vec<ChannelId> = sys
        .channels()
        .iter()
        .map(|c| b.channel(&c.name, c.kind))
        .collect();
    for m in sys.modules() {
        let id = b.module(&m.name);
        b.init(id, m.state_name(0));
        for t in &m.transitions {
            let from = m.state_name(t.from);
            let to = m.state_name(t.to);
            match t.action {
                ActionKind::Internal => b.tau(id, from, to),
                ActionKind::Send(c) => b.send(id, from, to, chans[c.0 as usize]),
                ActionKind::Receive(c) => b.recv(id, from, to, chans[c.0 as usize]),
            }
        }
    }
    b.build()
        .expect("renaming a valid system preserves validity")
}

/// Writes the canonical `.proto` text of a system; inverse of
/// [`parse_proto`] on valid systems.
pub fn write_proto(sys: &ProtoSystem) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if !sys.name().is_empty() {
        writeln!(out, ".system {}", sys.name()).unwrap();
    }
    for c in sys.channels() {
        writeln!(out, ".channel {} {}", c.name, c.kind.as_str()).unwrap();
    }
    for m in sys.modules() {
        writeln!(out).unwrap();
        writeln!(out, ".module {}", m.name).unwrap();
        writeln!(out, ".init {}", m.state_name(0)).unwrap();
        let wf = m.states.iter().map(|s| s.len()).max().unwrap_or(0);
        for t in &m.transitions {
            let label = match t.action {
                ActionKind::Internal => "tau".to_string(),
                ActionKind::Send(c) => format!("{}!", sys.channel(c).name),
                ActionKind::Receive(c) => format!("{}?", sys.channel(c).name),
            };
            writeln!(
                out,
                "{:wf$} -> {:wf$} : {}",
                m.state_name(t.from),
                m.state_name(t.to),
                label
            )
            .unwrap();
        }
        writeln!(out, ".end").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const HANDSHAKE: &str = "\
.system handshake
.channel req sync
.channel ack buf

.module client
.init idle
idle    -> waiting : req!   # kick off
waiting -> idle    : ack?
.end

.module server
idle -> busy : req?
busy -> idle : ack!
";

    #[test]
    fn parses_and_round_trips() {
        let sys = parse_proto(HANDSHAKE).unwrap();
        assert_eq!(sys.name(), "handshake");
        assert_eq!(sys.modules().len(), 2);
        assert_eq!(sys.channels().len(), 2);
        assert_eq!(sys.channels()[0].name, "ack"); // canonical: name-sorted
        let text = write_proto(&sys);
        let again = parse_proto(&text).unwrap();
        assert_eq!(write_proto(&again), text);
    }

    #[test]
    fn rejects_malformed_lines() {
        let e = parse_proto(".system a b\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_proto(".channel c maybe\n").unwrap_err();
        assert!(e.msg.contains("unknown channel kind"));
        let e = parse_proto(".module m\na => b : tau\n").unwrap_err();
        assert!(e.msg.contains("FROM -> TO : LABEL"));
        let e = parse_proto(".module m\na -> b : c!\n").unwrap_err();
        assert!(e.msg.contains("undeclared channel"));
        let e = parse_proto("a -> b : tau\n").unwrap_err();
        assert!(e.msg.contains("outside a .module"));
        let e = parse_proto("").unwrap_err();
        assert!(e.msg.contains("empty input"));
    }

    #[test]
    fn validation_errors_surface_with_line_zero() {
        let e = parse_proto(".module m\na -> b : tau\n").map(|_| ());
        // Valid lines, but no channels is fine — this one fails because
        // the builder is fine with it. Use a real validation failure:
        assert!(e.is_ok());
        let text = ".channel c buf\n.module m\na -> b : c!\nb -> a : c?\n";
        let e = parse_proto(text).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.msg.contains("both sends on and receives"));
    }
}
