//! One-shot deadlock checking: explore the product space (sequentially or
//! sharded), collect a canonical violation list, and extract a replayable
//! action-sequence witness for the first violation.
//!
//! [`check_deadlock`] / [`check_deadlock_with`] are the `Engine`-style
//! free functions behind `sisyn deadlock`. The returned
//! [`DeadlockReport`] is **shard-invariant**: violations are re-keyed by
//! decoded state content (interner ids differ across shard counts) and
//! sorted, so the report — verdict, counts, violation list and the
//! witness target — is bit-identical at any shard count, which the
//! property suite pins at 1/2/4/8 shards.

use crate::model::ProtoSystem;
use crate::space::{GlobalState, ProtoSpace, ProtoViolation};
use si_petri::space::{explore_with, ExploreError, ExploreOptions};
use si_petri::{Interrupt, ReachOptions};
use std::fmt;

/// Default state cap of the one-shot checkers (matches reachability).
pub const DEFAULT_CAP: usize = 4_000_000;

/// How a deadlock check can fail (as opposed to *finding* violations,
/// which is a successful check with a non-empty report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// A worker thread of the sharded explorer panicked; the panic was
    /// isolated at the worker boundary and the pool is intact.
    WorkerPanicked {
        /// Index of the shard whose worker panicked.
        shard: usize,
        /// The panic message.
        message: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::WorkerPanicked { shard, message } => {
                write!(f, "exploration worker {shard} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// One violation of the report, tagged with the decoded state it was
/// observed at.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ReportedViolation {
    /// The decoded product state (canonical content, not an interner id).
    pub state: GlobalState,
    /// The violation.
    pub violation: ProtoViolation,
}

/// Result of a deadlock check.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// All violations, sorted canonically by `(state, violation)` — the
    /// same list at any shard count.
    pub violations: Vec<ReportedViolation>,
    /// States explored.
    pub states_explored: usize,
    /// Witness for the canonically-first violation: the action-label
    /// sequence (indexes into the product space's action table) from the
    /// initial state to [`Self::violations`]`[0].state`. Replayable via
    /// [`ProtoSpace::replay`].
    pub trace_labels: Option<Vec<u32>>,
    /// [`Self::trace_labels`] rendered as action names.
    pub trace: Option<Vec<String>>,
    /// `Some` when the exploration was cut short by its budget: the
    /// report is *partial* — recorded violations are real, but a clean
    /// report is inconclusive.
    pub interrupted: Option<Interrupt>,
}

impl DeadlockReport {
    /// No violations found (possibly inconclusively — see
    /// [`Self::is_conclusive`]).
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the verdict is definitive: any violation is (it was
    /// reached), and a clean report is iff the exploration finished.
    pub fn is_conclusive(&self) -> bool {
        !self.violations.is_empty() || self.interrupted.is_none()
    }

    fn count(&self, kind: &str) -> usize {
        self.violations
            .iter()
            .filter(|v| v.violation.kind() == kind)
            .count()
    }

    /// Number of [`ProtoViolation::Deadlock`] violations.
    pub fn deadlocks(&self) -> usize {
        self.count("deadlock")
    }

    /// Number of [`ProtoViolation::DanglingSend`] violations.
    pub fn dangling_sends(&self) -> usize {
        self.count("dangling-send")
    }

    /// Number of [`ProtoViolation::Overflow`] violations.
    pub fn overflows(&self) -> usize {
        self.count("overflow")
    }
}

/// Checks `sys` for deadlocks, dangling sends and channel overflows with
/// the default cap, sequentially.
///
/// # Errors
///
/// [`ProtoError`] — see [`check_deadlock_with`].
pub fn check_deadlock(sys: &ProtoSystem) -> Result<DeadlockReport, ProtoError> {
    check_deadlock_with(sys, ReachOptions::with_cap(DEFAULT_CAP))
}

/// Checks `sys` under explicit resource options (budget, shard count).
///
/// The exploration is exhaustive (no early exit on first violation) so
/// the violation *set* is deterministic at any shard count; the report
/// then canonicalizes order by decoded state content.
///
/// # Errors
///
/// [`ProtoError::WorkerPanicked`] when a sharded worker panicked (the
/// panic is isolated; the process and thread pool are intact). The
/// product space has no fatal violations.
pub fn check_deadlock_with(
    sys: &ProtoSystem,
    reach: ReachOptions,
) -> Result<DeadlockReport, ProtoError> {
    let space = ProtoSpace::new(sys);
    let opts = ExploreOptions::from(reach).witness();
    let expl = explore_with(&space, opts).map_err(|e| match e {
        ExploreError::WorkerPanicked { shard, message } => {
            ProtoError::WorkerPanicked { shard, message }
        }
        // `ProtoSpace::for_each_successor` never returns `Err`.
        ExploreError::Fatal(v) => unreachable!("proto space has no fatal violations: {v:?}"),
    })?;

    // Re-key violations by decoded state content and sort: interner ids
    // are shard-dependent, the states themselves are not.
    let mut tagged: Vec<(ReportedViolation, u32)> = expl
        .violations
        .iter()
        .map(|&(gid, v)| {
            (
                ReportedViolation {
                    state: space.decode(expl.key(gid)),
                    violation: v,
                },
                gid,
            )
        })
        .collect();
    tagged.sort_by(|a, b| a.0.cmp(&b.0));
    tagged.dedup_by(|a, b| a.0 == b.0);

    let (trace_labels, trace) = match tagged.first() {
        Some(&(_, gid)) => {
            let labels = expl.witness(gid);
            let names = labels
                .iter()
                .map(|&l| space.action_name(l).to_string())
                .collect();
            (Some(labels), Some(names))
        }
        None => (None, None),
    };
    Ok(DeadlockReport {
        violations: tagged.into_iter().map(|(v, _)| v).collect(),
        states_explored: expl.states,
        trace_labels,
        trace,
        interrupted: expl.interrupt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{dining, pipeline};
    use si_petri::Budget;

    #[test]
    fn dining_three_deadlocks_with_replayable_witness() {
        let sys = dining(3);
        let report = check_deadlock(&sys).unwrap();
        assert!(!report.is_ok());
        assert!(report.is_conclusive());
        assert!(report.deadlocks() >= 1);
        let labels = report.trace_labels.as_ref().unwrap();
        // Reaching the deadlock takes at least one grab per philosopher.
        assert!(labels.len() >= 3);
        let space = ProtoSpace::new(&sys);
        let state = space.replay(labels).expect("witness replays");
        assert_eq!(space.decode(&state), report.violations[0].state);
        assert!(space
            .violations_at(&state)
            .contains(&report.violations[0].violation));
    }

    #[test]
    fn pipeline_four_is_clean_and_conclusive() {
        let report = check_deadlock(&pipeline(4)).unwrap();
        assert!(report.is_ok());
        assert!(report.is_conclusive());
        assert!(report.trace.is_none());
        assert!(report.states_explored > 4);
    }

    #[test]
    fn zero_deadline_is_inconclusive() {
        let sys = dining(6);
        let reach = ReachOptions::with_cap(DEFAULT_CAP)
            .budget(Budget::with_cap(DEFAULT_CAP).timeout(std::time::Duration::ZERO));
        let report = check_deadlock_with(&sys, reach).unwrap();
        assert!(report.interrupted.is_some());
        assert!(!report.is_conclusive() || !report.is_ok());
    }

    #[test]
    fn sharded_report_matches_sequential() {
        let sys = dining(4);
        let seq = check_deadlock(&sys).unwrap();
        for shards in [2, 4] {
            let mut reach = ReachOptions::with_cap(DEFAULT_CAP);
            reach.shards = shards;
            let sharded = check_deadlock_with(&sys, reach).unwrap();
            assert_eq!(sharded.violations, seq.violations, "shards={shards}");
            assert_eq!(sharded.states_explored, seq.states_explored);
            assert_eq!(sharded.is_ok(), seq.is_ok());
        }
    }
}
