//! Property suite pinning the protocol checker's shard invariance: the
//! deadlock report — verdict, canonically-sorted violation list and
//! explored-state count — must be **identical** at 1/2/4/8 shards, on
//! every generator family and on random CFSM systems, and every reported
//! witness must replay through [`ProtoSpace::replay`] to the state of
//! the canonically-first violation. The text format is pinned alongside:
//! `parse_proto(write_proto(sys))` reproduces the canonical form.

use proptest::prelude::*;
use si_petri::{Budget, ReachOptions};
use si_proto::{
    check_deadlock_with, dining, fork_join, parse_proto, pipeline, ring, write_proto, ChannelKind,
    DeadlockReport, ProtoSpace, ProtoSystem,
};

/// Cap far above every system this suite builds: explorations must
/// finish, because partial (interrupted) reports are not shard-portable.
const CAP: usize = 500_000;

fn check_at(sys: &ProtoSystem, shards: usize) -> DeadlockReport {
    let mut reach = ReachOptions::with_cap(CAP);
    reach.shards = shards;
    check_deadlock_with(sys, reach).expect("no worker panics")
}

/// The pinned property: sequential and sharded runs agree exactly, and
/// witnesses replay.
fn assert_shard_invariant(sys: &ProtoSystem) {
    let seq = check_at(sys, 1);
    assert!(
        seq.interrupted.is_none(),
        "{}: suite systems must fit the cap",
        sys.name()
    );
    let space = ProtoSpace::new(sys);
    for shards in [2usize, 4, 8] {
        let sh = check_at(sys, shards);
        assert_eq!(
            sh.violations,
            seq.violations,
            "{}: violation list at {shards} shards",
            sys.name()
        );
        assert_eq!(
            sh.states_explored,
            seq.states_explored,
            "{}: state count at {shards} shards",
            sys.name()
        );
        assert_eq!(sh.is_ok(), seq.is_ok());
        assert_eq!(sh.is_conclusive(), seq.is_conclusive());
        if let Some(labels) = &sh.trace_labels {
            let state = space.replay(labels).expect("witness must replay");
            assert_eq!(
                space.decode(&state),
                sh.violations[0].state,
                "{}: witness target at {shards} shards",
                sys.name()
            );
            assert!(space
                .violations_at(&state)
                .contains(&sh.violations[0].violation));
        }
    }
}

/// Round-trip through the text format reproduces the canonical form and
/// the same report.
fn assert_text_roundtrip(sys: &ProtoSystem) {
    let text = write_proto(sys);
    let again = parse_proto(&text).unwrap_or_else(|e| panic!("{}: reparse: {e}", sys.name()));
    assert_eq!(write_proto(&again), text, "{}: canonical form", sys.name());
    assert_eq!(
        check_at(&again, 1).violations,
        check_at(sys, 1).violations,
        "{}: report after round-trip",
        sys.name()
    );
}

#[test]
fn generator_families_are_shard_invariant() {
    for sys in [
        ring(2),
        ring(5),
        ring(8),
        pipeline(1),
        pipeline(4),
        fork_join(1),
        fork_join(3),
        dining(2),
        dining(3),
        dining(5),
    ] {
        assert_shard_invariant(&sys);
        assert_text_roundtrip(&sys);
    }
}

#[test]
fn zero_deadline_reports_inconclusive_at_any_shard_count() {
    let sys = dining(5);
    for shards in [1usize, 4] {
        let mut reach = ReachOptions::with_cap(CAP)
            .budget(Budget::with_cap(CAP).timeout(std::time::Duration::ZERO));
        reach.shards = shards;
        let report = check_deadlock_with(&sys, reach).expect("no worker panics");
        assert!(report.interrupted.is_some(), "shards={shards}");
        assert!(report.is_ok() || report.is_conclusive());
    }
}

// ---------------------------------------------------------------------
// Random CFSM systems.

/// Raw material of one random channel: endpoint picks, kind, and the
/// local states its mandatory send/receive connect.
type ChanSpec = (u8, u8, u8, u8, u8, u8, u8);
/// Raw material of one extra transition: module pick, action pick,
/// channel pick, from, to.
type ExtraSpec = (u8, u8, u8, u8, u8);

fn arb_system() -> impl Strategy<Value = ProtoSystem> {
    (
        2..5usize,                            // modules
        proptest::collection::vec(1..4u8, 4), // states per module
        proptest::collection::vec(
            (
                any::<u8>(),
                any::<u8>(),
                0..3u8,
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
            ),
            1..4,
        ),
        proptest::collection::vec(
            (any::<u8>(), 0..3u8, any::<u8>(), any::<u8>(), any::<u8>()),
            0..8,
        ),
    )
        .prop_map(|(nmod, nstates, chans, extras)| build_system(nmod, &nstates, &chans, &extras))
}

/// Deterministically builds a *valid* system from raw picks: every
/// channel gets distinct endpoints plus its mandatory send/receive pair,
/// extra transitions are kept only when the module is the right endpoint.
fn build_system(
    nmod: usize,
    nstates: &[u8],
    chans: &[ChanSpec],
    extras: &[ExtraSpec],
) -> ProtoSystem {
    let states = |m: usize| nstates[m % nstates.len()].max(1) as usize;
    let name_of = |s: u8, m: usize| format!("s{}", s as usize % states(m));
    let mut b = ProtoSystem::builder("random");
    let mods: Vec<_> = (0..nmod).map(|i| b.module(format!("m{i}"))).collect();
    for (i, &m) in mods.iter().enumerate() {
        b.init(m, "s0");
        // A tau cycle over all states keeps every module connected (and
        // every state meaningful) regardless of the random transitions.
        for s in 0..states(i) {
            b.tau(m, &format!("s{s}"), &format!("s{}", (s + 1) % states(i)));
        }
    }
    let mut ends = Vec::new();
    for (ci, &(sp, rp, kind, sf, st, rf, rt)) in chans.iter().enumerate() {
        let sender = sp as usize % nmod;
        let receiver = (sender + 1 + rp as usize % (nmod - 1)) % nmod;
        let kind = match kind {
            0 => ChannelKind::Rendezvous,
            1 => ChannelKind::Buffered,
            _ => ChannelKind::Async,
        };
        let c = b.channel(format!("c{ci}"), kind);
        b.send(mods[sender], &name_of(sf, sender), &name_of(st, sender), c);
        b.recv(
            mods[receiver],
            &name_of(rf, receiver),
            &name_of(rt, receiver),
            c,
        );
        ends.push((sender, receiver, c));
    }
    for &(mp, action, cp, f, t) in extras {
        let m = mp as usize % nmod;
        let (sender, receiver, c) = ends[cp as usize % ends.len()];
        match action {
            0 => b.tau(mods[m], &name_of(f, m), &name_of(t, m)),
            1 if m == sender => b.send(mods[m], &name_of(f, m), &name_of(t, m), c),
            2 if m == receiver => b.recv(mods[m], &name_of(f, m), &name_of(t, m), c),
            _ => {} // wrong endpoint: dropping keeps point-to-point validity
        }
    }
    b.build().expect("random systems are valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random CFSM systems: sharded reports are bit-identical to the
    /// sequential oracle and witnesses replay.
    #[test]
    fn random_systems_are_shard_invariant(sys in arb_system()) {
        assert_shard_invariant(&sys);
    }

    /// Random systems survive the canonical-text round trip.
    #[test]
    fn random_systems_round_trip(sys in arb_system()) {
        assert_text_roundtrip(&sys);
    }
}
