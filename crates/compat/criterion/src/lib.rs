//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *subset* of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated loop (warm-up, then enough iterations to fill a fixed
//! measurement window) reporting mean time per iteration on stdout.
//!
//! Smoke mode for CI: set `CRITERION_SMOKE=1` to run every benchmark body
//! exactly once, so `cargo bench` catches bitrot without burning minutes.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

fn smoke_mode() -> bool {
    std::env::var("CRITERION_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one("", id, 10, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples (kept for API compatibility;
    /// this implementation uses it to scale the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Measured mean time per iteration, filled by [`Bencher::iter`].
    mean: Option<Duration>,
    samples: usize,
}

impl Bencher {
    /// Measures `f`: warm-up, then a window of repeated timed batches.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        if smoke_mode() {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.mean = Some(t0.elapsed());
            return;
        }
        // Warm-up and calibration: find an iteration count that takes
        // roughly 10 ms per batch.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        let batches = self.samples.max(1);
        let mut total = Duration::ZERO;
        let mut iters = 0usize;
        for _ in 0..batches {
            let t = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            total += t.elapsed();
            iters += per_batch;
        }
        self.mean = Some(total / iters as u32);
    }
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean: None,
        samples,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match b.mean {
        Some(d) => println!("  {label}: {:.3} us/iter", d.as_secs_f64() * 1e6),
        None => println!("  {label}: no measurement (iter not called)"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_id_run() {
        std::env::set_var("CRITERION_SMOKE", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut hits = 0;
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        hits += 1;
        assert_eq!(hits, 1);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
