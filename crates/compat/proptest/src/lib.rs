//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *subset* of the proptest API its property tests use: the
//! [`Strategy`] trait with [`Strategy::prop_map`], integer-range / tuple /
//! [`Just`] / [`collection::vec`] / [`prop_oneof!`] strategies,
//! [`any`], and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros with [`ProptestConfig::with_cases`].
//!
//! Semantics: each test runs `cases` random inputs from a deterministic
//! per-test seed (override with `PROPTEST_SEED`). There is **no shrinking**;
//! on failure the panic message contains the case's seed so it can be
//! replayed.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy: always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among boxed alternative strategies (see [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as a vec-length specification.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy for vectors of `elem` values; see [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Non-panic outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case does not count.
    Reject,
    /// A `prop_assert*!` failed — the test fails with this message.
    Fail(String),
}

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Per-test base seed: `PROPTEST_SEED` env override or a stable hash of the
/// test name.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    // FNV-1a, stable across runs (DefaultHasher is randomized per process).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted = 0u32;
                let mut attempt = 0u32;
                while accepted < config.cases && attempt < config.cases.saturating_mul(10) {
                    let seed = base.wrapping_add(attempt as u64);
                    attempt += 1;
                    let mut __rng = $crate::TestRng::new(seed);
                    $(let $arg = ($strat).generate(&mut __rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed (seed {seed}): {msg}");
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside [`proptest!`], failing the case (not panicking
/// directly, so the runner can report the seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            *va == *vb,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), va, vb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(*va == *vb, $($fmt)+);
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..10u8, y in 0..64usize) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 64);
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec((0..5u8).prop_map(|x| x * 2), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x < 10));
        }

        #[test]
        fn oneof_and_just(z in prop_oneof![Just(1u8), Just(2u8)], b in any::<bool>()) {
            prop_assert!(z == 1u8 || z == 2u8);
            let _ = b;
        }

        #[test]
        fn assume_rejects(n in 0..100usize) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn exact_size_vec() {
        let s = crate::collection::vec(0..3u8, 6usize);
        let v = s.generate(&mut crate::TestRng::new(9));
        assert_eq!(v.len(), 6);
    }
}
