//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`], [`Rng::gen_range`]
//! and [`seq::SliceRandom::choose`]. The generator is splitmix64 — not
//! cryptographic, deterministic per seed, which is exactly what the
//! random-walk verifier needs (same-seed reproducibility is tested).

#![warn(missing_docs)]

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits -> uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Uniform sample from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for the test workloads this is used in.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard generator: splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn gen_bool_roughly_unbiased() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.as_slice().choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
