//! `sisyn` — structural synthesis of speed-independent circuits.
//!
//! Umbrella crate of the workspace reproducing Pastor, Cortadella,
//! Kondratyev and Roig, *“Structural Methods for the Synthesis of
//! Speed-Independent Circuits”* (IEEE TCAD 17(11), 1998; EDAC-ETC-EuroASIC
//! 1996). It re-exports the layered crates:
//!
//! * [`boolean`] — cube/cover algebra and two-level minimization;
//! * [`petri`] — Petri-net kernel, reachability, SM-covers, concurrency;
//! * [`stg`] — signal transition graphs, `.g` format, consistency,
//!   ground-truth oracles, benchmarks and generators;
//! * [`core`] — the structural synthesis flow (the paper's contribution)
//!   plus the state-based baseline and technology mapping;
//! * [`csc`] — the conflict-core CSC resolution subsystem (state-signal
//!   insertion with incremental re-analysis and parallel candidate
//!   search);
//! * [`proto`] — the CFSM channel-protocol front end (`sisyn deadlock`):
//!   parse or generate systems of communicating FSMs and detect global
//!   deadlocks, dangling sends and channel overflows on the shared
//!   state-space engine, with replayable action-sequence witnesses;
//! * [`verify`] — speed-independence verification;
//! * [`serve`] — the persistent synthesis service (`sisyn serve`): a
//!   socket server with a content-addressed artifact store, so repeated
//!   and incrementally edited specs reuse cached reachability summaries
//!   and per-signal covers.
//!
//! # Examples
//!
//! The pipeline API: one [`Engine`](crate::core::Engine) session per STG,
//! shared artifacts, the whole flow as methods:
//!
//! ```
//! use sisyn::prelude::*;
//!
//! // Parse an STG, synthesize it structurally, verify the result — the
//! // reachability graph behind `verify` is built once and cached.
//! let stg = sisyn::stg::generators::clatch(3);
//! let engine = Engine::new(&stg);
//! let syn = engine.synthesize()?;
//! assert!(engine.verify(&syn.circuit)?.is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use si_boolean as boolean;
pub use si_core as core;
pub use si_csc as csc;
pub use si_petri as petri;
pub use si_proto as proto;
pub use si_serve as serve;
pub use si_stg as stg;
pub use si_verify as verify;

/// The most common imports in one place.
pub mod prelude {
    pub use si_boolean::{Bits, Cover, Cube, Minimizer, MinimizerChoice};
    pub use si_core::{
        map_circuit, synthesize, synthesize_state_based, to_verilog, Analysis, Architecture,
        Backend, BaselineFlavor, Circuit, CscVerdict, Engine, ImplKind, MinimizeStages,
        StructuralContext, Synthesis, SynthesisOptions,
    };
    pub use si_csc::{
        resolve_csc, resolve_csc_with, CscOptions, EngineResolve, InsertionPlan, ResolveOutcome,
        ResolveStats, Strategy,
    };
    pub use si_petri::{
        check_live_safe_fc, Budget, CancelToken, Interrupt, InterruptReason, PetriNet, ReachError,
        ReachOptions, ReachabilityGraph,
    };
    pub use si_proto::{
        check_deadlock, check_deadlock_with, parse_proto, write_proto, DeadlockReport, ProtoError,
        ProtoSpace, ProtoSystem, ProtoViolation,
    };
    pub use si_stg::{parse_g, stg_to_dot, write_g, SignalKind, Stg, StgAnalysis};
    pub use si_verify::{
        check_conformance, check_conformance_with, random_walks, record_walk, verify_circuit,
        verify_circuit_on, verify_circuit_on_opts, verify_circuit_on_with, verify_circuit_with,
        ConformanceFailure, ConformanceReport, EngineVerify, VerificationReport, Violation,
    };
}
