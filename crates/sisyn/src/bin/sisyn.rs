//! `sisyn` — command-line front end for the structural synthesis library.
//!
//! ```text
//! sisyn check   SPEC.g               consistency / CSC / liveness report
//! sisyn synth   SPEC.g [options]     synthesize and print (or emit) the circuit
//! sisyn verify  SPEC.g [options]     synthesize then verify speed independence
//! sisyn resolve SPEC.g [-o OUT.g]    CSC resolution by state-signal insertion
//! sisyn dot     SPEC.g               Graphviz rendering of the STG
//! sisyn deadlock SPEC.proto          deadlock / dangling-send / overflow
//!                                    check of a CFSM channel protocol
//!                                    (see `sisyn::proto`); honours --cap,
//!                                    --shards, --timeout, --json and
//!                                    --backend explicit, with a replayable
//!                                    action-sequence counterexample on
//!                                    failure
//! sisyn serve   --socket PATH        persistent synthesis server: jobs over a
//!                                    Unix/TCP socket with a content-addressed
//!                                    artifact store (see `sisyn::serve`)
//! sisyn submit  --socket PATH OP SPEC.g   send one job to a running server
//!
//! options:
//!   -o FILE            write the main artifact (Verilog / .g / dot) to FILE
//!   --arch ARCH        complex | excitation | per-region   (default excitation)
//!   --stages N         minimization stage 0..4 or "full"    (default full)
//!   --minimizer M      two-level minimizer backend for the complex-gate
//!                      architecture and the state-based oracles:
//!                      espresso | exact | bdd | auto        (default espresso;
//!                      `auto` picks per signal by cover size and is never
//!                      worse in literals than espresso)
//!   --json             machine-readable JSON report on stdout for
//!                      synth / verify / resolve / deadlock (exit codes
//!                      unchanged; the artifact is only written when -o
//!                      is given)
//!   --waveform N       also print an N-step simulated waveform
//!   --cap N            state cap for every reachability-based oracle;
//!                      exceeding it fails fast with a StateCapExceeded
//!                      report that names this flag (pass a larger
//!                      `--cap N` to raise the cap) instead of hanging.
//!                      Per-command defaults when omitted: check 100000
//!                      (cheap count), verify 4000000 (one cached graph
//!                      serves the functional and conformance oracles),
//!                      resolve 1000000. NOTE for resolve: --cap and
//!                      --budget bound different things — --cap bounds
//!                      the state space of the behavioural *acceptance
//!                      oracle* run on each surviving candidate, while
//!                      --budget bounds the *candidate search* itself
//!                      (how many insertion plans may be structurally
//!                      evaluated). Raising --cap admits bigger
//!                      candidates; raising --budget searches longer.
//!   --shards N|auto    explore state spaces with N parallel shard
//!                      workers (see si-petri's generic sharded explorer;
//!                      N is rounded up to a power of two, max 64); `auto`
//!                      picks the hardware-thread count rounded down.
//!                      Applies to every traversal of the run: the
//!                      reachability build, the speed-independence
//!                      violation search and the spec×circuit conformance
//!                      product. Default 1 (sequential). Raising --cap on
//!                      a big net? Combine it with --shards to keep the
//!                      wall time down. When `verify` finds a violation
//!                      it prints (and emits in --json as "trace") a
//!                      firing-sequence counterexample leading to it.
//!   --budget N         resolve only: insertion-candidate search budget
//!                      (default 100000) — how many state-signal
//!                      insertions may be structurally evaluated,
//!                      distinct from the --cap that bounds each
//!                      candidate's acceptance oracle (see --cap)
//!   --strategy S       resolve only: candidate-selection strategy,
//!                      greedy | beam (default greedy). greedy accepts
//!                      the first oracle-approved candidate in
//!                      conflict-core proximity order; beam scores the
//!                      whole nearest candidate tier, ranks survivors by
//!                      the cost model (literal delta + concurrency
//!                      penalty) and oracles the best ones
//!   --backend B        check / verify only: which reachability backend
//!                      answers the state-space queries both can answer
//!                      (reachable-marking counts, exact CSC refinement of
//!                      an unknown structural verdict):
//!                      explicit | symbolic | auto   (default explicit).
//!                      `explicit` enumerates the interned state graph —
//!                      the oracle; `symbolic` computes the reachable set
//!                      as a BDD by image iteration, so counts and coding
//!                      verdicts keep working past the explicit --cap on
//!                      highly concurrent nets (the cap does not apply to
//!                      it; --timeout and Ctrl-C do); `auto` tries the
//!                      explicit explorer and falls back to symbolic when
//!                      the explicit run ends inconclusively. The
//!                      functional / conformance oracles of `verify`
//!                      always run on the explicit graph; with --json the
//!                      report carries "backend", "spec_states" and (for
//!                      symbolic) iteration statistics.
//!   --timeout DUR      wall-clock budget for the run's state-space
//!                      oracles (reachability, violation search,
//!                      conformance product, resolve's candidate search).
//!                      DUR is `500ms`, `2s`, `1m` or a plain number of
//!                      milliseconds. Past the deadline every traversal
//!                      winds down gracefully and the run reports a
//!                      *partial* verdict ("no violation in the N states
//!                      explored") with exit code 3 — inconclusive, not
//!                      failed. Ctrl-C (SIGINT) triggers the same graceful
//!                      wind-down via a cooperative cancellation token.
//! ```
//!
//! Exit codes: `0` success, `1` failure (violations found or a hard
//! error), `2` usage, `3` inconclusive (the budget — cap, deadline or
//! Ctrl-C — ran out before a definitive verdict; partial results are
//! still reported).
//!
//! Every command drives one [`Engine`] session, so oracles that need the
//! same artifact (the reachability graph, the structural context) compute
//! it once.

use sisyn::prelude::*;
use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

/// Exit code of an inconclusive run: the budget (state cap, `--timeout`
/// deadline or Ctrl-C) ran out before a definitive verdict.
const EXIT_INCONCLUSIVE: u8 = 3;

/// The process-wide cancellation token cancelled by SIGINT (Ctrl-C):
/// every oracle's budget carries a clone, so interrupting a long run
/// winds explorations down gracefully into partial verdicts instead of
/// killing the process mid-traversal.
static INTERRUPT: std::sync::OnceLock<CancelToken> = std::sync::OnceLock::new();

fn interrupt_token() -> &'static CancelToken {
    INTERRUPT.get_or_init(CancelToken::new)
}

/// Installs the SIGINT handler (Unix only; elsewhere Ctrl-C keeps its
/// default process-killing behaviour). The handler only flips the
/// token's atomic flag — async-signal-safe by construction (no
/// allocation, no locks; `main` initializes the token before installing).
#[cfg(unix)]
fn install_interrupt_handler() {
    extern "C" fn on_sigint(_sig: i32) {
        if let Some(token) = INTERRUPT.get() {
            token.cancel();
        }
    }
    const SIGINT: i32 = 2;
    extern "C" {
        // The C library's `signal(2)`: the environment has no `libc`
        // crate, so declare the one symbol needed directly.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    interrupt_token(); // initialize before the handler can observe it
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_interrupt_handler() {}

/// How `--profile` renders the collected profile at process exit.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ProfileFormat {
    /// Human-readable span tree + metrics on stderr (the default).
    Tree,
    /// The profile JSON object: spliced into the final `--json` report
    /// when one is emitted, printed alone on stdout otherwise.
    Json,
}

struct Args {
    command: String,
    input: String,
    output: Option<String>,
    arch: Architecture,
    stages: MinimizeStages,
    minimizer: MinimizerChoice,
    json: bool,
    waveform: Option<usize>,
    /// `--profile[=tree|json]`: turn the observability layer on and
    /// render the profile when the command finishes.
    profile: Option<ProfileFormat>,
    /// `--progress DUR`: periodic exploration heartbeats on stderr.
    progress: Option<Duration>,
    /// `--cap`: one explicit cap for every oracle; `None` keeps the
    /// per-command defaults.
    cap: Option<usize>,
    /// `--shards`: reachability shard workers (1 = sequential engine).
    shards: usize,
    /// `--budget`: candidate-search budget for `resolve`.
    budget: usize,
    /// `--strategy`: candidate-selection strategy for `resolve`.
    strategy: Strategy,
    /// `--timeout`: wall-clock budget for the run's state-space oracles.
    timeout: Option<Duration>,
    /// `--backend`: reachability backend for check/verify state queries.
    backend: Backend,
}

impl Args {
    /// The reachability options for an oracle whose default cap is
    /// `default_cap` (overridden by `--cap`), sharded per `--shards`,
    /// under the `--timeout` deadline and the SIGINT cancellation token.
    fn reach(&self, default_cap: usize) -> ReachOptions {
        let mut reach = ReachOptions::with_cap(self.cap.unwrap_or(default_cap))
            .shards(self.shards)
            .cancel(interrupt_token().clone());
        if let Some(d) = self.timeout {
            reach = reach.timeout(d);
        }
        reach
    }

    /// The synthesis options of this invocation.
    fn synthesis(&self) -> SynthesisOptions {
        SynthesisOptions {
            architecture: self.arch,
            stages: self.stages,
            minimizer: self.minimizer,
        }
    }

    /// The configured session over `stg`, with `default_cap` as the
    /// `--cap` fallback.
    fn engine<'a>(&self, stg: &'a Stg, default_cap: usize) -> Engine<'a> {
        Engine::new(stg)
            .reach(self.reach(default_cap))
            .options(self.synthesis())
            .backend(self.backend)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sisyn <check|synth|verify|resolve|deadlock|dot|serve|submit> SPEC.g|SPEC.proto \
         [-o FILE] [--arch complex|excitation|per-region] [--stages 0..4|full] \
         [--minimizer espresso|exact|bdd|auto] [--json] [--waveform N] \
         [--cap N] [--shards N|auto] [--budget N] [--strategy greedy|beam] \
         [--timeout DUR] [--backend explicit|symbolic|auto] \
         [--profile[=tree|json]] [--progress DUR]"
    );
    ExitCode::from(2)
}

/// Parses a `--timeout` duration: `500ms`, `2s`, `1m` or a plain number
/// of milliseconds.
fn parse_duration(s: &str) -> Option<Duration> {
    let digits = s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    let (num, unit) = s.split_at(digits);
    let n: u64 = num.parse().ok()?;
    match unit {
        "" | "ms" => Some(Duration::from_millis(n)),
        "s" => Some(Duration::from_secs(n)),
        "m" => Some(Duration::from_secs(n.checked_mul(60)?)),
        _ => None,
    }
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut input = None;
    let mut output = None;
    let mut arch = Architecture::ExcitationFunction;
    let mut stages = MinimizeStages::full();
    let mut minimizer = MinimizerChoice::Espresso;
    let mut json = false;
    let mut waveform = None;
    let mut cap = None;
    let mut shards = 1usize;
    let mut budget = 100_000usize;
    let mut strategy = Strategy::Greedy;
    let mut timeout = None;
    let mut backend = Backend::Explicit;
    let mut profile = None;
    let mut progress = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--profile" | "--profile=tree" => profile = Some(ProfileFormat::Tree),
            "--profile=json" => profile = Some(ProfileFormat::Json),
            "--progress" => {
                let v = argv.next().ok_or_else(usage)?;
                progress = Some(parse_duration(&v).ok_or_else(|| {
                    eprintln!("bad --progress {v:?} (expected e.g. 500ms, 2s, 1m)");
                    usage()
                })?);
            }
            "-o" => output = Some(argv.next().ok_or_else(usage)?),
            "--arch" => {
                arch = match argv.next().ok_or_else(usage)?.as_str() {
                    "complex" => Architecture::ComplexGate,
                    "excitation" => Architecture::ExcitationFunction,
                    "per-region" => Architecture::PerRegion,
                    other => {
                        eprintln!("unknown architecture {other:?}");
                        return Err(usage());
                    }
                }
            }
            "--stages" => {
                let v = argv.next().ok_or_else(usage)?;
                stages = match v.as_str() {
                    "full" => MinimizeStages::full(),
                    "none" => MinimizeStages::none(),
                    n => MinimizeStages::stage(n.parse().map_err(|_| usage())?),
                }
            }
            "--minimizer" => {
                minimizer = argv.next().ok_or_else(usage)?.parse().map_err(|e| {
                    eprintln!("{e}");
                    usage()
                })?;
            }
            "--json" => json = true,
            "--waveform" => {
                waveform = Some(
                    argv.next()
                        .ok_or_else(usage)?
                        .parse()
                        .map_err(|_| usage())?,
                )
            }
            "--cap" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    eprintln!("--cap must be positive");
                    return Err(usage());
                }
                cap = Some(n);
            }
            "--shards" => {
                let v = argv.next().ok_or_else(usage)?;
                shards = if v == "auto" {
                    ReachOptions::auto(1).shards
                } else {
                    let n: usize = v.parse().map_err(|_| usage())?;
                    if n == 0 {
                        eprintln!("--shards must be positive (or `auto`)");
                        return Err(usage());
                    }
                    n
                };
            }
            "--budget" => {
                budget = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
            }
            "--strategy" => {
                strategy = argv.next().ok_or_else(usage)?.parse().map_err(|e| {
                    eprintln!("{e}");
                    usage()
                })?;
            }
            "--timeout" => {
                let v = argv.next().ok_or_else(usage)?;
                timeout = Some(parse_duration(&v).ok_or_else(|| {
                    eprintln!("bad --timeout {v:?} (expected e.g. 500ms, 2s, 1m)");
                    usage()
                })?);
            }
            "--backend" => {
                let v = argv.next().ok_or_else(usage)?;
                backend = Backend::parse(&v).ok_or_else(|| {
                    eprintln!("unknown backend {v:?} (expected explicit, symbolic or auto)");
                    usage()
                })?;
            }
            _ if input.is_none() => input = Some(a),
            other => {
                eprintln!("unexpected argument {other:?}");
                return Err(usage());
            }
        }
    }
    Ok(Args {
        command,
        input: input.ok_or_else(usage)?,
        output,
        arch,
        stages,
        minimizer,
        json,
        waveform,
        cap,
        shards,
        budget,
        strategy,
        timeout,
        backend,
        profile,
        progress,
    })
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        Ok(s)
    } else {
        std::fs::read_to_string(path)
    }
}

/// Writes `content` to `-o FILE`, or to stdout when no file was given and
/// plain-text mode is on (`--json` owns stdout otherwise).
fn emit(args: &Args, content: &str) -> std::io::Result<()> {
    match &args.output {
        Some(path) => std::fs::write(path, content),
        None if !args.json => {
            print!("{content}");
            Ok(())
        }
        None => Ok(()),
    }
}

/// The stable CLI identifier of an architecture — the same vocabulary
/// `--arch` accepts, so JSON reports round-trip into reproduction
/// commands.
fn arch_name(arch: Architecture) -> &'static str {
    match arch {
        Architecture::ComplexGate => "complex",
        Architecture::ExcitationFunction => "excitation",
        Architecture::PerRegion => "per-region",
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A structured `--json` error object: a stable machine-readable kind, a
/// human-readable detail, and how far the exploration got before
/// stopping (0 when no state space was involved).
fn error_json(kind: &str, detail: &str, states_explored: usize) -> String {
    format!(
        "{{\"kind\": {}, \"detail\": {}, \"states_explored\": {}}}",
        json_str(kind),
        json_str(detail),
        states_explored
    )
}

/// The structured error object of a [`ReachError`]. The kind vocabulary
/// matches [`InterruptReason`]'s stable identifiers (`cap-exceeded`,
/// `deadline-expired`, `cancelled`, `memory-exhausted`) plus `not-safe`
/// and `worker-panicked`.
fn reach_error_json(e: &ReachError) -> String {
    let (kind, states, elapsed_ms) = match e {
        ReachError::StateCapExceeded { cap } => (InterruptReason::CapExceeded.as_str(), *cap, 0),
        ReachError::Interrupted {
            reason,
            states_explored,
            elapsed_ms,
        } => (reason.as_str(), *states_explored, *elapsed_ms),
        ReachError::WorkerPanicked { .. } => ("worker-panicked", 0, 0),
        ReachError::NotSafe { .. } => ("not-safe", 0, 0),
    };
    format!(
        "{{\"kind\": {}, \"detail\": {}, \"states_explored\": {}, \"elapsed_ms\": {}}}",
        json_str(kind),
        json_str(&e.to_string()),
        states,
        elapsed_ms
    )
}

/// Prints a command's final `--json` report object to stdout. Under
/// `--profile=json` the collected profile is spliced into the object as
/// a `"profile"` key — the report is the last thing a command prints, so
/// every phase span below the CLI's own has closed by then.
fn print_json(args: &Args, body: &str) {
    let body = body.trim_end();
    if args.profile == Some(ProfileFormat::Json) && body.ends_with('}') {
        println!(
            "{}, \"profile\": {}}}",
            &body[..body.len() - 1],
            si_obs::render_json()
        );
    } else {
        println!("{body}");
    }
}

/// Exit code for a [`ReachError`]: inconclusive budget exhaustion gets
/// its own code so scripts can tell "the circuit is broken" from "the
/// analysis ran out of budget".
fn reach_error_exit(e: &ReachError) -> ExitCode {
    if e.is_inconclusive() {
        ExitCode::from(EXIT_INCONCLUSIVE)
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    install_interrupt_handler();
    // The serve/submit subcommands own their flag vocabulary (socket
    // endpoints, store sizing) — dispatch before the generic parser.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => {
            return ExitCode::from(sisyn::serve::cli::serve_main(&argv[1..], interrupt_token()))
        }
        Some("submit") => return ExitCode::from(sisyn::serve::cli::submit_main(&argv[1..])),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    if args.profile.is_some() {
        si_obs::set_enabled(true);
    }
    if let Some(interval) = args.progress {
        si_obs::arm_progress(interval);
    }
    let code = run(&args);
    // The tree profile goes to stderr after the command wound down (its
    // top-level span has closed by now); the JSON profile was already
    // spliced into the final `--json` report by `print_json`, or prints
    // alone on stdout when no report owned stdout.
    match args.profile {
        Some(ProfileFormat::Tree) => si_obs::log_lines(&si_obs::render_tree()),
        Some(ProfileFormat::Json) if !args.json => println!("{}", si_obs::render_json()),
        _ => {}
    }
    code
}

/// The per-subcommand span names of the CLI layer — the profile tree's
/// roots, so every child phase sums under one wall-clock total.
fn cli_span(command: &str) -> &'static str {
    match command {
        "check" => "cli.check",
        "synth" => "cli.synth",
        "verify" => "cli.verify",
        "resolve" => "cli.resolve",
        "deadlock" => "cli.deadlock",
        _ => "cli.other",
    }
}

fn run(args: &Args) -> ExitCode {
    let _span = si_obs::span(cli_span(&args.command));
    let text = match read_input(&args.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    // Protocol deadlock checking parses `.proto` CFSM systems, not `.g`
    // STGs — dispatch before the STG parser. It runs on the explicit
    // explorer only (the symbolic backend encodes Petri-net markings).
    if args.command == "deadlock" {
        if args.backend != Backend::Explicit {
            eprintln!(
                "--backend {}: deadlock checking runs on the explicit explorer only",
                args.backend.as_str()
            );
            return usage();
        }
        return cmd_deadlock(&text, args);
    }
    let stg = match parse_g(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // `--json` is defined for the commands that emit a report; rejecting
    // it elsewhere beats silently swallowing the artifact (`dot --json`
    // would otherwise print nothing and exit 0).
    if args.json && !matches!(args.command.as_str(), "synth" | "verify" | "resolve") {
        eprintln!("--json is only supported for synth, verify, resolve and deadlock");
        return usage();
    }
    // `--backend` selects who answers the state-space queries of check and
    // verify; the other commands have no such query, so a stray flag is a
    // mistake worth naming rather than ignoring.
    if args.backend != Backend::Explicit && !matches!(args.command.as_str(), "check" | "verify") {
        eprintln!("--backend is only supported for check and verify");
        return usage();
    }

    match args.command.as_str() {
        "check" => cmd_check(&stg, args),
        "synth" => cmd_synth(&stg, args),
        "verify" => cmd_verify(&stg, args),
        "resolve" => cmd_resolve(&stg, args),
        "dot" => {
            let _ = emit(args, &stg_to_dot(&stg));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn cmd_check(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    let engine = args.engine(stg, 100_000);
    println!(
        "model {}: {} signals, {} transitions, {} places, free-choice: {}",
        stg.name(),
        stg.signal_count(),
        stg.net().transition_count(),
        stg.net().place_count(),
        stg.net().is_free_choice()
    );
    // Cheap default: the count is informational and the structural flow
    // never needs the state graph, so don't burn time/memory on huge nets
    // unless the user explicitly raises --cap (or picks a backend that
    // counts without enumerating).
    match engine.spec_state_count() {
        Ok(n) if args.backend == Backend::Explicit => println!("reachable markings: {n}"),
        Ok(n) => println!(
            "reachable markings: {n} ({} backend)",
            args.backend.as_str()
        ),
        Err(sisyn::petri::ReachError::StateCapExceeded { cap }) => println!(
            "reachable markings: > {cap} (state cap exceeded — the \
             structural flow does not need the state graph; pass a larger \
             `--cap N` for exact counts, `--shards auto` to explore big \
             state spaces in parallel, or `--backend symbolic` to count \
             without enumerating)"
        ),
        Err(ReachError::Interrupted {
            reason,
            states_explored,
            ..
        }) => println!(
            "reachable markings: >= {states_explored} (count interrupted: \
             {reason} — the structural flow does not need the state graph)"
        ),
        Err(e) => {
            println!("reachability: FAILED ({e})");
            return ExitCode::FAILURE;
        }
    }
    match check_live_safe_fc(stg.net()) {
        sisyn::petri::StructuralCheck::Ok => println!("liveness/safeness: OK (Commoner)"),
        other => {
            println!("liveness/safeness: FAILED {other:?}");
            return ExitCode::FAILURE;
        }
    }
    match StgAnalysis::analyze(stg) {
        Ok(_) => println!("consistency: OK"),
        Err(e) => {
            println!("consistency: FAILED ({e})");
            return ExitCode::FAILURE;
        }
    }
    match engine.analyze() {
        Ok(report) => {
            println!(
                "coding conflicts: {} (after {} refinement round(s))",
                report.conflicts, report.refinement_rounds
            );
            match report.csc {
                CscVerdict::UscHolds => println!("state coding: USC holds"),
                CscVerdict::CscHolds => println!("state coding: CSC holds"),
                CscVerdict::Unknown { places } => {
                    // The structural verdict is conservative; a non-default
                    // backend can settle it exactly from the reachable set
                    // without enumerating states.
                    if args.backend != Backend::Explicit {
                        if let Ok(sym) = engine.symbolic() {
                            match sym.has_csc() {
                                Some(true) => {
                                    println!(
                                        "state coding: CSC holds (symbolic exact check; \
                                         {} structural witness place(s) were false alarms)",
                                        places.len()
                                    );
                                    return ExitCode::SUCCESS;
                                }
                                Some(false) => {
                                    println!(
                                        "state coding: CSC violation (symbolic exact \
                                         check) — try `sisyn resolve`"
                                    );
                                    return ExitCode::FAILURE;
                                }
                                None => {}
                            }
                        }
                    }
                    println!(
                        "state coding: possible CSC violation ({} witness place(s)) — try `sisyn resolve`",
                        places.len()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        Err(e) => {
            println!("structural analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_synth(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    let engine = args.engine(stg, 4_000_000);
    match engine.synthesize() {
        Ok(syn) => {
            let mapped = map_circuit(&syn.circuit);
            eprintln!(
                "synthesized {} signal(s): {} literal units, {} transistor pairs",
                syn.results.len(),
                syn.literal_area,
                mapped.area
            );
            if args.json {
                print_json(
                    args,
                    &format!(
                        "{{\"command\": \"synth\", \"ok\": true, \"model\": {}, \
                     \"architecture\": {}, \"minimizer\": {}, \
                     \"signals\": {}, \"literal_area\": {}, \"mapped_area\": {}, \
                     \"place_cover_cubes\": {}, \"sm_count\": {}, \
                     \"refinement_rounds\": {}}}",
                        json_str(stg.name()),
                        json_str(arch_name(args.arch)),
                        json_str(args.minimizer.name()),
                        syn.results.len(),
                        syn.literal_area,
                        mapped.area,
                        syn.place_cover_cubes,
                        syn.sm_count,
                        syn.refinement_rounds,
                    ),
                );
            }
            let _ = emit(args, &to_verilog(stg, &syn.circuit));
            if let Some(n) = args.waveform {
                let (outcome, trace) = record_walk(stg, &syn.circuit, n, 1);
                eprintln!("simulation: {outcome:?}");
                eprint!("{}", sisyn::stg::render_waveform(stg, &trace));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            if args.json {
                print_json(
                    args,
                    &format!(
                        "{{\"command\": \"synth\", \"ok\": false, \"model\": {}, \"error\": {}}}",
                        json_str(stg.name()),
                        error_json(synthesis_error_kind(&e), &e.to_string(), 0),
                    ),
                );
            }
            ExitCode::FAILURE
        }
    }
}

/// The stable machine-readable kind of a synthesis error.
fn synthesis_error_kind(e: &sisyn::core::SynthesisError) -> &'static str {
    match e {
        sisyn::core::SynthesisError::WorkerPanicked { .. } => "worker-panicked",
        _ => "synthesis-failed",
    }
}

fn cmd_verify(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    // One session: the graph built for the functional oracle doubles as
    // the conformance probe, so the state space is explored once.
    let engine = args.engine(stg, 4_000_000);
    let syn = match engine.synthesize() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            if args.json {
                print_json(
                    args,
                    &format!(
                        "{{\"command\": \"verify\", \"ok\": false, \"model\": {}, \"error\": {}}}",
                        json_str(stg.name()),
                        error_json(synthesis_error_kind(&e), &e.to_string(), 0),
                    ),
                );
            }
            return ExitCode::FAILURE;
        }
    };
    let functional = match engine.verify(&syn.circuit) {
        Ok(report) => report,
        Err(e) => {
            if e.is_inconclusive() {
                eprintln!(
                    "verification inconclusive: {e} — state-based \
                     verification needs the full reachability graph; pass \
                     a larger `--cap N` / `--timeout DUR` to raise the \
                     budget (and `--shards auto` to build the graph in \
                     parallel)"
                );
            } else {
                eprintln!("verification failed: {e}");
            }
            if args.json {
                print_json(
                    args,
                    &format!(
                        "{{\"command\": \"verify\", \"ok\": false, \
                     \"inconclusive\": {}, \"model\": {}, \"error\": {}}}",
                        e.is_inconclusive(),
                        json_str(stg.name()),
                        reach_error_json(&e),
                    ),
                );
            }
            return reach_error_exit(&e);
        }
    };
    let conformance = match engine.check_conformance(&syn.circuit) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("conformance check failed: {e}");
            if args.json {
                print_json(
                    args,
                    &format!(
                        "{{\"command\": \"verify\", \"ok\": false, \
                     \"inconclusive\": {}, \"model\": {}, \"error\": {}}}",
                        e.is_inconclusive(),
                        json_str(stg.name()),
                        reach_error_json(&e),
                    ),
                );
            }
            return reach_error_exit(&e);
        }
    };
    let sim = random_walks(stg, &syn.circuit, 4, 4000, 7);
    let verdict = |ok: bool, conclusive: bool| match (ok, conclusive) {
        (false, _) => "FAILED",
        (true, true) => "OK",
        (true, false) => "OK so far (partial)",
    };
    let summary = format!(
        "functional+monotonic: {} ({} states) | conformance: {} ({} states) | random walks: {}",
        verdict(functional.is_ok(), functional.is_conclusive()),
        functional.states_checked,
        verdict(conformance.is_ok(), conformance.is_conclusive()),
        conformance.states_explored,
        if sim.is_clean() { "OK" } else { "FAILED" },
    );
    // `--json` owns stdout; the human summary moves to stderr there.
    if args.json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    // Partial verdicts: the budget (cap / --timeout / Ctrl-C) stopped an
    // exploration early. Name what ran out and how far the check got —
    // "no violation in the N states explored" is a verdict about a
    // prefix, not the whole space.
    if let Some(i) = functional.interrupted {
        eprintln!(
            "functional verification inconclusive ({}): no violation in \
             the {} states explored — raise `--timeout DUR` for a \
             definitive verdict",
            i.reason, i.states_explored
        );
    }
    if let Some(i) = conformance.interrupted {
        eprintln!(
            "conformance inconclusive ({}): no failure in the {} product \
             states explored — pass a larger `--cap N` / `--timeout DUR` \
             to raise the budget (and `--shards auto` to explore the \
             product in parallel)",
            i.reason, i.states_explored
        );
    }
    // A failing check comes with a firing-sequence counterexample from the
    // explorer's witness machinery; print it as transition names.
    let trace = functional.trace.as_ref().or(conformance.trace.as_ref());
    if let Some(trace) = trace {
        let names: Vec<&str> = trace
            .iter()
            .map(|&t| stg.net().transition_name(t))
            .collect();
        eprintln!(
            "counterexample ({} firings from the initial state): {}",
            names.len(),
            names.join(" ")
        );
    }
    // The spec's reachable-state count via the selected backend: the
    // cached explicit graph under the default, the BDD reachable set
    // under `--backend symbolic` (where the CI smoke cross-checks the two
    // spellings report the same number).
    let spec_states = engine.spec_state_count().ok();
    let symbolic_stats = (args.backend == Backend::Symbolic)
        .then(|| {
            engine
                .symbolic_reach()
                .ok()
                .map(|s| (s.iterations(), s.peak_nodes()))
        })
        .flatten();
    if let Some((iterations, peak_nodes)) = symbolic_stats {
        eprintln!(
            "symbolic backend: {} spec state(s) in {iterations} iteration(s), \
             peak {peak_nodes} BDD node(s)",
            spec_states.map_or("?".to_string(), |n| n.to_string()),
        );
    }
    let failed = !functional.is_ok() || !conformance.is_ok() || !sim.is_clean();
    let inconclusive = !functional.is_conclusive() || !conformance.is_conclusive();
    let ok = !failed && !inconclusive;
    if args.json {
        let trace_json = match trace {
            None => "null".to_string(),
            Some(ts) => format!(
                "[{}]",
                ts.iter()
                    .map(|&t| json_str(stg.net().transition_name(t)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let spec_states_json = spec_states.map_or("null".to_string(), |n| n.to_string());
        let symbolic_json = symbolic_stats.map_or("null".to_string(), |(iterations, peak)| {
            format!("{{\"iterations\": {iterations}, \"peak_nodes\": {peak}}}")
        });
        print_json(
            args,
            &format!(
                "{{\"command\": \"verify\", \"ok\": {}, \"inconclusive\": {}, \"model\": {}, \
             \"backend\": {}, \"spec_states\": {spec_states_json}, \
             \"symbolic\": {symbolic_json}, \
             \"functional_ok\": {}, \"violations\": {}, \"states_checked\": {}, \
             \"conformance_ok\": {}, \"conformance_failures\": {}, \
             \"states_explored\": {}, \"trace\": {}, \"random_walks_ok\": {}, \
             \"literal_area\": {}, \"minimizer\": {}}}",
                ok,
                inconclusive,
                json_str(stg.name()),
                json_str(args.backend.as_str()),
                functional.is_ok(),
                functional.violations.len(),
                functional.states_checked,
                conformance.is_ok(),
                conformance.failures.len(),
                conformance.states_explored,
                trace_json,
                sim.is_clean(),
                syn.literal_area,
                json_str(args.minimizer.name()),
            ),
        );
    }
    if failed {
        ExitCode::FAILURE
    } else if inconclusive {
        ExitCode::from(EXIT_INCONCLUSIVE)
    } else {
        ExitCode::SUCCESS
    }
}

/// The per-candidate search statistics as a JSON object fragment.
fn stats_json(stats: &ResolveStats) -> String {
    let interrupted = match stats.interrupted {
        None => "null".to_string(),
        Some(i) => format!(
            "{{\"reason\": {}, \"candidates_evaluated\": {}}}",
            json_str(i.reason.as_str()),
            i.states_explored
        ),
    };
    format!(
        "{{\"strategy\": {}, \"cores\": {}, \"candidates_generated\": {}, \
         \"candidates_evaluated\": {}, \"candidates_rejected\": {}, \
         \"candidates_panicked\": {}, \"oracle_calls\": {}, \
         \"oracle_rejected\": {}, \"interrupted\": {interrupted}, \
         \"wall_ms\": {:.3}}}",
        json_str(stats.strategy.name()),
        stats.cores,
        stats.generated,
        stats.evaluated,
        stats.rejected,
        stats.panicked,
        stats.oracle_calls,
        stats.oracle_rejected,
        stats.wall_ms,
    )
}

/// Renders an accepted insertion plan over the *input* STG's node names
/// (`null` for the no-conflict sentinel plan).
fn plan_json(stg: &sisyn::stg::Stg, plan: &InsertionPlan) -> String {
    if plan.rise_split == plan.fall_split {
        return "null".to_string(); // sentinel: input already satisfied CSC
    }
    let net = stg.net();
    let waits = plan
        .rise_waits
        .iter()
        .map(|&(t, marked)| {
            format!(
                "{{\"after\": {}, \"marked\": {marked}}}",
                json_str(&stg.transition_display(t))
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"rise_split\": {}, \"fall_split\": {}, \"rise_waits\": [{waits}]}}",
        json_str(net.place_name(plan.rise_split)),
        json_str(net.place_name(plan.fall_split)),
    )
}

fn cmd_resolve(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    // `--cap`/`--shards` govern the behavioural acceptance oracle (like
    // every other reachability-based oracle); `--budget` bounds the
    // candidate search, which is a search bound, not a state cap.
    let engine = args.engine(stg, 1_000_000);
    let options = CscOptions::default()
        .budget(args.budget)
        .strategy(args.strategy)
        .reach(args.reach(1_000_000));
    let outcome = engine.resolve_csc_outcome(&options);
    let stats = &outcome.stats;
    eprintln!(
        "search[{}]: {} core(s), {} candidate(s) generated, {} evaluated, \
         {} rejected, {} oracle call(s), {:.1} ms",
        stats.strategy.name(),
        stats.cores,
        stats.generated,
        stats.evaluated,
        stats.rejected,
        stats.oracle_calls,
        stats.wall_ms,
    );
    match outcome.resolution {
        Some(resolution) => {
            eprintln!(
                "resolved: {} -> {} signals",
                stg.signal_count(),
                resolution.stg.signal_count()
            );
            if args.json {
                print_json(
                    args,
                    &format!(
                        "{{\"command\": \"resolve\", \"ok\": true, \"model\": {}, \
                     \"signals_before\": {}, \"signals_after\": {}, \
                     \"plan\": {}, \"cost\": {}, \"stats\": {}}}",
                        json_str(stg.name()),
                        stg.signal_count(),
                        resolution.stg.signal_count(),
                        plan_json(stg, &resolution.plan),
                        resolution.cost,
                        stats_json(stats),
                    ),
                );
            }
            let _ = emit(args, &write_g(&resolution.stg));
            ExitCode::SUCCESS
        }
        None => {
            let (kind, detail) = match stats.interrupted {
                Some(i) => {
                    eprintln!(
                        "search interrupted ({}): no resolution among the \
                         {} candidate(s) evaluated before the budget ran \
                         out — raise `--timeout DUR` (or don't Ctrl-C) \
                         for a definitive answer",
                        i.reason, i.states_explored
                    );
                    (
                        i.reason.as_str(),
                        "candidate search interrupted before a resolution was found",
                    )
                }
                None => {
                    eprintln!("no single-signal insertion found within budget");
                    (
                        "no-resolution",
                        "no single-signal insertion found within budget",
                    )
                }
            };
            if args.json {
                print_json(
                    args,
                    &format!(
                        "{{\"command\": \"resolve\", \"ok\": false, \
                     \"inconclusive\": {}, \"model\": {}, \"error\": {}, \
                     \"stats\": {}}}",
                        stats.interrupted.is_some(),
                        json_str(stg.name()),
                        error_json(kind, detail, stats.evaluated),
                        stats_json(stats),
                    ),
                );
            }
            if stats.interrupted.is_some() {
                ExitCode::from(EXIT_INCONCLUSIVE)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn cmd_deadlock(text: &str, args: &Args) -> ExitCode {
    let sys = match parse_proto(text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match check_deadlock_with(&sys, args.reach(sisyn::proto::DEFAULT_CAP)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("deadlock check failed: {e}");
            if args.json {
                print_json(
                    args,
                    &format!(
                        "{{\"command\": \"deadlock\", \"ok\": false, \
                     \"inconclusive\": false, \"model\": {}, \"error\": {}}}",
                        json_str(sys.name()),
                        error_json("worker-panicked", &e.to_string(), 0),
                    ),
                );
            }
            return ExitCode::FAILURE;
        }
    };

    // Human report on stdout (stderr when --json owns stdout) — one
    // summary line, then the counterexample as an action sequence.
    let mut human = String::new();
    let verdict = if !report.is_ok() {
        "FAILED"
    } else if report.is_conclusive() {
        "OK"
    } else {
        "OK so far (partial)"
    };
    human.push_str(&format!(
        "model {}: {} modules, {} channels\n\
         deadlock check: {verdict} ({} deadlock(s), {} dangling send(s), \
         {} overflow(s) in {} states)\n",
        sys.name(),
        sys.modules().len(),
        sys.channels().len(),
        report.deadlocks(),
        report.dangling_sends(),
        report.overflows(),
        report.states_explored,
    ));
    if let Some(first) = report.violations.first() {
        human.push_str(&format!(
            "first violation ({}): {}\n  at state: {}\n",
            first.violation.kind(),
            first.violation.render(&sys),
            first.state.render(&sys),
        ));
    }
    if let Some(trace) = &report.trace {
        human.push_str(&format!(
            "counterexample ({} action(s) from the initial state):\n",
            trace.len()
        ));
        for step in trace {
            human.push_str(&format!("  {step}\n"));
        }
    }
    if let Some(i) = report.interrupted {
        if report.is_ok() {
            human.push_str(&format!(
                "inconclusive ({}): no violation in the {} states explored — \
                 raise `--cap N` / `--timeout DUR` for a definitive verdict \
                 (and `--shards auto` to explore in parallel)\n",
                i.reason, i.states_explored
            ));
        }
    }
    if args.json {
        eprint!("{human}");
    } else {
        print!("{human}");
    }

    if args.json {
        let trace_json = match &report.trace {
            None => "null".to_string(),
            Some(ts) => format!(
                "[{}]",
                ts.iter()
                    .map(|s| json_str(s))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let state_json = report
            .violations
            .first()
            .map_or("null".to_string(), |v| json_str(&v.state.render(&sys)));
        // A clean-but-interrupted run carries the same structured error
        // object as the other inconclusive commands (kind matches
        // InterruptReason's stable identifiers).
        let error_json_field = match report.interrupted {
            Some(i) if report.is_ok() => error_json(
                i.reason.as_str(),
                &format!("deadlock check interrupted: {i}"),
                i.states_explored,
            ),
            _ => "null".to_string(),
        };
        print_json(
            args,
            &format!(
                "{{\"command\": \"deadlock\", \"ok\": {}, \"inconclusive\": {}, \
             \"model\": {}, \"modules\": {}, \"channels\": {}, \
             \"states_explored\": {}, \"violations\": {}, \"deadlocks\": {}, \
             \"dangling_sends\": {}, \"overflows\": {}, \"state\": {}, \
             \"trace\": {}, \"error\": {}}}",
                report.is_ok() && report.is_conclusive(),
                !report.is_conclusive(),
                json_str(sys.name()),
                sys.modules().len(),
                sys.channels().len(),
                report.states_explored,
                report.violations.len(),
                report.deadlocks(),
                report.dangling_sends(),
                report.overflows(),
                state_json,
                trace_json,
                error_json_field,
            ),
        );
    }
    if !report.is_ok() {
        ExitCode::FAILURE
    } else if !report.is_conclusive() {
        ExitCode::from(EXIT_INCONCLUSIVE)
    } else {
        ExitCode::SUCCESS
    }
}
