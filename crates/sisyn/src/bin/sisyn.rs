//! `sisyn` — command-line front end for the structural synthesis library.
//!
//! ```text
//! sisyn check   SPEC.g               consistency / CSC / liveness report
//! sisyn synth   SPEC.g [options]     synthesize and print (or emit) the circuit
//! sisyn verify  SPEC.g [options]     synthesize then verify speed independence
//! sisyn resolve SPEC.g [-o OUT.g]    CSC resolution by state-signal insertion
//! sisyn dot     SPEC.g               Graphviz rendering of the STG
//!
//! options:
//!   -o FILE            write the main artifact (Verilog / .g / dot) to FILE
//!   --arch ARCH        complex | excitation | per-region   (default excitation)
//!   --stages N         minimization stage 0..4 or "full"    (default full)
//!   --waveform N       also print an N-step simulated waveform
//!   --cap N            state cap for every reachability-based oracle;
//!                      exceeding it fails fast with a StateCapExceeded
//!                      report that names this flag (pass a larger
//!                      `--cap N` to raise the cap) instead of hanging.
//!                      Per-command defaults when omitted: check 100000
//!                      (cheap count), verify 4000000 functional /
//!                      1000000 conformance, resolve 1000000 (acceptance
//!                      oracle; the insertion-candidate search budget is
//!                      a fixed 100000 and not affected by this flag)
//!   --shards N|auto    explore reachability with N parallel shard
//!                      workers (see si-petri's sharded engine; N is
//!                      rounded up to a power of two, max 64); `auto`
//!                      picks the hardware-thread count rounded down.
//!                      Default 1 (sequential). Raising --cap on a big
//!                      net? Combine it with --shards to keep the wall
//!                      time down.
//!   --budget N         resolve only: insertion-candidate search budget
//!                      (default 100000) — how many state-signal
//!                      insertions to try, distinct from the --cap that
//!                      bounds each candidate's acceptance oracle
//! ```

use sisyn::prelude::*;
use std::io::Read;
use std::process::ExitCode;

struct Args {
    command: String,
    input: String,
    output: Option<String>,
    arch: Architecture,
    stages: MinimizeStages,
    waveform: Option<usize>,
    /// `--cap`: one explicit cap for every oracle; `None` keeps the
    /// per-command defaults.
    cap: Option<usize>,
    /// `--shards`: reachability shard workers (1 = sequential engine).
    shards: usize,
    /// `--budget`: candidate-search budget for `resolve`.
    budget: usize,
}

impl Args {
    /// The reachability options for an oracle whose default cap is
    /// `default_cap` (overridden by `--cap`), sharded per `--shards`.
    fn reach(&self, default_cap: usize) -> ReachOptions {
        ReachOptions::with_cap(self.cap.unwrap_or(default_cap)).shards(self.shards)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sisyn <check|synth|verify|resolve|dot> SPEC.g \
         [-o FILE] [--arch complex|excitation|per-region] [--stages 0..4|full] [--waveform N] \
         [--cap N] [--shards N|auto] [--budget N]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut input = None;
    let mut output = None;
    let mut arch = Architecture::ExcitationFunction;
    let mut stages = MinimizeStages::full();
    let mut waveform = None;
    let mut cap = None;
    let mut shards = 1usize;
    let mut budget = 100_000usize;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-o" => output = Some(argv.next().ok_or_else(usage)?),
            "--arch" => {
                arch = match argv.next().ok_or_else(usage)?.as_str() {
                    "complex" => Architecture::ComplexGate,
                    "excitation" => Architecture::ExcitationFunction,
                    "per-region" => Architecture::PerRegion,
                    other => {
                        eprintln!("unknown architecture {other:?}");
                        return Err(usage());
                    }
                }
            }
            "--stages" => {
                let v = argv.next().ok_or_else(usage)?;
                stages = match v.as_str() {
                    "full" => MinimizeStages::full(),
                    "none" => MinimizeStages::none(),
                    n => MinimizeStages::stage(n.parse().map_err(|_| usage())?),
                }
            }
            "--waveform" => {
                waveform = Some(
                    argv.next()
                        .ok_or_else(usage)?
                        .parse()
                        .map_err(|_| usage())?,
                )
            }
            "--cap" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    eprintln!("--cap must be positive");
                    return Err(usage());
                }
                cap = Some(n);
            }
            "--shards" => {
                let v = argv.next().ok_or_else(usage)?;
                shards = if v == "auto" {
                    ReachOptions::auto(1).shards
                } else {
                    let n: usize = v.parse().map_err(|_| usage())?;
                    if n == 0 {
                        eprintln!("--shards must be positive (or `auto`)");
                        return Err(usage());
                    }
                    n
                };
            }
            "--budget" => {
                budget = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
            }
            _ if input.is_none() => input = Some(a),
            other => {
                eprintln!("unexpected argument {other:?}");
                return Err(usage());
            }
        }
    }
    Ok(Args {
        command,
        input: input.ok_or_else(usage)?,
        output,
        arch,
        stages,
        waveform,
        cap,
        shards,
        budget,
    })
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        Ok(s)
    } else {
        std::fs::read_to_string(path)
    }
}

fn emit(output: &Option<String>, content: &str) -> std::io::Result<()> {
    match output {
        Some(path) => std::fs::write(path, content),
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let text = match read_input(&args.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let stg = match parse_g(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match args.command.as_str() {
        "check" => cmd_check(&stg, &args),
        "synth" => cmd_synth(&stg, &args),
        "verify" => cmd_verify(&stg, &args),
        "resolve" => cmd_resolve(&stg, &args),
        "dot" => {
            let _ = emit(&args.output, &stg_to_dot(&stg));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn cmd_check(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    println!(
        "model {}: {} signals, {} transitions, {} places, free-choice: {}",
        stg.name(),
        stg.signal_count(),
        stg.net().transition_count(),
        stg.net().place_count(),
        stg.net().is_free_choice()
    );
    // Cheap default: the count is informational and the structural flow
    // never needs the state graph, so don't burn time/memory on huge nets
    // unless the user explicitly raises --cap.
    match ReachabilityGraph::build_with(stg.net(), args.reach(100_000)) {
        Ok(rg) => println!("reachable markings: {}", rg.state_count()),
        Err(sisyn::petri::ReachError::StateCapExceeded { cap }) => println!(
            "reachable markings: > {cap} (state cap exceeded — the \
             structural flow does not need the state graph; pass a larger \
             `--cap N` for exact counts, and `--shards auto` to explore \
             big state spaces in parallel)"
        ),
        Err(e) => {
            println!("reachability: FAILED ({e})");
            return ExitCode::FAILURE;
        }
    }
    match check_live_safe_fc(stg.net()) {
        sisyn::petri::StructuralCheck::Ok => println!("liveness/safeness: OK (Commoner)"),
        other => {
            println!("liveness/safeness: FAILED {other:?}");
            return ExitCode::FAILURE;
        }
    }
    match StgAnalysis::analyze(stg) {
        Ok(_) => println!("consistency: OK"),
        Err(e) => {
            println!("consistency: FAILED ({e})");
            return ExitCode::FAILURE;
        }
    }
    match StructuralContext::build(stg) {
        Ok(ctx) => {
            println!(
                "coding conflicts: {} (after {} refinement round(s))",
                ctx.conflicts().len(),
                ctx.refinement_rounds
            );
            match ctx.csc_verdict() {
                CscVerdict::UscHolds => println!("state coding: USC holds"),
                CscVerdict::CscHolds => println!("state coding: CSC holds"),
                CscVerdict::Unknown { places } => {
                    println!(
                        "state coding: possible CSC violation ({} witness place(s)) — try `sisyn resolve`",
                        places.len()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        Err(e) => {
            println!("structural analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_synth(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    let opts = SynthesisOptions {
        architecture: args.arch,
        stages: args.stages,
    };
    match synthesize(stg, &opts) {
        Ok(syn) => {
            let mapped = map_circuit(&syn.circuit);
            eprintln!(
                "synthesized {} signal(s): {} literal units, {} transistor pairs",
                syn.results.len(),
                syn.literal_area,
                mapped.area
            );
            let _ = emit(&args.output, &to_verilog(stg, &syn.circuit));
            if let Some(n) = args.waveform {
                let (outcome, trace) = record_walk(stg, &syn.circuit, n, 1);
                eprintln!("simulation: {outcome:?}");
                eprint!("{}", sisyn::stg::render_waveform(stg, &trace));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_verify(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    let opts = SynthesisOptions {
        architecture: args.arch,
        stages: args.stages,
    };
    let syn = match synthesize(stg, &opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let functional =
        match sisyn::verify::verify_circuit_with(stg, &syn.circuit, args.reach(4_000_000)) {
            Ok(report) => report,
            Err(e) => {
                eprintln!(
                    "verification inconclusive: {e} — state-based \
                     verification needs the full reachability graph; pass a \
                     larger `--cap N` to raise the cap (and `--shards auto` \
                     to build the graph in parallel)"
                );
                return ExitCode::FAILURE;
            }
        };
    let conformance =
        sisyn::verify::check_conformance_with(stg, &syn.circuit, args.reach(1_000_000));
    let sim = random_walks(stg, &syn.circuit, 4, 4000, 7);
    println!(
        "functional+monotonic: {} | conformance: {} ({} states) | random walks: {}",
        if functional.is_ok() { "OK" } else { "FAILED" },
        if conformance.is_ok() { "OK" } else { "FAILED" },
        conformance.states_explored,
        if sim.is_clean() { "OK" } else { "FAILED" },
    );
    if functional.is_ok() && conformance.is_ok() && sim.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_resolve(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    // `--cap`/`--shards` govern the behavioural acceptance oracle (like
    // every other reachability-based oracle); `--budget` bounds the
    // candidate search, which is a search bound, not a state cap.
    match resolve_csc_with(stg, args.budget, args.reach(1_000_000)) {
        Some((fixed, _plan)) => {
            eprintln!(
                "resolved: {} -> {} signals",
                stg.signal_count(),
                fixed.signal_count()
            );
            let _ = emit(&args.output, &write_g(&fixed));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("no single-signal insertion found within budget");
            ExitCode::FAILURE
        }
    }
}
