//! `sisyn` — command-line front end for the structural synthesis library.
//!
//! ```text
//! sisyn check   SPEC.g               consistency / CSC / liveness report
//! sisyn synth   SPEC.g [options]     synthesize and print (or emit) the circuit
//! sisyn verify  SPEC.g [options]     synthesize then verify speed independence
//! sisyn resolve SPEC.g [-o OUT.g]    CSC resolution by state-signal insertion
//! sisyn dot     SPEC.g               Graphviz rendering of the STG
//!
//! options:
//!   -o FILE            write the main artifact (Verilog / .g / dot) to FILE
//!   --arch ARCH        complex | excitation | per-region   (default excitation)
//!   --stages N         minimization stage 0..4 or "full"    (default full)
//!   --minimizer M      two-level minimizer backend for the complex-gate
//!                      architecture and the state-based oracles:
//!                      espresso | exact | bdd | auto        (default espresso;
//!                      `auto` picks per signal by cover size and is never
//!                      worse in literals than espresso)
//!   --json             machine-readable JSON report on stdout for
//!                      synth / verify / resolve (exit codes unchanged;
//!                      the artifact is only written when -o is given)
//!   --waveform N       also print an N-step simulated waveform
//!   --cap N            state cap for every reachability-based oracle;
//!                      exceeding it fails fast with a StateCapExceeded
//!                      report that names this flag (pass a larger
//!                      `--cap N` to raise the cap) instead of hanging.
//!                      Per-command defaults when omitted: check 100000
//!                      (cheap count), verify 4000000 (one cached graph
//!                      serves the functional and conformance oracles),
//!                      resolve 1000000. NOTE for resolve: --cap and
//!                      --budget bound different things — --cap bounds
//!                      the state space of the behavioural *acceptance
//!                      oracle* run on each surviving candidate, while
//!                      --budget bounds the *candidate search* itself
//!                      (how many insertion plans may be structurally
//!                      evaluated). Raising --cap admits bigger
//!                      candidates; raising --budget searches longer.
//!   --shards N|auto    explore state spaces with N parallel shard
//!                      workers (see si-petri's generic sharded explorer;
//!                      N is rounded up to a power of two, max 64); `auto`
//!                      picks the hardware-thread count rounded down.
//!                      Applies to every traversal of the run: the
//!                      reachability build, the speed-independence
//!                      violation search and the spec×circuit conformance
//!                      product. Default 1 (sequential). Raising --cap on
//!                      a big net? Combine it with --shards to keep the
//!                      wall time down. When `verify` finds a violation
//!                      it prints (and emits in --json as "trace") a
//!                      firing-sequence counterexample leading to it.
//!   --budget N         resolve only: insertion-candidate search budget
//!                      (default 100000) — how many state-signal
//!                      insertions may be structurally evaluated,
//!                      distinct from the --cap that bounds each
//!                      candidate's acceptance oracle (see --cap)
//!   --strategy S       resolve only: candidate-selection strategy,
//!                      greedy | beam (default greedy). greedy accepts
//!                      the first oracle-approved candidate in
//!                      conflict-core proximity order; beam scores the
//!                      whole nearest candidate tier, ranks survivors by
//!                      the cost model (literal delta + concurrency
//!                      penalty) and oracles the best ones
//! ```
//!
//! Every command drives one [`Engine`] session, so oracles that need the
//! same artifact (the reachability graph, the structural context) compute
//! it once.

use sisyn::prelude::*;
use std::io::Read;
use std::process::ExitCode;

struct Args {
    command: String,
    input: String,
    output: Option<String>,
    arch: Architecture,
    stages: MinimizeStages,
    minimizer: MinimizerChoice,
    json: bool,
    waveform: Option<usize>,
    /// `--cap`: one explicit cap for every oracle; `None` keeps the
    /// per-command defaults.
    cap: Option<usize>,
    /// `--shards`: reachability shard workers (1 = sequential engine).
    shards: usize,
    /// `--budget`: candidate-search budget for `resolve`.
    budget: usize,
    /// `--strategy`: candidate-selection strategy for `resolve`.
    strategy: Strategy,
}

impl Args {
    /// The reachability options for an oracle whose default cap is
    /// `default_cap` (overridden by `--cap`), sharded per `--shards`.
    fn reach(&self, default_cap: usize) -> ReachOptions {
        ReachOptions::with_cap(self.cap.unwrap_or(default_cap)).shards(self.shards)
    }

    /// The synthesis options of this invocation.
    fn synthesis(&self) -> SynthesisOptions {
        SynthesisOptions {
            architecture: self.arch,
            stages: self.stages,
            minimizer: self.minimizer,
        }
    }

    /// The configured session over `stg`, with `default_cap` as the
    /// `--cap` fallback.
    fn engine<'a>(&self, stg: &'a Stg, default_cap: usize) -> Engine<'a> {
        Engine::new(stg)
            .reach(self.reach(default_cap))
            .options(self.synthesis())
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sisyn <check|synth|verify|resolve|dot> SPEC.g \
         [-o FILE] [--arch complex|excitation|per-region] [--stages 0..4|full] \
         [--minimizer espresso|exact|bdd|auto] [--json] [--waveform N] \
         [--cap N] [--shards N|auto] [--budget N] [--strategy greedy|beam]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut input = None;
    let mut output = None;
    let mut arch = Architecture::ExcitationFunction;
    let mut stages = MinimizeStages::full();
    let mut minimizer = MinimizerChoice::Espresso;
    let mut json = false;
    let mut waveform = None;
    let mut cap = None;
    let mut shards = 1usize;
    let mut budget = 100_000usize;
    let mut strategy = Strategy::Greedy;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-o" => output = Some(argv.next().ok_or_else(usage)?),
            "--arch" => {
                arch = match argv.next().ok_or_else(usage)?.as_str() {
                    "complex" => Architecture::ComplexGate,
                    "excitation" => Architecture::ExcitationFunction,
                    "per-region" => Architecture::PerRegion,
                    other => {
                        eprintln!("unknown architecture {other:?}");
                        return Err(usage());
                    }
                }
            }
            "--stages" => {
                let v = argv.next().ok_or_else(usage)?;
                stages = match v.as_str() {
                    "full" => MinimizeStages::full(),
                    "none" => MinimizeStages::none(),
                    n => MinimizeStages::stage(n.parse().map_err(|_| usage())?),
                }
            }
            "--minimizer" => {
                minimizer = argv.next().ok_or_else(usage)?.parse().map_err(|e| {
                    eprintln!("{e}");
                    usage()
                })?;
            }
            "--json" => json = true,
            "--waveform" => {
                waveform = Some(
                    argv.next()
                        .ok_or_else(usage)?
                        .parse()
                        .map_err(|_| usage())?,
                )
            }
            "--cap" => {
                let n: usize = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
                if n == 0 {
                    eprintln!("--cap must be positive");
                    return Err(usage());
                }
                cap = Some(n);
            }
            "--shards" => {
                let v = argv.next().ok_or_else(usage)?;
                shards = if v == "auto" {
                    ReachOptions::auto(1).shards
                } else {
                    let n: usize = v.parse().map_err(|_| usage())?;
                    if n == 0 {
                        eprintln!("--shards must be positive (or `auto`)");
                        return Err(usage());
                    }
                    n
                };
            }
            "--budget" => {
                budget = argv
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|_| usage())?;
            }
            "--strategy" => {
                strategy = argv.next().ok_or_else(usage)?.parse().map_err(|e| {
                    eprintln!("{e}");
                    usage()
                })?;
            }
            _ if input.is_none() => input = Some(a),
            other => {
                eprintln!("unexpected argument {other:?}");
                return Err(usage());
            }
        }
    }
    Ok(Args {
        command,
        input: input.ok_or_else(usage)?,
        output,
        arch,
        stages,
        minimizer,
        json,
        waveform,
        cap,
        shards,
        budget,
        strategy,
    })
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        Ok(s)
    } else {
        std::fs::read_to_string(path)
    }
}

/// Writes `content` to `-o FILE`, or to stdout when no file was given and
/// plain-text mode is on (`--json` owns stdout otherwise).
fn emit(args: &Args, content: &str) -> std::io::Result<()> {
    match &args.output {
        Some(path) => std::fs::write(path, content),
        None if !args.json => {
            print!("{content}");
            Ok(())
        }
        None => Ok(()),
    }
}

/// The stable CLI identifier of an architecture — the same vocabulary
/// `--arch` accepts, so JSON reports round-trip into reproduction
/// commands.
fn arch_name(arch: Architecture) -> &'static str {
    match arch {
        Architecture::ComplexGate => "complex",
        Architecture::ExcitationFunction => "excitation",
        Architecture::PerRegion => "per-region",
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let text = match read_input(&args.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let stg = match parse_g(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // `--json` is defined for the commands that emit a report; rejecting
    // it elsewhere beats silently swallowing the artifact (`dot --json`
    // would otherwise print nothing and exit 0).
    if args.json && !matches!(args.command.as_str(), "synth" | "verify" | "resolve") {
        eprintln!("--json is only supported for synth, verify and resolve");
        return usage();
    }

    match args.command.as_str() {
        "check" => cmd_check(&stg, &args),
        "synth" => cmd_synth(&stg, &args),
        "verify" => cmd_verify(&stg, &args),
        "resolve" => cmd_resolve(&stg, &args),
        "dot" => {
            let _ = emit(&args, &stg_to_dot(&stg));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn cmd_check(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    let engine = args.engine(stg, 100_000);
    println!(
        "model {}: {} signals, {} transitions, {} places, free-choice: {}",
        stg.name(),
        stg.signal_count(),
        stg.net().transition_count(),
        stg.net().place_count(),
        stg.net().is_free_choice()
    );
    // Cheap default: the count is informational and the structural flow
    // never needs the state graph, so don't burn time/memory on huge nets
    // unless the user explicitly raises --cap.
    match engine.reachability() {
        Ok(rg) => println!("reachable markings: {}", rg.state_count()),
        Err(sisyn::petri::ReachError::StateCapExceeded { cap }) => println!(
            "reachable markings: > {cap} (state cap exceeded — the \
             structural flow does not need the state graph; pass a larger \
             `--cap N` for exact counts, and `--shards auto` to explore \
             big state spaces in parallel)"
        ),
        Err(e) => {
            println!("reachability: FAILED ({e})");
            return ExitCode::FAILURE;
        }
    }
    match check_live_safe_fc(stg.net()) {
        sisyn::petri::StructuralCheck::Ok => println!("liveness/safeness: OK (Commoner)"),
        other => {
            println!("liveness/safeness: FAILED {other:?}");
            return ExitCode::FAILURE;
        }
    }
    match StgAnalysis::analyze(stg) {
        Ok(_) => println!("consistency: OK"),
        Err(e) => {
            println!("consistency: FAILED ({e})");
            return ExitCode::FAILURE;
        }
    }
    match engine.analyze() {
        Ok(report) => {
            println!(
                "coding conflicts: {} (after {} refinement round(s))",
                report.conflicts, report.refinement_rounds
            );
            match report.csc {
                CscVerdict::UscHolds => println!("state coding: USC holds"),
                CscVerdict::CscHolds => println!("state coding: CSC holds"),
                CscVerdict::Unknown { places } => {
                    println!(
                        "state coding: possible CSC violation ({} witness place(s)) — try `sisyn resolve`",
                        places.len()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        Err(e) => {
            println!("structural analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_synth(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    let engine = args.engine(stg, 4_000_000);
    match engine.synthesize() {
        Ok(syn) => {
            let mapped = map_circuit(&syn.circuit);
            eprintln!(
                "synthesized {} signal(s): {} literal units, {} transistor pairs",
                syn.results.len(),
                syn.literal_area,
                mapped.area
            );
            if args.json {
                println!(
                    "{{\"command\": \"synth\", \"ok\": true, \"model\": {}, \
                     \"architecture\": {}, \"minimizer\": {}, \
                     \"signals\": {}, \"literal_area\": {}, \"mapped_area\": {}, \
                     \"place_cover_cubes\": {}, \"sm_count\": {}, \
                     \"refinement_rounds\": {}}}",
                    json_str(stg.name()),
                    json_str(arch_name(args.arch)),
                    json_str(args.minimizer.name()),
                    syn.results.len(),
                    syn.literal_area,
                    mapped.area,
                    syn.place_cover_cubes,
                    syn.sm_count,
                    syn.refinement_rounds,
                );
            }
            let _ = emit(args, &to_verilog(stg, &syn.circuit));
            if let Some(n) = args.waveform {
                let (outcome, trace) = record_walk(stg, &syn.circuit, n, 1);
                eprintln!("simulation: {outcome:?}");
                eprint!("{}", sisyn::stg::render_waveform(stg, &trace));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            if args.json {
                println!(
                    "{{\"command\": \"synth\", \"ok\": false, \"model\": {}, \"error\": {}}}",
                    json_str(stg.name()),
                    json_str(&e.to_string()),
                );
            }
            ExitCode::FAILURE
        }
    }
}

fn cmd_verify(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    // One session: the graph built for the functional oracle doubles as
    // the conformance probe, so the state space is explored once.
    let engine = args.engine(stg, 4_000_000);
    let syn = match engine.synthesize() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            if args.json {
                println!(
                    "{{\"command\": \"verify\", \"ok\": false, \"model\": {}, \"error\": {}}}",
                    json_str(stg.name()),
                    json_str(&e.to_string()),
                );
            }
            return ExitCode::FAILURE;
        }
    };
    let functional = match engine.verify(&syn.circuit) {
        Ok(report) => report,
        Err(e) => {
            eprintln!(
                "verification inconclusive: {e} — state-based \
                 verification needs the full reachability graph; pass a \
                 larger `--cap N` to raise the cap (and `--shards auto` \
                 to build the graph in parallel)"
            );
            if args.json {
                println!(
                    "{{\"command\": \"verify\", \"ok\": false, \"model\": {}, \"error\": {}}}",
                    json_str(stg.name()),
                    json_str(&e.to_string()),
                );
            }
            return ExitCode::FAILURE;
        }
    };
    let conformance = engine.check_conformance(&syn.circuit);
    let sim = random_walks(stg, &syn.circuit, 4, 4000, 7);
    let summary = format!(
        "functional+monotonic: {} | conformance: {} ({} states) | random walks: {}",
        if functional.is_ok() { "OK" } else { "FAILED" },
        if conformance.is_ok() { "OK" } else { "FAILED" },
        conformance.states_explored,
        if sim.is_clean() { "OK" } else { "FAILED" },
    );
    // `--json` owns stdout; the human summary moves to stderr there.
    if args.json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    // The product exploration is capped like every other oracle: name the
    // flags that raise/parallelize it instead of leaving an opaque FAILED.
    if conformance
        .failures
        .contains(&ConformanceFailure::StateCapExceeded)
    {
        eprintln!(
            "conformance inconclusive: the spec×circuit product exploration \
             hit the state cap — pass a larger `--cap N` to raise it (and \
             `--shards auto` to explore the product in parallel)"
        );
    }
    // A failing check comes with a firing-sequence counterexample from the
    // explorer's witness machinery; print it as transition names.
    let trace = functional.trace.as_ref().or(conformance.trace.as_ref());
    if let Some(trace) = trace {
        let names: Vec<&str> = trace
            .iter()
            .map(|&t| stg.net().transition_name(t))
            .collect();
        eprintln!(
            "counterexample ({} firings from the initial state): {}",
            names.len(),
            names.join(" ")
        );
    }
    let ok = functional.is_ok() && conformance.is_ok() && sim.is_clean();
    if args.json {
        let trace_json = match trace {
            None => "null".to_string(),
            Some(ts) => format!(
                "[{}]",
                ts.iter()
                    .map(|&t| json_str(stg.net().transition_name(t)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        println!(
            "{{\"command\": \"verify\", \"ok\": {}, \"model\": {}, \
             \"functional_ok\": {}, \"violations\": {}, \"states_checked\": {}, \
             \"conformance_ok\": {}, \"conformance_failures\": {}, \
             \"states_explored\": {}, \"trace\": {}, \"random_walks_ok\": {}, \
             \"literal_area\": {}, \"minimizer\": {}}}",
            ok,
            json_str(stg.name()),
            functional.is_ok(),
            functional.violations.len(),
            functional.states_checked,
            conformance.is_ok(),
            conformance.failures.len(),
            conformance.states_explored,
            trace_json,
            sim.is_clean(),
            syn.literal_area,
            json_str(args.minimizer.name()),
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The per-candidate search statistics as a JSON object fragment.
fn stats_json(stats: &ResolveStats) -> String {
    format!(
        "{{\"strategy\": {}, \"cores\": {}, \"candidates_generated\": {}, \
         \"candidates_evaluated\": {}, \"candidates_rejected\": {}, \
         \"oracle_calls\": {}, \"oracle_rejected\": {}, \"wall_ms\": {:.3}}}",
        json_str(stats.strategy.name()),
        stats.cores,
        stats.generated,
        stats.evaluated,
        stats.rejected,
        stats.oracle_calls,
        stats.oracle_rejected,
        stats.wall_ms,
    )
}

/// Renders an accepted insertion plan over the *input* STG's node names
/// (`null` for the no-conflict sentinel plan).
fn plan_json(stg: &sisyn::stg::Stg, plan: &InsertionPlan) -> String {
    if plan.rise_split == plan.fall_split {
        return "null".to_string(); // sentinel: input already satisfied CSC
    }
    let net = stg.net();
    let waits = plan
        .rise_waits
        .iter()
        .map(|&(t, marked)| {
            format!(
                "{{\"after\": {}, \"marked\": {marked}}}",
                json_str(&stg.transition_display(t))
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"rise_split\": {}, \"fall_split\": {}, \"rise_waits\": [{waits}]}}",
        json_str(net.place_name(plan.rise_split)),
        json_str(net.place_name(plan.fall_split)),
    )
}

fn cmd_resolve(stg: &sisyn::stg::Stg, args: &Args) -> ExitCode {
    // `--cap`/`--shards` govern the behavioural acceptance oracle (like
    // every other reachability-based oracle); `--budget` bounds the
    // candidate search, which is a search bound, not a state cap.
    let engine = args.engine(stg, 1_000_000);
    let options = CscOptions::default()
        .budget(args.budget)
        .strategy(args.strategy)
        .reach(args.reach(1_000_000));
    let outcome = engine.resolve_csc_outcome(&options);
    let stats = &outcome.stats;
    eprintln!(
        "search[{}]: {} core(s), {} candidate(s) generated, {} evaluated, \
         {} rejected, {} oracle call(s), {:.1} ms",
        stats.strategy.name(),
        stats.cores,
        stats.generated,
        stats.evaluated,
        stats.rejected,
        stats.oracle_calls,
        stats.wall_ms,
    );
    match outcome.resolution {
        Some(resolution) => {
            eprintln!(
                "resolved: {} -> {} signals",
                stg.signal_count(),
                resolution.stg.signal_count()
            );
            if args.json {
                println!(
                    "{{\"command\": \"resolve\", \"ok\": true, \"model\": {}, \
                     \"signals_before\": {}, \"signals_after\": {}, \
                     \"plan\": {}, \"cost\": {}, \"stats\": {}}}",
                    json_str(stg.name()),
                    stg.signal_count(),
                    resolution.stg.signal_count(),
                    plan_json(stg, &resolution.plan),
                    resolution.cost,
                    stats_json(stats),
                );
            }
            let _ = emit(args, &write_g(&resolution.stg));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("no single-signal insertion found within budget");
            if args.json {
                println!(
                    "{{\"command\": \"resolve\", \"ok\": false, \"model\": {}, \
                     \"error\": \"no single-signal insertion found within budget\", \
                     \"stats\": {}}}",
                    json_str(stg.name()),
                    stats_json(stats),
                );
            }
            ExitCode::FAILURE
        }
    }
}
