//! Signals and transition labels.
//!
//! An STG interprets Petri-net transitions as value changes on circuit
//! signals (§II-B). Signals are inputs (driven by the environment), outputs
//! (to be synthesized) or internal (synthesized, not observable).

use std::fmt;

/// Index of a signal within an [`crate::Stg`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SignalId(pub u16);

impl SignalId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The role of a signal.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SignalKind {
    /// Driven by the environment; never synthesized.
    Input,
    /// Observable signal the circuit must produce.
    Output,
    /// Signal the circuit produces for internal state (e.g. CSC signals).
    Internal,
}

impl SignalKind {
    /// Returns `true` for outputs and internal signals — the ones the
    /// synthesis flow must implement.
    pub fn is_synthesized(self) -> bool {
        matches!(self, SignalKind::Output | SignalKind::Internal)
    }
}

/// Direction of a signal transition.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Rising (`a+`): 0 → 1.
    Rise,
    /// Falling (`a-`): 1 → 0.
    Fall,
}

impl Direction {
    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Rise => Direction::Fall,
            Direction::Fall => Direction::Rise,
        }
    }

    /// The signal value *after* a transition in this direction.
    pub fn target_value(self) -> bool {
        matches!(self, Direction::Rise)
    }

    /// The sign character: `+` or `-`.
    pub fn sign(self) -> char {
        match self {
            Direction::Rise => '+',
            Direction::Fall => '-',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sign())
    }
}

/// The label of an STG transition: which signal switches, in which
/// direction, and which instance (for signals with multiple transitions of
/// the same direction, e.g. `d+/1` and `d+/2`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TransitionLabel {
    /// The switching signal.
    pub signal: SignalId,
    /// Rising or falling.
    pub direction: Direction,
    /// Instance number, 1-based. Instance 1 is printed without suffix.
    pub instance: u32,
}

impl TransitionLabel {
    /// Formats the label given the signal's name, e.g. `d+/2`.
    pub fn display_with(&self, signal_name: &str) -> String {
        if self.instance <= 1 {
            format!("{}{}", signal_name, self.direction)
        } else {
            format!("{}{}/{}", signal_name, self.direction, self.instance)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_basics() {
        assert_eq!(Direction::Rise.opposite(), Direction::Fall);
        assert!(Direction::Rise.target_value());
        assert!(!Direction::Fall.target_value());
        assert_eq!(Direction::Rise.to_string(), "+");
        assert_eq!(Direction::Fall.to_string(), "-");
    }

    #[test]
    fn kind_synthesized() {
        assert!(!SignalKind::Input.is_synthesized());
        assert!(SignalKind::Output.is_synthesized());
        assert!(SignalKind::Internal.is_synthesized());
    }

    #[test]
    fn label_display() {
        let l = TransitionLabel {
            signal: SignalId(0),
            direction: Direction::Rise,
            instance: 1,
        };
        assert_eq!(l.display_with("req"), "req+");
        let l2 = TransitionLabel {
            signal: SignalId(0),
            direction: Direction::Fall,
            instance: 3,
        };
        assert_eq!(l2.display_with("d"), "d-/3");
    }
}
