//! State encoding and behavioural oracles (§II-D, §II-E).
//!
//! Everything in this module works on the explicit reachability graph. It is
//! the *ground truth* against which the structural methods of the paper are
//! validated: binary codes of markings, behavioural consistency, USC/CSC
//! analysis, output semimodularity and the next-state function.

use crate::signal::{Direction, SignalId};
use crate::stg::Stg;
use si_boolean::Bits;
use si_petri::{ReachabilityGraph, StateId, TransId};

/// Binary codes assigned to every reachable marking.
#[derive(Clone, Debug)]
pub struct StateEncoding {
    codes: Vec<Bits>,
}

/// Why an STG failed behavioural consistency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodingError {
    /// Two constraints force opposite values of a signal at one marking —
    /// autoconcurrency or a switchover violation.
    Inconsistent {
        /// The state at which the contradiction appeared.
        state: StateId,
        /// The signal whose value is contradictory.
        signal: SignalId,
    },
    /// A signal's value is unconstrained (it has no transitions reachable
    /// from the initial marking).
    Undetermined {
        /// The signal that never switches.
        signal: SignalId,
    },
}

impl std::fmt::Display for EncodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodingError::Inconsistent { state, signal } => write!(
                f,
                "inconsistent encoding: signal #{} has contradictory values at state #{}",
                signal.0, state.0
            ),
            EncodingError::Undetermined { signal } => {
                write!(
                    f,
                    "signal #{} never switches; its value is undetermined",
                    signal.0
                )
            }
        }
    }
}

impl std::error::Error for EncodingError {}

impl StateEncoding {
    /// Computes the (unique) consistent binary encoding of the reachability
    /// graph by constraint propagation, or reports why none exists.
    ///
    /// Seeds: an edge labelled `a+` forces `a = 0` at its source and `a = 1`
    /// at its target (and dually for `a-`); every other signal keeps its
    /// value across the edge. A contradiction is exactly a violation of
    /// behavioural consistency (autoconcurrency or switchover error).
    ///
    /// # Errors
    ///
    /// See [`EncodingError`].
    pub fn compute(stg: &Stg, rg: &ReachabilityGraph) -> Result<Self, EncodingError> {
        let ns = rg.state_count();
        let nsig = stg.signal_count();
        let mut val: Vec<Vec<Option<bool>>> = vec![vec![None; nsig]; ns];

        // Seed from edge labels.
        for s in rg.states() {
            for &(t, d) in rg.successors(s) {
                let sig = stg.signal_of(t);
                let tgt = stg.direction_of(t).target_value();
                for (state, v) in [(s, !tgt), (d, tgt)] {
                    match val[state.index()][sig.index()] {
                        None => val[state.index()][sig.index()] = Some(v),
                        Some(old) if old == v => {}
                        Some(_) => return Err(EncodingError::Inconsistent { state, signal: sig }),
                    }
                }
            }
        }

        // Propagate equality of unswitched signals across edges.
        let mut work: Vec<StateId> = rg.states().collect();
        while let Some(s) = work.pop() {
            // forward and backward edges
            let fwd: Vec<(TransId, StateId)> = rg.successors(s).to_vec();
            let bwd: Vec<(TransId, StateId)> = rg.predecessors(s).to_vec();
            for (edges, other_is_succ) in [(fwd, true), (bwd, false)] {
                for (t, o) in edges {
                    let switched = stg.signal_of(t);
                    #[allow(clippy::needless_range_loop)]
                    for sig in 0..nsig {
                        if sig == switched.index() {
                            continue;
                        }
                        let (a, b) = (val[s.index()][sig], val[o.index()][sig]);
                        match (a, b) {
                            (Some(x), None) => {
                                val[o.index()][sig] = Some(x);
                                work.push(o);
                            }
                            (None, Some(x)) => {
                                val[s.index()][sig] = Some(x);
                                work.push(s);
                            }
                            (Some(x), Some(y)) if x != y => {
                                let state = if other_is_succ { o } else { s };
                                return Err(EncodingError::Inconsistent {
                                    state,
                                    signal: SignalId(sig as u16),
                                });
                            }
                            _ => {}
                        }
                    }
                }
            }
        }

        let mut codes = Vec::with_capacity(ns);
        for row in val.iter().take(ns) {
            let mut code = Bits::zeros(nsig);
            for (sig, v) in row.iter().enumerate() {
                match v {
                    Some(v) => code.set(sig, *v),
                    None => {
                        return Err(EncodingError::Undetermined {
                            signal: SignalId(sig as u16),
                        })
                    }
                }
            }
            codes.push(code);
        }
        Ok(StateEncoding { codes })
    }

    /// The binary code of a state.
    pub fn code(&self, s: StateId) -> &Bits {
        &self.codes[s.index()]
    }

    /// The value of a signal at a state.
    pub fn value(&self, s: StateId, sig: SignalId) -> bool {
        self.codes[s.index()].get(sig.index())
    }

    /// All codes, indexed by state.
    pub fn codes(&self) -> &[Bits] {
        &self.codes
    }

    /// The set of distinct reachable codes.
    pub fn distinct_codes(&self) -> std::collections::BTreeSet<Bits> {
        self.codes.iter().cloned().collect()
    }
}

/// Result of the USC/CSC ground-truth analysis (§II-D).
#[derive(Clone, Debug, Default)]
pub struct CodingAnalysis {
    /// Pairs of distinct states sharing a binary code.
    pub usc_conflicts: Vec<(StateId, StateId)>,
    /// USC conflict pairs whose enabled synthesized signals differ — real
    /// CSC violations.
    pub csc_conflicts: Vec<(StateId, StateId)>,
}

impl CodingAnalysis {
    /// Analyzes unique/complete state coding over the whole RG.
    pub fn compute(stg: &Stg, rg: &ReachabilityGraph, enc: &StateEncoding) -> Self {
        use std::collections::HashMap;
        let mut by_code: HashMap<&Bits, Vec<StateId>> = HashMap::new();
        for s in rg.states() {
            by_code.entry(enc.code(s)).or_default().push(s);
        }
        let enabled_outputs = |s: StateId| -> Vec<SignalId> {
            let mut sigs: Vec<SignalId> = rg
                .successors(s)
                .iter()
                .map(|&(t, _)| stg.signal_of(t))
                .filter(|&sig| stg.signal_kind(sig).is_synthesized())
                .collect();
            sigs.sort_unstable();
            sigs.dedup();
            sigs
        };
        let mut usc = Vec::new();
        let mut csc = Vec::new();
        for group in by_code.values() {
            for i in 0..group.len() {
                for j in i + 1..group.len() {
                    usc.push((group[i], group[j]));
                    if enabled_outputs(group[i]) != enabled_outputs(group[j]) {
                        csc.push((group[i], group[j]));
                    }
                }
            }
        }
        usc.sort_unstable();
        csc.sort_unstable();
        CodingAnalysis {
            usc_conflicts: usc,
            csc_conflicts: csc,
        }
    }

    /// Does the STG satisfy unique state coding?
    pub fn has_usc(&self) -> bool {
        self.usc_conflicts.is_empty()
    }

    /// Does the STG satisfy complete state coding?
    pub fn has_csc(&self) -> bool {
        self.csc_conflicts.is_empty()
    }
}

/// Checks output semimodularity (§II-B): no enabled synthesized-signal
/// transition may be disabled by firing a transition of another signal.
/// Returns the offending `(state, output transition, disabling transition)`
/// triples.
pub fn semimodularity_violations(
    stg: &Stg,
    rg: &ReachabilityGraph,
) -> Vec<(StateId, TransId, TransId)> {
    let mut bad = Vec::new();
    for s in rg.states() {
        let enabled: Vec<TransId> = rg.successors(s).iter().map(|&(t, _)| t).collect();
        for &t in &enabled {
            if !stg.signal_kind(stg.signal_of(t)).is_synthesized() {
                continue;
            }
            for &(u, d) in rg.successors(s) {
                if u == t || stg.signal_of(u) == stg.signal_of(t) {
                    continue;
                }
                if !stg.net().is_enabled(rg.marking(d), t) {
                    bad.push((s, t, u));
                }
            }
        }
    }
    bad
}

/// The next-state function of one signal over the reachable codes
/// (§II-E): `on`, `off` and the implicit `dc` (unreachable codes).
#[derive(Clone, Debug)]
pub struct NextStateSets {
    /// Codes where the implied next value is 1 (GER(a+) ∪ GQR(1)).
    pub on_codes: Vec<Bits>,
    /// Codes where the implied next value is 0.
    pub off_codes: Vec<Bits>,
}

impl NextStateSets {
    /// Computes the exact on/off code sets of a signal from the RG.
    ///
    /// Requires CSC to be meaningful (a shared code with contradictory
    /// implied values makes the function undefined — such a code is put in
    /// **both** sets so callers can detect the clash).
    pub fn compute(stg: &Stg, rg: &ReachabilityGraph, enc: &StateEncoding, sig: SignalId) -> Self {
        use std::collections::BTreeSet;
        let mut on = BTreeSet::new();
        let mut off = BTreeSet::new();
        for s in rg.states() {
            let enabled_dir: Option<Direction> = rg
                .successors(s)
                .iter()
                .find(|&&(t, _)| stg.signal_of(t) == sig)
                .map(|&(t, _)| stg.direction_of(t));
            let next = match enabled_dir {
                Some(d) => d.target_value(),
                None => enc.value(s, sig),
            };
            if next {
                on.insert(enc.code(s).clone());
            } else {
                off.insert(enc.code(s).clone());
            }
        }
        NextStateSets {
            on_codes: on.into_iter().collect(),
            off_codes: off.into_iter().collect(),
        }
    }

    /// `true` when a code appears in both sets (CSC clash for this signal).
    pub fn is_contradictory(&self) -> bool {
        let on: std::collections::BTreeSet<_> = self.on_codes.iter().collect();
        self.off_codes.iter().any(|c| on.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Direction::{Fall, Rise};
    use crate::signal::SignalKind;

    /// x+ -> y+ -> x- -> y- -> (loop), marked on the last arc.
    fn toggle() -> Stg {
        let mut b = Stg::builder("toggle");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let xp = b.add_transition(x, Rise);
        let yp = b.add_transition(y, Rise);
        let xm = b.add_transition(x, Fall);
        let ym = b.add_transition(y, Fall);
        b.arc(xp, yp);
        b.arc(yp, xm);
        b.arc(xm, ym);
        let p = b.arc(ym, xp);
        b.mark_place(p);
        b.build()
    }

    fn rg_of(stg: &Stg) -> ReachabilityGraph {
        ReachabilityGraph::build(stg.net(), 10_000).unwrap()
    }

    #[test]
    fn encodes_toggle() {
        let stg = toggle();
        let rg = rg_of(&stg);
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        // 4 states, codes 00 -> 10 -> 11 -> 01 around the cycle.
        assert_eq!(rg.state_count(), 4);
        let codes = enc.distinct_codes();
        assert_eq!(codes.len(), 4);
        // initial state: both signals 0
        let s0 = rg.state_of(&stg.net().initial_marking()).unwrap();
        assert!(!enc.value(s0, SignalId(0)));
        assert!(!enc.value(s0, SignalId(1)));
    }

    #[test]
    fn toggle_has_usc_and_csc() {
        let stg = toggle();
        let rg = rg_of(&stg);
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        let coding = CodingAnalysis::compute(&stg, &rg, &enc);
        assert!(coding.has_usc());
        assert!(coding.has_csc());
    }

    #[test]
    fn next_state_sets_of_toggle() {
        let stg = toggle();
        let rg = rg_of(&stg);
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        let y = stg.signal_by_name("y").unwrap();
        let ns = NextStateSets::compute(&stg, &rg, &enc, y);
        assert!(!ns.is_contradictory());
        // on: state 10 (y+ enabled) and state 11 (y stays 1) => codes {10, 11}
        assert_eq!(ns.on_codes.len(), 2);
        assert_eq!(ns.off_codes.len(), 2);
    }

    #[test]
    fn autoconcurrent_stg_rejected() {
        // Two concurrent x+ transitions: fork enables both.
        let mut b = Stg::builder("auto");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let x1 = b.add_transition(x, Rise);
        let x2 = b.add_transition(x, Rise);
        let yp = b.add_transition(y, Rise);
        // yp forks into both x+ transitions; they join into y- … keep it
        // small: x1, x2 both feed y-; y- feeds yp again.
        let ym = b.add_transition(y, Fall);
        let p = b.arc(ym, yp);
        b.mark_place(p);
        b.arc(yp, x1);
        b.arc(yp, x2);
        b.arc(x1, ym);
        b.arc(x2, ym);
        let stg = b.build();
        let rg = rg_of(&stg);
        let err = StateEncoding::compute(&stg, &rg).unwrap_err();
        assert!(matches!(err, EncodingError::Inconsistent { .. }));
    }

    #[test]
    fn switchover_violation_rejected() {
        // x+ followed by x+ again (no alternation).
        let mut b = Stg::builder("bad");
        let x = b.add_signal("x", SignalKind::Input);
        let x1 = b.add_transition(x, Rise);
        let x2 = b.add_transition(x, Rise);
        b.arc(x1, x2);
        let p = b.arc(x2, x1);
        b.mark_place(p);
        let stg = b.build();
        let rg = rg_of(&stg);
        assert!(StateEncoding::compute(&stg, &rg).is_err());
    }

    #[test]
    fn semimodularity_detects_output_disabling() {
        // Choice place feeding an output transition y+ and an input x+:
        // firing x+ disables y+ — a semimodularity violation.
        let mut b = Stg::builder("nonsemi");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let xp = b.add_transition(x, Rise);
        let yp = b.add_transition(y, Rise);
        let xm = b.add_transition(x, Fall);
        let ym = b.add_transition(y, Fall);
        let choice = b.add_place("choice", true);
        b.arc_pt(choice, xp);
        b.arc_pt(choice, yp);
        let back_x = b.arc(xp, xm);
        let back_y = b.arc(yp, ym);
        let _ = back_x;
        let _ = back_y;
        b.arc_tp(xm, choice);
        b.arc_tp(ym, choice);
        let stg = b.build();
        let rg = rg_of(&stg);
        let bad = semimodularity_violations(&stg, &rg);
        assert!(!bad.is_empty());
        // the disabled transition is the output y+
        assert!(bad.iter().any(
            |&(_, t, u)| stg.transition_display(t) == "y+" && stg.transition_display(u) == "x+"
        ));
    }

    #[test]
    fn semimodular_toggle_is_clean() {
        let stg = toggle();
        let rg = rg_of(&stg);
        assert!(semimodularity_violations(&stg, &rg).is_empty());
    }
}
