//! Structural consistency verification (§V-B, Fig. 9 of the paper).
//!
//! Consistency = non-autoconcurrency + switchover correctness. Both are
//! decided **structurally**: autoconcurrency through the signal concurrency
//! relation (SCR), switchover through the *adjacency* sets `next(t)`
//! computed by path analysis:
//!
//! * a **sound** search (Property 4 filter: paths avoiding transitions of
//!   the signal and places concurrent to it) — every pair it finds is truly
//!   adjacent;
//! * a **completing** search (Property 5): a relaxed traversal proposes
//!   extra candidates, which are confirmed by enumerating simple paths and
//!   checking that the path survives the forward reduction by the signal's
//!   transitions concurrent to its places (i.e. the path is realizable by a
//!   firing sequence with no transition of the signal).
//!
//! The paper observes the completing search is "rarely met in practice";
//! the implementation mirrors that by only running it when the relaxed
//! traversal finds more than the sound one.

use crate::signal::SignalId;
use crate::stg::Stg;
use si_boolean::Bits;
use si_petri::{ConcurrencyRelation, ForwardReduction, PlaceId, ReachabilityGraph, TransId};

/// Signal concurrency relation (Def. 3): node ‖ signal iff the node is
/// concurrent with some transition of the signal.
#[derive(Clone, Debug)]
pub struct SignalConcurrency {
    /// `place_rows[p]` — bit per signal.
    place_rows: Vec<Bits>,
    /// `trans_rows[t]` — bit per signal.
    trans_rows: Vec<Bits>,
}

impl SignalConcurrency {
    /// Derives the SCR from the node-level concurrency relation.
    pub fn compute(stg: &Stg, cr: &ConcurrencyRelation) -> Self {
        let nsig = stg.signal_count();
        let np = stg.net().place_count();
        let nt = stg.net().transition_count();
        let mut place_rows = vec![Bits::zeros(nsig); np];
        let mut trans_rows = vec![Bits::zeros(nsig); nt];
        for t in stg.net().transitions() {
            let sig = stg.signal_of(t);
            for p in stg.net().places() {
                if cr.place_transition(p, t) {
                    place_rows[p.index()].set(sig.index(), true);
                }
            }
            for u in stg.net().transitions() {
                if u != t && cr.transitions(u, t) {
                    trans_rows[u.index()].set(sig.index(), true);
                }
            }
        }
        SignalConcurrency {
            place_rows,
            trans_rows,
        }
    }

    /// Is place `p` concurrent with signal `s`?
    pub fn place(&self, p: PlaceId, s: SignalId) -> bool {
        self.place_rows[p.index()].get(s.index())
    }

    /// Is transition `t` concurrent with signal `s`?
    pub fn transition(&self, t: TransId, s: SignalId) -> bool {
        self.trans_rows[t.index()].get(s.index())
    }
}

/// Why structural consistency failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsistencyError {
    /// A transition is concurrent with its own signal.
    Autoconcurrent {
        /// The offending transition.
        transition: TransId,
    },
    /// Adjacent transitions of one signal have equal directions.
    SwitchoverViolation {
        /// The earlier transition.
        from: TransId,
        /// The adjacent successor with the non-alternating direction.
        to: TransId,
    },
    /// A transition has no adjacent successor of its own signal — the
    /// signal cannot alternate (non-live or malformed STG).
    NoSuccessor {
        /// The transition without successors.
        transition: TransId,
    },
}

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::Autoconcurrent { transition } => {
                write!(f, "transition {transition} is autoconcurrent")
            }
            ConsistencyError::SwitchoverViolation { from, to } => {
                write!(f, "adjacent transitions {from} -> {to} do not alternate")
            }
            ConsistencyError::NoSuccessor { transition } => {
                write!(f, "transition {transition} has no same-signal successor")
            }
        }
    }
}

impl std::error::Error for ConsistencyError {}

/// Adjacency sets of all transitions plus the relations they were derived
/// from — the output of the Fig. 9 algorithm.
#[derive(Clone, Debug)]
pub struct StgAnalysis {
    /// Node-level concurrency relation.
    pub cr: ConcurrencyRelation,
    /// Signal concurrency relation.
    pub scr: SignalConcurrency,
    /// `next[t]` — adjacent same-signal successors of `t` (Prop. 4+5).
    pub next: Vec<Vec<TransId>>,
    /// `prev[t]` — inverse of `next`.
    pub prev: Vec<Vec<TransId>>,
}

impl StgAnalysis {
    /// Runs the full structural consistency analysis.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConsistencyError`] encountered.
    pub fn analyze(stg: &Stg) -> Result<Self, ConsistencyError> {
        let cr = ConcurrencyRelation::compute(stg.net());
        let scr = SignalConcurrency::compute(stg, &cr);

        // Non-autoconcurrency (Fig. 9 step 1).
        for t in stg.net().transitions() {
            if scr.transition(t, stg.signal_of(t)) {
                return Err(ConsistencyError::Autoconcurrent { transition: t });
            }
        }

        // Adjacency (Fig. 9 steps 2-3).
        let nt = stg.net().transition_count();
        let mut next: Vec<Vec<TransId>> = vec![Vec::new(); nt];
        for t in stg.net().transitions() {
            let sig = stg.signal_of(t);
            let sound = reachable_same_signal(stg, &scr, t, true);
            let relaxed = reachable_same_signal(stg, &scr, t, false);
            let mut found = sound.clone();
            for &cand in &relaxed {
                if !found.contains(&cand) && confirm_adjacency(stg, &cr, t, cand) {
                    found.push(cand);
                }
            }
            found.sort_unstable();
            if found.is_empty() && stg.transitions_of(sig).len() > 1 {
                return Err(ConsistencyError::NoSuccessor { transition: t });
            }
            if found.is_empty() {
                return Err(ConsistencyError::NoSuccessor { transition: t });
            }
            // Switchover correctness.
            for &u in &found {
                if stg.direction_of(u) != stg.direction_of(t).opposite() {
                    return Err(ConsistencyError::SwitchoverViolation { from: t, to: u });
                }
            }
            next[t.index()] = found;
        }

        let mut prev: Vec<Vec<TransId>> = vec![Vec::new(); nt];
        for t in stg.net().transitions() {
            for &u in &next[t.index()] {
                prev[u.index()].push(t);
            }
        }
        for v in &mut prev {
            v.sort_unstable();
        }

        Ok(StgAnalysis {
            cr,
            scr,
            next,
            prev,
        })
    }

    /// Adjacent successors of `t`.
    pub fn next_of(&self, t: TransId) -> &[TransId] {
        &self.next[t.index()]
    }

    /// Adjacent predecessors of `t`.
    pub fn prev_of(&self, t: TransId) -> &[TransId] {
        &self.prev[t.index()]
    }
}

/// Graph search from `t` towards same-signal transitions.
///
/// With `strict` the Property 4 filter applies: places concurrent to the
/// signal are not traversed (sound). Without it only same-signal
/// transitions block the walk (complete but optimistic).
fn reachable_same_signal(
    stg: &Stg,
    scr: &SignalConcurrency,
    t: TransId,
    strict: bool,
) -> Vec<TransId> {
    let sig = stg.signal_of(t);
    let net = stg.net();
    let mut seen_p = Bits::zeros(net.place_count());
    let mut seen_t = Bits::zeros(net.transition_count());
    let mut found = Vec::new();
    // worklist of transitions whose outputs we expand
    let mut stack = vec![t];
    seen_t.set(t.index(), true);
    while let Some(u) = stack.pop() {
        for &p in net.post_t(u) {
            if seen_p.get(p.index()) {
                continue;
            }
            if strict && scr.place(p, sig) {
                continue;
            }
            seen_p.set(p.index(), true);
            for &v in net.post_p(p) {
                if seen_t.get(v.index()) {
                    continue;
                }
                if stg.signal_of(v) == sig {
                    seen_t.set(v.index(), true);
                    found.push(v);
                    continue; // do not walk through same-signal transitions
                }
                seen_t.set(v.index(), true);
                stack.push(v);
            }
        }
    }
    found
}

/// Property 5 confirmation: does a simple path `t → … → cand` (through no
/// other same-signal transition) exist that survives the forward reduction
/// by the signal's transitions concurrent to the path's places?
fn confirm_adjacency(stg: &Stg, cr: &ConcurrencyRelation, t: TransId, cand: TransId) -> bool {
    realizable_path_exists(stg, cr, t, cand, None)
}

/// Searches for a realizable simple path `start → … → target` avoiding
/// other transitions of `start`'s signal, optionally forced through the
/// place `via`. Shared by adjacency confirmation and the interleave
/// relation (Property 5 / Def. 8).
pub(crate) fn realizable_path_exists(
    stg: &Stg,
    cr: &ConcurrencyRelation,
    start: TransId,
    target: TransId,
    via: Option<PlaceId>,
) -> bool {
    let sig = stg.signal_of(start);
    let net = stg.net();
    let budget = &mut 20_000usize;
    // DFS over simple paths; nodes on current path tracked in two bitmaps.
    let mut on_path_p = Bits::zeros(net.place_count());
    let mut on_path_t = Bits::zeros(net.transition_count());
    on_path_t.set(start.index(), true);
    let mut path_places: Vec<PlaceId> = Vec::new();
    let mut path_trans: Vec<TransId> = Vec::new();
    dfs_paths(
        stg,
        cr,
        sig,
        start,
        start,
        target,
        via,
        &mut on_path_p,
        &mut on_path_t,
        &mut path_places,
        &mut path_trans,
        budget,
    )
}

#[allow(clippy::too_many_arguments)]
fn dfs_paths(
    stg: &Stg,
    cr: &ConcurrencyRelation,
    sig: SignalId,
    start: TransId,
    cur: TransId,
    target: TransId,
    via: Option<PlaceId>,
    on_path_p: &mut Bits,
    on_path_t: &mut Bits,
    path_places: &mut Vec<PlaceId>,
    path_trans: &mut Vec<TransId>,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let net = stg.net();
    for &p in net.post_t(cur) {
        if on_path_p.get(p.index()) {
            continue;
        }
        on_path_p.set(p.index(), true);
        path_places.push(p);
        for &v in net.post_p(p) {
            if v == target {
                // Candidate path complete: via + realizability checks.
                let via_ok = via.is_none_or(|x| on_path_p.get(x.index()));
                if via_ok && path_realizable(stg, cr, sig, start, target, path_places, path_trans) {
                    path_places.pop();
                    on_path_p.set(p.index(), false);
                    return true;
                }
                continue;
            }
            if on_path_t.get(v.index()) || stg.signal_of(v) == sig {
                continue;
            }
            on_path_t.set(v.index(), true);
            path_trans.push(v);
            let hit = dfs_paths(
                stg,
                cr,
                sig,
                start,
                v,
                target,
                via,
                on_path_p,
                on_path_t,
                path_places,
                path_trans,
                budget,
            );
            path_trans.pop();
            on_path_t.set(v.index(), false);
            if hit {
                path_places.pop();
                on_path_p.set(p.index(), false);
                return true;
            }
        }
        path_places.pop();
        on_path_p.set(p.index(), false);
    }
    false
}

/// The Property 5 condition on one concrete path.
fn path_realizable(
    stg: &Stg,
    cr: &ConcurrencyRelation,
    sig: SignalId,
    start: TransId,
    target: TransId,
    path_places: &[PlaceId],
    path_trans: &[TransId],
) -> bool {
    // Transitions of the signal concurrent to some place of the path (other
    // than the endpoints) must be removable without starving the path. The
    // start transition has already fired, so it must never be removed.
    let offenders: Vec<TransId> = stg
        .transitions_of(sig)
        .iter()
        .copied()
        .filter(|&u| u != target && u != start)
        .filter(|&u| path_places.iter().any(|&p| cr.place_transition(p, u)))
        .collect();
    if offenders.is_empty() {
        return true;
    }
    // Every node of the path — places AND intermediate transitions — must
    // survive the reduction, otherwise realizing the path needs a firing of
    // a removed transition upstream (Property 5).
    let red = ForwardReduction::compute(stg.net(), &offenders);
    path_places.iter().all(|&p| red.place_alive(p))
        && path_trans.iter().all(|&t| red.transition_alive(t))
        && red.transition_alive(target)
}

/// Behavioural adjacency oracle: `u ∈ next(t)` iff some firing of `t` is
/// followed by a firing of `u` with no transition of the signal in between.
/// Used by tests to validate the structural computation.
pub fn next_behavioural(stg: &Stg, rg: &ReachabilityGraph, t: TransId) -> Vec<TransId> {
    let sig = stg.signal_of(t);
    let mut reach = Bits::zeros(rg.state_count());
    let mut stack = Vec::new();
    for s in rg.states() {
        for &(u, d) in rg.successors(s) {
            if u == t && !reach.get(d.index()) {
                reach.set(d.index(), true);
                stack.push(d);
            }
        }
    }
    let mut found: Vec<TransId> = Vec::new();
    while let Some(s) = stack.pop() {
        for &(u, d) in rg.successors(s) {
            if stg.signal_of(u) == sig {
                if !found.contains(&u) {
                    found.push(u);
                }
                continue;
            }
            if !reach.get(d.index()) {
                reach.set(d.index(), true);
                stack.push(d);
            }
        }
    }
    found.sort_unstable();
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Direction::{Fall, Rise};
    use crate::signal::SignalKind;
    use crate::stg::Stg;

    fn toggle() -> Stg {
        let mut b = Stg::builder("toggle");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let xp = b.add_transition(x, Rise);
        let yp = b.add_transition(y, Rise);
        let xm = b.add_transition(x, Fall);
        let ym = b.add_transition(y, Fall);
        b.arc(xp, yp);
        b.arc(yp, xm);
        b.arc(xm, ym);
        let p = b.arc(ym, xp);
        b.mark_place(p);
        b.build()
    }

    #[test]
    fn toggle_is_consistent() {
        let stg = toggle();
        let a = StgAnalysis::analyze(&stg).unwrap();
        let xp = stg.transition_by_display("x+").unwrap();
        let xm = stg.transition_by_display("x-").unwrap();
        assert_eq!(a.next_of(xp), &[xm]);
        assert_eq!(a.prev_of(xm), &[xp]);
    }

    #[test]
    fn structural_matches_behavioural_next() {
        let stg = toggle();
        let a = StgAnalysis::analyze(&stg).unwrap();
        let rg = ReachabilityGraph::build(stg.net(), 1000).unwrap();
        for t in stg.net().transitions() {
            assert_eq!(a.next_of(t), next_behavioural(&stg, &rg, t).as_slice());
        }
    }

    #[test]
    fn autoconcurrency_detected() {
        let mut b = Stg::builder("auto");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let x1 = b.add_transition(x, Rise);
        let x2 = b.add_transition(x, Rise);
        let yp = b.add_transition(y, Rise);
        let ym = b.add_transition(y, Fall);
        let p = b.arc(ym, yp);
        b.mark_place(p);
        b.arc(yp, x1);
        b.arc(yp, x2);
        b.arc(x1, ym);
        b.arc(x2, ym);
        let stg = b.build();
        match StgAnalysis::analyze(&stg) {
            Err(ConsistencyError::Autoconcurrent { .. }) => {}
            other => panic!("expected autoconcurrency, got {other:?}"),
        }
    }

    #[test]
    fn switchover_violation_detected() {
        // x+ followed by x+ (same direction, adjacent).
        let mut b = Stg::builder("bad");
        let x = b.add_signal("x", SignalKind::Input);
        let x1 = b.add_transition(x, Rise);
        let x2 = b.add_transition(x, Rise);
        b.arc(x1, x2);
        let p = b.arc(x2, x1);
        b.mark_place(p);
        let stg = b.build();
        match StgAnalysis::analyze(&stg) {
            Err(ConsistencyError::SwitchoverViolation { .. }) => {}
            other => panic!("expected switchover violation, got {other:?}"),
        }
    }

    #[test]
    fn scr_of_concurrent_branch() {
        // fork: x handshake ∥ y handshake; places of the x branch are
        // concurrent with signal y and vice versa.
        let mut b = Stg::builder("par");
        let r = b.add_signal("r", SignalKind::Input);
        let x = b.add_signal("x", SignalKind::Output);
        let y = b.add_signal("y", SignalKind::Output);
        let rp = b.add_transition(r, Rise);
        let rm = b.add_transition(r, Fall);
        let xp = b.add_transition(x, Rise);
        let xm = b.add_transition(x, Fall);
        let yp = b.add_transition(y, Rise);
        let ym = b.add_transition(y, Fall);
        b.arc(rp, xp);
        let px = b.arc(xp, xm);
        b.arc(rp, yp);
        let py = b.arc(yp, ym);
        b.arc(xm, rm);
        b.arc(ym, rm);
        let p0 = b.arc(rm, rp);
        b.mark_place(p0);
        let stg = b.build();
        let a = StgAnalysis::analyze(&stg).unwrap();
        assert!(a.scr.place(px, y));
        assert!(a.scr.place(py, x));
        assert!(!a.scr.place(px, x));
        assert!(!a.scr.place(p0, x));
        let xp_t = stg.transition_by_display("x+").unwrap();
        assert!(a.scr.transition(xp_t, y));
        assert!(!a.scr.transition(xp_t, r));
    }
}
