//! Signal transition graphs for speed-independent circuit synthesis.
//!
//! Part of the `sisyn` workspace reproducing Pastor, Cortadella, Kondratyev
//! and Roig, *“Structural Methods for the Synthesis of Speed-Independent
//! Circuits”*. This crate provides the STG model and everything of §II and
//! §V that interprets the Petri net as a circuit specification:
//!
//! * [`Stg`] with [`SignalKind`]/[`Direction`]-labelled transitions;
//! * the `.g` interchange format ([`parse_g`], [`write_g`]);
//! * structural consistency per Fig. 9 ([`StgAnalysis`]) with the signal
//!   concurrency relation and the adjacency (`next`) sets;
//! * the interleave relation and quiescent place sets (Def. 8, Fig. 10);
//! * ground-truth oracles on the explicit reachability graph: encoding
//!   ([`StateEncoding`]), USC/CSC ([`CodingAnalysis`]), semimodularity,
//!   exact signal regions ([`SignalRegions`]);
//! * the benchmark suite and scalable generators of §IX.
//!
//! # Examples
//!
//! ```
//! use si_stg::{parse_g, StgAnalysis};
//!
//! let stg = parse_g("\
//! .model toggle
//! .inputs x
//! .outputs y
//! .graph
//! x+ y+
//! y+ x-
//! x- y-
//! y- x+
//! .marking { <y-,x+> }
//! .end
//! ")?;
//! let analysis = StgAnalysis::analyze(&stg).expect("consistent");
//! let xp = stg.transition_by_display("x+").unwrap();
//! assert_eq!(analysis.next_of(xp).len(), 1);
//! # Ok::<(), si_stg::ParseGError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmarks;
mod canonical;
mod consistency;
mod dot;
pub mod edit;
mod encode;
pub mod generators;
mod interleave;
mod parse;
mod regions;
mod signal;
mod stg;
pub mod symbolic;
mod waveform;

pub use canonical::canonical_g;
pub use consistency::{next_behavioural, ConsistencyError, SignalConcurrency, StgAnalysis};
pub use dot::{rg_to_dot, stg_to_dot};
pub use edit::{apply_insertion, apply_insertion_mapped, InsertionMap, InsertionPlan};
pub use encode::{
    semimodularity_violations, CodingAnalysis, EncodingError, NextStateSets, StateEncoding,
};
pub use interleave::{interleaved_nodes, quiescent_place_set, InterleavedNodes};
pub use parse::{parse_g, write_g, ParseGError};
pub use regions::{codes_of, SignalRegions, StateSet};
pub use signal::{Direction, SignalId, SignalKind, TransitionLabel};
pub use stg::{Stg, StgBuilder};
pub use symbolic::{SymbolicAnalysis, SymbolicConsistency};
pub use waveform::render_waveform;
