//! STG edits for state-signal insertion (§VI: "by adding state signals,
//! the covers can always be reduced to nonintersecting").
//!
//! An [`InsertionPlan`] describes how one internal signal is woven into an
//! STG:
//!
//! * `x+` and `x-` are inserted by **splitting** two simple places — the
//!   transition pairs they connect become `t → x± → u`;
//! * optionally `x+` additionally **waits** for other transitions (join
//!   arcs, possibly initially marked) — the shape needed by e.g. the VME
//!   bus controller, where the rising edge must also wait for the release
//!   phase to finish.
//!
//! [`apply_insertion`] performs the surgery; [`apply_insertion_mapped`]
//! additionally returns the [`InsertionMap`] relating the node ids of the
//! two STGs — the input of the incremental structural re-analysis in
//! `si-core` (old transition ids are preserved; old place ids shift past
//! the split positions).

use crate::signal::{Direction, SignalId, SignalKind};
use crate::stg::Stg;
use si_petri::{PlaceId, TransId};

/// One candidate insertion of a state signal.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct InsertionPlan {
    /// The simple place split by the rising transition.
    pub rise_split: PlaceId,
    /// The simple place split by the falling transition.
    pub fall_split: PlaceId,
    /// Extra preset arcs of the rising transition: `(producer, marked)`.
    pub rise_waits: Vec<(TransId, bool)>,
}

/// How the nodes of an insertion result relate to the nodes of the input
/// STG. Transitions keep their ids (the two new transitions are appended);
/// unsplit places shift by the number of split positions before them, the
/// two split places become two halves each, and wait places are appended.
#[derive(Clone, Debug)]
pub struct InsertionMap {
    /// `old place → new place` (`None` for the two split places).
    pub place_to_new: Vec<Option<PlaceId>>,
    /// `new place → old place` (`None` for split halves and wait places).
    pub place_to_old: Vec<Option<PlaceId>>,
    /// The inserted signal (always the last signal of the result).
    pub signal: SignalId,
    /// The rising transition `x+`.
    pub rise: TransId,
    /// The falling transition `x-`.
    pub fall: TransId,
    /// `(producer-side, consumer-side)` halves of the rise split.
    pub rise_halves: (PlaceId, PlaceId),
    /// `(producer-side, consumer-side)` halves of the fall split.
    pub fall_halves: (PlaceId, PlaceId),
    /// The appended wait places, in `rise_waits` order.
    pub wait_places: Vec<PlaceId>,
}

/// Applies an insertion plan, producing a new STG with one more internal
/// signal named `name`.
///
/// # Panics
///
/// Panics if a split place is not simple (one producer, one consumer) or
/// is initially marked.
pub fn apply_insertion(stg: &Stg, name: &str, plan: &InsertionPlan) -> Stg {
    apply_insertion_mapped(stg, name, plan).0
}

/// Like [`apply_insertion`] but also returns the node-id correspondence.
///
/// # Panics
///
/// As [`apply_insertion`].
pub fn apply_insertion_mapped(stg: &Stg, name: &str, plan: &InsertionPlan) -> (Stg, InsertionMap) {
    let net = stg.net();
    for &p in [&plan.rise_split, &plan.fall_split] {
        assert_eq!(net.pre_p(p).len(), 1, "split place must be simple");
        assert_eq!(net.post_p(p).len(), 1, "split place must be simple");
        assert!(
            !net.initial_marking().get(p.index()),
            "split place must be unmarked"
        );
    }
    let mut b = Stg::builder(format!("{}_{}", stg.name(), name));
    // Signals.
    let mut sig_map = Vec::new();
    for s in stg.signals() {
        sig_map.push(b.add_signal(stg.signal_name(s), stg.signal_kind(s)));
    }
    let x = b.add_signal(name, SignalKind::Internal);
    // Transitions (same order ⇒ same ids).
    let mut t_map = Vec::new();
    for t in net.transitions() {
        let l = stg.label(t);
        t_map.push(b.add_transition_with_instance(
            sig_map[l.signal.index()],
            l.direction,
            l.instance,
        ));
    }
    let xp = b.add_transition(x, Direction::Rise);
    let xm = b.add_transition(x, Direction::Fall);

    // Places and arcs; split places are re-routed through x+/x-.
    let mut place_to_new: Vec<Option<PlaceId>> = vec![None; net.place_count()];
    let mut next_place = 0u32;
    let mut rise_halves = (PlaceId(0), PlaceId(0));
    let mut fall_halves = (PlaceId(0), PlaceId(0));
    for p in net.places() {
        if p == plan.rise_split || p == plan.fall_split {
            let xt = if p == plan.rise_split { xp } else { xm };
            let producer = t_map[net.pre_p(p)[0].index()];
            let consumer = t_map[net.post_p(p)[0].index()];
            let in_half = b.arc(producer, xt);
            let out_half = b.arc(xt, consumer);
            if p == plan.rise_split {
                rise_halves = (in_half, out_half);
            } else {
                fall_halves = (in_half, out_half);
            }
            next_place += 2;
        } else {
            let np = b.add_place(net.place_name(p), net.initial_marking().get(p.index()));
            debug_assert_eq!(np.0, next_place);
            place_to_new[p.index()] = Some(np);
            next_place += 1;
            for &t in net.pre_p(p) {
                b.arc_tp(t_map[t.index()], np);
            }
            for &t in net.post_p(p) {
                b.arc_pt(np, t_map[t.index()]);
            }
        }
    }
    let mut wait_places = Vec::with_capacity(plan.rise_waits.len());
    for &(producer, marked) in &plan.rise_waits {
        let wp = b.add_place(format!("<wait_{}>", producer.index()), marked);
        b.arc_tp(t_map[producer.index()], wp);
        b.arc_pt(wp, xp);
        wait_places.push(wp);
    }
    let out = b.build();
    let mut place_to_old: Vec<Option<PlaceId>> = vec![None; out.net().place_count()];
    for (old, new) in place_to_new.iter().enumerate() {
        if let Some(np) = new {
            place_to_old[np.index()] = Some(PlaceId(old as u32));
        }
    }
    let map = InsertionMap {
        place_to_new,
        place_to_old,
        signal: x,
        rise: xp,
        fall: xm,
        rise_halves,
        fall_halves,
        wait_places,
    };
    (out, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn map_tracks_split_halves_and_waits() {
        let stg = benchmarks::half_handshake();
        let net = stg.net();
        let ap = stg.transition_by_display("a+").unwrap();
        let am = stg.transition_by_display("a-").unwrap();
        let bp = stg.transition_by_display("b+").unwrap();
        let plan = InsertionPlan {
            rise_split: net.post_t(ap)[0],
            fall_split: net.post_t(am)[0],
            rise_waits: vec![(bp, false)],
        };
        let (out, map) = apply_insertion_mapped(&stg, "x", &plan);
        assert_eq!(out.signal_count(), stg.signal_count() + 1);
        assert_eq!(out.net().transition_count(), net.transition_count() + 2);
        // Two splits add one place each; one wait adds another.
        assert_eq!(out.net().place_count(), net.place_count() + 3);
        // Transitions keep their ids; labels carry over.
        for t in net.transitions() {
            assert_eq!(out.transition_display(t), stg.transition_display(t));
        }
        assert_eq!(out.transition_display(map.rise), "x+");
        assert_eq!(out.transition_display(map.fall), "x-");
        // The map is a bijection on unsplit places.
        let mut mapped = 0;
        for (old, new) in map.place_to_new.iter().enumerate() {
            if let Some(np) = new {
                assert_eq!(map.place_to_old[np.index()], Some(PlaceId(old as u32)));
                assert_eq!(
                    out.net().place_name(*np),
                    net.place_name(PlaceId(old as u32))
                );
                mapped += 1;
            }
        }
        assert_eq!(mapped, net.place_count() - 2);
        // Halves route through the new transitions.
        assert_eq!(out.net().post_p(map.rise_halves.0), &[map.rise]);
        assert_eq!(out.net().pre_p(map.rise_halves.1), &[map.rise]);
        assert_eq!(out.net().post_p(map.fall_halves.0), &[map.fall]);
        assert_eq!(out.net().pre_p(map.fall_halves.1), &[map.fall]);
        assert_eq!(out.net().post_p(map.wait_places[0]), &[map.rise]);
    }

    #[test]
    fn mapped_equals_unmapped() {
        let stg = benchmarks::vme_read_raw();
        let net = stg.net();
        let splittable: Vec<PlaceId> = net
            .places()
            .filter(|&p| {
                net.pre_p(p).len() == 1
                    && net.post_p(p).len() == 1
                    && !net.initial_marking().get(p.index())
            })
            .collect();
        let plan = InsertionPlan {
            rise_split: splittable[0],
            fall_split: splittable[1],
            rise_waits: Vec::new(),
        };
        let a = apply_insertion(&stg, "csc0", &plan);
        let (b, _) = apply_insertion_mapped(&stg, "csc0", &plan);
        assert_eq!(crate::parse::write_g(&a), crate::parse::write_g(&b));
    }
}
