//! The interleave relation (Def. 8 of the paper).
//!
//! A node `x` is interleaved with an adjacent transition pair `(t, t')` of
//! signal `a` when some path `t → … → x → … → t'` is realizable by a firing
//! sequence containing no other transition of `a`. Interleaving determines
//!
//! * the **literal values** of marked-region cover cubes (Lemma 10): a place
//!   non-concurrent with `a`, interleaved between `a+` and `a-`, has `a = 1`
//!   throughout its marked region;
//! * the **quiescent place sets** QPS (§VI-A, Fig. 10): the domain of the
//!   QR approximations.
//!
//! Like adjacency, the computation is two-tier: a sound filtered traversal
//! (Property 4 conditions), then a completing pass that confirms extra
//! candidates with the forward-reduction realizability check (Property 5).

use crate::consistency::{realizable_path_exists, StgAnalysis};
use crate::stg::Stg;
use si_boolean::Bits;
use si_petri::{PlaceId, TransId};

/// The nodes interleaved with one adjacent transition pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterleavedNodes {
    /// Interleaved places (bit per place).
    pub places: Bits,
    /// Interleaved transitions (bit per transition), endpoints included.
    pub transitions: Bits,
}

/// Computes the nodes interleaved between adjacent transitions `from` and
/// `to` (which should satisfy `to ∈ next(from)`).
pub fn interleaved_nodes(
    stg: &Stg,
    analysis: &StgAnalysis,
    from: TransId,
    to: TransId,
) -> InterleavedNodes {
    let (fwd_p, fwd_t) = directed_reach(stg, analysis, from, to, true, true);
    let (bwd_p, bwd_t) = directed_reach(stg, analysis, to, from, false, true);
    let mut places = fwd_p.clone();
    places.intersect_with(&bwd_p);
    let mut transitions = fwd_t.clone();
    transitions.intersect_with(&bwd_t);

    // Completing pass: nodes on relaxed paths that the strict filter missed.
    let (rfwd_p, _) = directed_reach(stg, analysis, from, to, true, false);
    let (rbwd_p, _) = directed_reach(stg, analysis, to, from, false, false);
    let mut relaxed_places = rfwd_p;
    relaxed_places.intersect_with(&rbwd_p);
    relaxed_places.subtract(&places);
    for i in relaxed_places.iter_ones() {
        let p = PlaceId(i as u32);
        if realizable_path_exists(stg, &analysis.cr, from, to, Some(p)) {
            places.set(i, true);
        }
    }

    transitions.set(from.index(), true);
    transitions.set(to.index(), true);
    InterleavedNodes {
        places,
        transitions,
    }
}

/// One-directional filtered reachability from `start` toward `stop`,
/// collecting visited nodes. `forward` chooses arc direction; `strict`
/// applies the Property 4 place filter (no places concurrent to the
/// signal of `start`).
fn directed_reach(
    stg: &Stg,
    analysis: &StgAnalysis,
    start: TransId,
    stop: TransId,
    forward: bool,
    strict: bool,
) -> (Bits, Bits) {
    let sig = stg.signal_of(start);
    let net = stg.net();
    let mut seen_p = Bits::zeros(net.place_count());
    let mut seen_t = Bits::zeros(net.transition_count());
    let mut stack = vec![start];
    seen_t.set(start.index(), true);
    while let Some(u) = stack.pop() {
        let places = if forward { net.post_t(u) } else { net.pre_t(u) };
        for &p in places {
            if seen_p.get(p.index()) {
                continue;
            }
            if strict && analysis.scr.place(p, sig) {
                continue;
            }
            seen_p.set(p.index(), true);
            let nexts = if forward { net.post_p(p) } else { net.pre_p(p) };
            for &v in nexts {
                if seen_t.get(v.index()) {
                    continue;
                }
                seen_t.set(v.index(), true);
                if v == stop {
                    continue; // endpoint reached; do not walk through it
                }
                if stg.signal_of(v) == sig {
                    continue; // other same-signal transitions block the walk
                }
                stack.push(v);
            }
        }
    }
    (seen_p, seen_t)
}

/// The quiescent place set of a transition (Fig. 10): all places
/// interleaved between `t` and some `t' ∈ next(t)`.
pub fn quiescent_place_set(stg: &Stg, analysis: &StgAnalysis, t: TransId) -> Bits {
    let mut qps = Bits::zeros(stg.net().place_count());
    for &succ in analysis.next_of(t) {
        qps.union_with(&interleaved_nodes(stg, analysis, t, succ).places);
    }
    qps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Direction::{Fall, Rise};
    use crate::signal::SignalKind;

    /// x+ -> y+ -> x- -> y- loop, marked on the last arc.
    fn toggle() -> Stg {
        let mut b = Stg::builder("toggle");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let xp = b.add_transition(x, Rise);
        let yp = b.add_transition(y, Rise);
        let xm = b.add_transition(x, Fall);
        let ym = b.add_transition(y, Fall);
        b.arc(xp, yp);
        b.arc(yp, xm);
        b.arc(xm, ym);
        let p = b.arc(ym, xp);
        b.mark_place(p);
        b.build()
    }

    #[test]
    fn toggle_interleaving() {
        let stg = toggle();
        let a = StgAnalysis::analyze(&stg).unwrap();
        let xp = stg.transition_by_display("x+").unwrap();
        let xm = stg.transition_by_display("x-").unwrap();
        // Between x+ and x-: places <x+,y+> and <y+,x->, transition y+.
        let il = interleaved_nodes(&stg, &a, xp, xm);
        assert_eq!(il.places.count_ones(), 2);
        let yp = stg.transition_by_display("y+").unwrap();
        assert!(il.transitions.get(yp.index()));
        // endpoints included
        assert!(il.transitions.get(xp.index()) && il.transitions.get(xm.index()));
    }

    #[test]
    fn qps_of_toggle() {
        let stg = toggle();
        let a = StgAnalysis::analyze(&stg).unwrap();
        let yp = stg.transition_by_display("y+").unwrap();
        let qps = quiescent_place_set(&stg, &a, yp);
        // Between y+ and y-: places <y+,x-> and <x-,y->.
        assert_eq!(qps.count_ones(), 2);
    }

    #[test]
    fn concurrent_branch_is_not_interleaved() {
        // r+ forks to (x+ ; x-) and (y+ ; y-), join at r-.
        // The y-branch places are NOT interleaved between x+ and x-.
        let mut b = Stg::builder("par");
        let r = b.add_signal("r", SignalKind::Input);
        let x = b.add_signal("x", SignalKind::Output);
        let y = b.add_signal("y", SignalKind::Output);
        let rp = b.add_transition(r, Rise);
        let rm = b.add_transition(r, Fall);
        let xp = b.add_transition(x, Rise);
        let xm = b.add_transition(x, Fall);
        let yp = b.add_transition(y, Rise);
        let ym = b.add_transition(y, Fall);
        b.arc(rp, xp);
        let px = b.arc(xp, xm);
        b.arc(rp, yp);
        let py = b.arc(yp, ym);
        b.arc(xm, rm);
        b.arc(ym, rm);
        let p0 = b.arc(rm, rp);
        b.mark_place(p0);
        let stg = b.build();
        let a = StgAnalysis::analyze(&stg).unwrap();
        let xp_t = stg.transition_by_display("x+").unwrap();
        let xm_t = stg.transition_by_display("x-").unwrap();
        let il = interleaved_nodes(&stg, &a, xp_t, xm_t);
        assert!(il.places.get(px.index()));
        assert!(!il.places.get(py.index()));
        assert!(!il.places.get(p0.index()));
    }
}
