//! ASCII waveform rendering of firing traces.
//!
//! Turns a sequence of fired transitions into a timing diagram — the
//! debugging view asynchronous designers actually read:
//!
//! ```text
//! req   _/~~~~~\____
//! ack   __/~~~~~\___
//! ```

use crate::stg::Stg;
use si_petri::TransId;
use std::fmt::Write;

/// Renders a firing trace as one ASCII waveform row per signal.
///
/// The initial value of every signal is taken from the direction of its
/// first transition in the trace (a rising first edge implies an initial
/// 0); signals that never fire are drawn at 0.
pub fn render_waveform(stg: &Stg, trace: &[TransId]) -> String {
    let nsig = stg.signal_count();
    // Determine initial values.
    let mut value = vec![false; nsig];
    let mut seen = vec![false; nsig];
    for &t in trace {
        let s = stg.signal_of(t).index();
        if !seen[s] {
            seen[s] = true;
            value[s] = !stg.direction_of(t).target_value();
        }
    }
    let width = stg
        .signals()
        .map(|s| stg.signal_name(s).len())
        .max()
        .unwrap_or(0);
    let mut rows: Vec<String> = stg
        .signals()
        .map(|s| format!("{:<width$} ", stg.signal_name(s)))
        .collect();
    let push_step = |value: &[bool], rows: &mut Vec<String>, edge: Option<usize>| {
        for (i, row) in rows.iter_mut().enumerate() {
            let ch = match edge {
                Some(e) if e == i => {
                    if value[i] {
                        '/'
                    } else {
                        '\\'
                    }
                }
                _ => {
                    if value[i] {
                        '~'
                    } else {
                        '_'
                    }
                }
            };
            row.push(ch);
        }
    };
    push_step(&value, &mut rows, None);
    for &t in trace {
        let s = stg.signal_of(t).index();
        value[s] = stg.direction_of(t).target_value();
        push_step(&value, &mut rows, Some(s));
        push_step(&value, &mut rows, None);
    }
    let mut out = String::new();
    for row in rows {
        let _ = writeln!(out, "{row}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;

    #[test]
    fn toggle_waveform_shape() {
        let stg = parse_g(
            "\
.model toggle
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
",
        )
        .unwrap();
        let xp = stg.transition_by_display("x+").unwrap();
        let yp = stg.transition_by_display("y+").unwrap();
        let xm = stg.transition_by_display("x-").unwrap();
        let ym = stg.transition_by_display("y-").unwrap();
        let w = render_waveform(&stg, &[xp, yp, xm, ym]);
        let lines: Vec<&str> = w.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("x "));
        // x rises first then falls: _/~~...\\__
        assert!(lines[0].contains('/') && lines[0].contains('\\'));
        assert!(lines[1].contains('/') && lines[1].contains('\\'));
        // all rows equal length
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn unfired_signal_stays_low() {
        let stg = parse_g(
            "\
.model two
.inputs a b
.outputs c
.graph
a+ c+
c+ a-
a- c-
c- b+
b+ b-
b- a+
.marking { <b-,a+> }
.end
",
        )
        .unwrap();
        let ap = stg.transition_by_display("a+").unwrap();
        let w = render_waveform(&stg, &[ap]);
        let b_row = w.lines().find(|l| l.starts_with("b ")).unwrap();
        assert!(!b_row.contains('~'));
    }
}
