//! The benchmark suite (§IX).
//!
//! The original asynchronous benchmark `.g` files are not redistributable in
//! this environment; this module ships (a) faithful reconstructions of the
//! paper's running examples — rebuilt from every property the prose asserts
//! about them, see `DESIGN.md` §6 — and (b) a set of controller archetypes
//! with the same structural characteristics as the classic suite (VME bus,
//! handshake converters, fork/join bursts, free-choice selectors).

use crate::parse::parse_g;
use crate::signal::Direction::{Fall, Rise};
use crate::signal::SignalKind;
use crate::stg::Stg;

/// Reconstruction of the paper's Fig. 1 running example.
///
/// Properties matched to the prose: free-choice, live, safe, consistent;
/// inputs `a`, `b`, outputs `c`, `d`; signal `d` has excitation regions
/// ER(d+/1), ER(d+/2) and ER(d−); there is a **USC conflict** (two distinct
/// markings share a code) but **CSC holds** (both enable only input
/// transitions), and the conflict shows up as a structural coding conflict
/// that refinement alone cannot remove — exercising Theorems 14/15.
pub fn running_example() -> Stg {
    let mut b = Stg::builder("fig1");
    let a = b.add_signal("a", SignalKind::Input);
    let bb = b.add_signal("b", SignalKind::Input);
    let c = b.add_signal("c", SignalKind::Output);
    let d = b.add_signal("d", SignalKind::Output);

    let ap = b.add_transition(a, Rise);
    let am1 = b.add_transition(a, Fall); // mode 2
    let am2 = b.add_transition(a, Fall); // mode 1
    let bp1 = b.add_transition(bb, Rise); // mode 1
    let bm1 = b.add_transition(bb, Fall);
    let bp2 = b.add_transition(bb, Rise); // mode 2
    let bm2 = b.add_transition(bb, Fall);
    let cp = b.add_transition(c, Rise);
    let cm = b.add_transition(c, Fall);
    let dp1 = b.add_transition(d, Rise);
    let dp2 = b.add_transition(d, Rise);
    let dm = b.add_transition(d, Fall);

    // Shared prefix and the free choice between the two modes.
    let p0 = b.add_place("p0", true);
    b.arc_tp(dm, p0);
    b.arc_pt(p0, ap);
    let p1 = b.add_place("p1", false);
    b.arc_tp(ap, p1);
    b.arc_pt(p1, bp1); // mode 1
    b.arc_pt(p1, am1); // mode 2

    // Mode 1: a+ ; b+ ; c+ ; d+/1 ; (b- ∥ c-) ; a-/2.
    b.arc(bp1, cp);
    b.arc(cp, dp1);
    b.arc(dp1, bm1);
    b.arc(dp1, cm);
    b.arc(bm1, am2);
    b.arc(cm, am2);

    // Mode 2: a-/1 ; b+/2 ; d+/2 ; b-/2.
    b.arc(am1, bp2);
    b.arc(bp2, dp2);
    b.arc(dp2, bm2);

    // Merge of the two modes, then d-.
    let pm = b.add_place("pm", false);
    b.arc_tp(am2, pm);
    b.arc_tp(bm2, pm);
    b.arc_pt(pm, dm);

    b.build()
}

/// Reconstruction of the paper's Fig. 5 overestimation example.
///
/// A fork runs branch A (`x+ ; x- ; z+`) concurrently with branch B, which
/// waits in a single place `pb` until `y+` joins both. While `pb` is marked
/// both `x` and `z` change, so its cover cube has don't-cares on both — and
/// covers the code `x = z = 1` that is **never reachable** (x falls before
/// z rises). Refining `pb`'s cover with the SM of branch A recovers the
/// exact multi-cube cover, as in Fig. 5(c).
pub fn fig5_example() -> Stg {
    let mut b = Stg::builder("fig5");
    let r = b.add_signal("r", SignalKind::Input);
    let x = b.add_signal("x", SignalKind::Input);
    let z = b.add_signal("z", SignalKind::Input);
    let y = b.add_signal("y", SignalKind::Output);

    let rp = b.add_transition(r, Rise);
    let rm = b.add_transition(r, Fall);
    let xp = b.add_transition(x, Rise);
    let xm = b.add_transition(x, Fall);
    let zp = b.add_transition(z, Rise);
    let zm = b.add_transition(z, Fall);
    let yp = b.add_transition(y, Rise);
    let ym = b.add_transition(y, Fall);

    // Branch A: r+ ; x+ ; x- ; z+.
    b.arc(rp, xp);
    b.arc(xp, xm);
    b.arc(xm, zp);
    b.arc(zp, yp);
    // Branch B: a single waiting place from r+ to y+.
    let pb = b.add_place("pb", false);
    b.arc_tp(rp, pb);
    b.arc_pt(pb, yp);
    // Tail: y+ ; z- ; y- ; r- ; (marked) ; r+.
    b.arc(yp, zm);
    b.arc(zm, ym);
    b.arc(ym, rm);
    let p0 = b.arc(rm, rp);
    b.mark_place(p0);

    b.build()
}

/// The classic VME bus read-cycle controller **without** CSC resolution —
/// it has a genuine CSC conflict and is used to validate conflict
/// detection (it must be rejected by synthesis).
pub fn vme_read_raw() -> Stg {
    parse_g(VME_READ_RAW).expect("embedded benchmark parses")
}

const VME_READ_RAW: &str = "\
.model vme_read
.inputs dsr ldtack
.outputs lds d dtack
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack- lds-
lds- ldtack-
ldtack- lds+
dtack- dsr+
.marking { <dtack-,dsr+> <ldtack-,lds+> }
.end
";

/// The VME read controller with an internal state signal `csc0` inserted to
/// resolve the CSC conflict (the shape produced by CSC-insertion tools).
pub fn vme_read_csc() -> Stg {
    parse_g(VME_READ_CSC).expect("embedded benchmark parses")
}

const VME_READ_CSC: &str = "\
.model vme_read_csc
.inputs dsr ldtack
.outputs lds d dtack
.internal csc0
.graph
dsr+ csc0+
csc0+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- csc0-
csc0- d-
d- dtack- lds-
lds- ldtack-
ldtack- csc0+
dtack- dsr+
.marking { <dtack-,dsr+> <ldtack-,csc0+> }
.end
";

/// A three-signal sequential handshake (`half`-style archetype).
pub fn half_handshake() -> Stg {
    parse_g(
        "\
.model half
.inputs a
.outputs b c
.graph
a+ b+
b+ c+
c+ a-
a- b-
b- c-
c- a+
.marking { <c-,a+> }
.end
",
    )
    .expect("embedded benchmark parses")
}

/// A two-phase to four-phase converter archetype (`converta`-style).
pub fn converter() -> Stg {
    parse_g(
        "\
.model conv24
.inputs ri ao
.outputs ro ai
.graph
ri+ ro+
ro+ ao+
ao+ ai+
ai+ ri-
ri- ro-
ro- ao-
ao- ai-
ai- ri+
.marking { <ai-,ri+> }
.end
",
    )
    .expect("embedded benchmark parses")
}

/// A two-branch fork/join burst (`pe-send-ifc` archetype) as a fixed
/// benchmark; see [`crate::generators::burst`] for the scalable family.
pub fn burst2() -> Stg {
    parse_g(
        "\
.model burst2
.inputs r b1 b2
.outputs a1 a2 d
.graph
r+ a1+ a2+
a1+ b1+
a2+ b2+
b1+ d+
b2+ d+
d+ r-
r- a1- a2-
a1- b1-
a2- b2-
b1- d-
b2- d-
d- r+
.marking { <d-,r+> }
.end
",
    )
    .expect("embedded benchmark parses")
}

/// A two-way free-choice request selector (`mmu`/`trimos` archetype).
pub fn select2() -> Stg {
    parse_g(
        "\
.model select
.inputs r1 r2
.outputs a1 a2
.graph
p0 r1+ r2+
r1+ a1+
a1+ r1-
r1- a1-
a1- p0
r2+ a2+
a2+ r2-
r2- a2-
a2- p0
.marking { p0 }
.end
",
    )
    .expect("embedded benchmark parses")
}

/// A read/write mode controller: free choice between two input modes, with
/// the shared acknowledge signal giving a USC-but-not-CSC-violating
/// conflict (`wrdatab` archetype).
pub fn rw_control() -> Stg {
    parse_g(
        "\
.model rw_ctl
.inputs req wr
.outputs ack ld st
.graph
p0 wr+ req+
wr+ st+
st+ ack+
ack+ wr-
wr- st-
st- ack-
ack- p0
req+ ld+
ld+ ack+/2
ack+/2 req-
req- ld-
ld- ack-/2
ack-/2 p0
.marking { p0 }
.end
",
    )
    .expect("embedded benchmark parses")
}

/// A master-read archetype: an outer handshake driving two sub-handshakes
/// in sequence, two-phase style (rising staircase then falling staircase) —
/// six signals, twelve distinct codes, no conflicts.
pub fn master_read() -> Stg {
    parse_g(
        "\
.model master_read
.inputs r a1 a2
.outputs r1 r2 a
.graph
r+ r1+
r1+ a1+
a1+ r2+
r2+ a2+
a2+ a+
a+ r-
r- r1-
r1- a1-
a1- r2-
r2- a2-
a2- a-
a- r+
.marking { <a-,r+> }
.end
",
    )
    .expect("embedded benchmark parses")
}

/// A two-way mixer: free choice between two request lines served by the
/// same output signal `d` (two rising and two falling instances). The
/// post-release markings share the code `001` — a USC conflict between two
/// transitions of the *same* output signal, so CSC holds.
pub fn mixer2() -> Stg {
    parse_g(
        "\
.model mixer2
.inputs r1 r2
.outputs d
.graph
p0 r1+ r2+
r1+ d+
d+ r1-
r1- d-
d- p0
r2+ d+/2
d+/2 r2-
r2- d-/2
d-/2 p0
.marking { p0 }
.end
",
    )
    .expect("embedded benchmark parses")
}

/// Every fixed benchmark that satisfies the synthesis preconditions
/// (consistency + CSC), with its name — the "benchmark set" of the
/// experiment harness.
pub fn synthesizable_suite() -> Vec<Stg> {
    vec![
        running_example(),
        fig5_example(),
        vme_read_csc(),
        half_handshake(),
        converter(),
        burst2(),
        select2(),
        rw_control(),
        master_read(),
        mixer2(),
        crate::generators::clatch(3),
        crate::generators::burst(3),
        crate::generators::sequencer(3),
        crate::generators::selector(3),
        crate::generators::muller_pipeline(3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{semimodularity_violations, CodingAnalysis, StateEncoding};
    use si_petri::ReachabilityGraph;

    fn oracle(stg: &Stg) -> (ReachabilityGraph, StateEncoding, CodingAnalysis) {
        let rg = ReachabilityGraph::build(stg.net(), 1_000_000).expect("safe");
        let enc = StateEncoding::compute(stg, &rg).expect("consistent");
        let coding = CodingAnalysis::compute(stg, &rg, &enc);
        (rg, enc, coding)
    }

    #[test]
    fn running_example_matches_paper_properties() {
        let stg = running_example();
        assert!(stg.net().is_free_choice());
        let (rg, _enc, coding) = oracle(&stg);
        assert!(rg.is_live(stg.net()));
        // USC conflict present, CSC satisfied — the paper's Fig. 1 state.
        assert!(!coding.has_usc(), "expected a USC conflict");
        assert!(coding.has_csc(), "CSC must hold");
        // d has two rising ERs and one falling.
        let d = stg.signal_by_name("d").unwrap();
        assert_eq!(stg.transitions_of_dir(d, Rise).len(), 2);
        assert_eq!(stg.transitions_of_dir(d, Fall).len(), 1);
        // outputs never disabled
        assert!(semimodularity_violations(&stg, &rg).is_empty());
    }

    #[test]
    fn fig5_example_matches_paper_properties() {
        let stg = fig5_example();
        assert!(stg.net().is_free_choice());
        let (rg, enc, coding) = oracle(&stg);
        assert!(rg.is_live(stg.net()));
        assert!(coding.has_csc());
        assert!(semimodularity_violations(&stg, &rg).is_empty());
        // the overestimation target: code (r,x,z,y) = 1110 is unreachable
        let bad: si_boolean::Bits = [true, true, true, false].into_iter().collect();
        assert!(!enc.distinct_codes().contains(&bad));
    }

    #[test]
    fn vme_raw_has_csc_conflict_and_fixed_does_not() {
        let raw = vme_read_raw();
        let (_, _, coding_raw) = oracle(&raw);
        assert!(!coding_raw.has_csc(), "raw VME must have a CSC conflict");

        let fixed = vme_read_csc();
        let (rg, _, coding_fixed) = oracle(&fixed);
        assert!(coding_fixed.has_csc(), "csc0 insertion must resolve CSC");
        assert!(rg.is_live(fixed.net()));
        assert!(semimodularity_violations(&fixed, &rg).is_empty());
    }

    #[test]
    fn rw_control_has_usc_conflict_but_csc_holds() {
        let stg = rw_control();
        let (_, _, coding) = oracle(&stg);
        assert!(!coding.has_usc());
        assert!(coding.has_csc());
    }

    #[test]
    fn whole_suite_satisfies_synthesis_preconditions() {
        for stg in synthesizable_suite() {
            assert!(
                stg.net().is_free_choice() || si_petri::sm_cover(stg.net()).is_ok(),
                "{} must be FC or SM-coverable",
                stg.name()
            );
            let (rg, _enc, coding) = oracle(&stg);
            assert!(rg.is_live(stg.net()), "{} live", stg.name());
            assert!(coding.has_csc(), "{} CSC", stg.name());
            assert!(
                semimodularity_violations(&stg, &rg).is_empty(),
                "{} semimodular",
                stg.name()
            );
        }
    }
}
