//! Symbolic signal coding on top of the BDD reachable set.
//!
//! [`si_petri::SymbolicReach`] answers the marking-level questions
//! (cardinality, safeness, enabledness) without enumerating states; this
//! module lifts the *signal* interpretation to the same representation so
//! the coding questions of §II-C/§II-D — signal values, excitation and
//! quiescent regions, USC/CSC — are answered symbolically too.
//!
//! The construction mirrors the explicit [`crate::StateEncoding`]
//! constraint propagation, but as restricted fixpoints over the one BDD
//! manager:
//!
//! 1. **Initial values.** `Rₐ` = closure of the initial marking under every
//!    transition *not* of signal `a` — the states reachable before `a`
//!    first switches. If `a+` is enabled somewhere in `Rₐ` the initial
//!    value is 0; if `a-` is, it is 1; both ⇒ inconsistent, neither ⇒
//!    `a` never fires and the encoding is undetermined (the same verdicts
//!    [`crate::EncodingError`] reports).
//! 2. **Value sets.** `V1ₐ` = closure, under every non-`a` transition, of
//!    all `a+` successor states (plus the initial cube when `a` starts
//!    at 1); `V0ₐ` dually. Consistency holds iff `V1ₐ`/`V0ₐ` partition the
//!    reachable set and no `a+` is enabled inside `V1ₐ` (nor `a-` inside
//!    `V0ₐ`) — otherwise the explicit encoding would contradict itself on
//!    some state.
//! 3. **Code relation.** With one auxiliary BDD variable `vₐ` per signal,
//!    `code_rel = R ∧ ⋀ₐ (vₐ ↔ V1ₐ)` relates every reachable marking to
//!    its binary code. Quantifying the marking variables away leaves the
//!    *code space*; its cardinality over the auxiliary rail counts
//!    distinct codes, so USC holds iff it equals the state count, and a
//!    CSC conflict for synthesized `a` is one relational product per
//!    signal: some code both excites and does not excite `a`.
//!
//! The explicit oracles ([`crate::StateEncoding`], [`crate::CodingAnalysis`],
//! [`crate::SignalRegions`]) pin every one of these answers in the
//! differential suite `crates/petri/tests/prop_symbolic.rs`.
//!
//! # Examples
//!
//! ```
//! use si_stg::generators::clatch;
//! use si_stg::symbolic::SymbolicAnalysis;
//!
//! let stg = clatch(4); // 2^5 = 32 states
//! let sym = SymbolicAnalysis::build(&stg)?;
//! assert_eq!(sym.state_count(), 32);
//! assert!(sym.consistency().is_consistent());
//! assert_eq!(sym.has_usc(), Some(true));
//! assert_eq!(sym.has_csc(), Some(true));
//! # Ok::<(), si_petri::ReachError>(())
//! ```

use crate::signal::{Direction, SignalId};
use crate::stg::Stg;
use si_boolean::{BddRef, Bits, BDD_FALSE};
use si_petri::{Budget, Interrupt, Marking, ReachError, SymbolicReach, TransId};

/// The symbolic consistency verdict — the BDD counterpart of
/// [`crate::EncodingError`], plus [`SymbolicConsistency::Unknown`] when a
/// budget interrupt stopped the coding fixpoints before a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymbolicConsistency {
    /// A unique consistent binary encoding exists.
    Consistent,
    /// The encoding contradicts itself on `signal` (switchover error or
    /// autoconcurrency — the explicit oracle's `Inconsistent`).
    Inconsistent {
        /// The signal whose value assignment is contradictory.
        signal: SignalId,
    },
    /// `signal` never switches, so its value is not determined by the
    /// behaviour (the explicit oracle's `Undetermined`).
    Undetermined {
        /// The signal with no reachable transition occurrence.
        signal: SignalId,
    },
    /// A soft budget limit interrupted the coding fixpoints; no verdict.
    Unknown,
}

impl SymbolicConsistency {
    /// Is the verdict [`SymbolicConsistency::Consistent`]?
    pub fn is_consistent(self) -> bool {
        matches!(self, SymbolicConsistency::Consistent)
    }
}

/// The symbolic signal-coding analysis of an STG: the reachable set of the
/// underlying net plus, when the encoding is consistent, per-signal value
/// sets and the code relation — everything needed to answer value, ER/QR
/// membership and USC/CSC queries without enumerating a single state.
#[derive(Debug)]
pub struct SymbolicAnalysis {
    reach: SymbolicReach,
    nsig: usize,
    /// Per-transition symbolic excitation region `R ∧ En_t`.
    er_t: Vec<BddRef>,
    /// Per-signal pure enabledness `⋁_{t ∈ T_a} En_t` (not intersected
    /// with the reachable set).
    en_any: Vec<BddRef>,
    /// Per-signal, per-direction enabledness.
    en_rise: Vec<BddRef>,
    en_fall: Vec<BddRef>,
    /// Per-signal value sets (meaningful only when `consistency` is
    /// `Consistent`; `BDD_FALSE` placeholders otherwise).
    v1: Vec<BddRef>,
    v0: Vec<BddRef>,
    initial_values: Vec<bool>,
    consistency: SymbolicConsistency,
    distinct_codes: Option<u128>,
    csc_conflicts: Option<Vec<SignalId>>,
    peak_nodes: usize,
    interrupt: Option<Interrupt>,
}

impl SymbolicAnalysis {
    /// Runs the full symbolic analysis with an unbounded budget.
    ///
    /// # Errors
    ///
    /// [`ReachError::NotSafe`] when the underlying net is not safe — the
    /// same verdict the explicit explorer gives.
    pub fn build(stg: &Stg) -> Result<SymbolicAnalysis, ReachError> {
        SymbolicAnalysis::build_with(stg, &Budget::unbounded())
    }

    /// Runs the symbolic analysis under `budget`'s soft limits (deadline,
    /// cancellation, byte ceiling — the explicit state cap does not apply,
    /// see [`si_petri::SymbolicReach`]). Interruption at any fixpoint is
    /// the tagged partial verdict: the build returns `Ok` with
    /// [`SymbolicAnalysis::interrupt`] set, [`SymbolicAnalysis::reach`]
    /// holding the set grown so far, and every coding query answering
    /// `None`/[`SymbolicConsistency::Unknown`].
    ///
    /// # Errors
    ///
    /// [`ReachError::NotSafe`] as [`SymbolicAnalysis::build`].
    pub fn build_with(stg: &Stg, budget: &Budget) -> Result<SymbolicAnalysis, ReachError> {
        let _span = si_obs::span("symbolic.analysis");
        let nsig = stg.signal_count();
        let mut reach = SymbolicReach::build_with_aux(stg.net(), budget, nsig)?;
        let nt = reach.transition_count();

        // Per-transition ERs and per-signal enabledness disjunctions are
        // cheap and meaningful even on a partial reached set.
        let reached = reach.reached();
        let mut er_t = Vec::with_capacity(nt);
        for t in 0..nt {
            let en = reach.enabled_bdd(t);
            er_t.push(reach.bdd_mut().and(reached, en));
        }
        let mut en_any = vec![BDD_FALSE; nsig];
        let mut en_rise = vec![BDD_FALSE; nsig];
        let mut en_fall = vec![BDD_FALSE; nsig];
        for t in 0..nt {
            let tid = TransId(t as u32);
            let a = stg.signal_of(tid).index();
            let en = reach.enabled_bdd(t);
            en_any[a] = reach.bdd_mut().or(en_any[a], en);
            match stg.direction_of(tid) {
                Direction::Rise => en_rise[a] = reach.bdd_mut().or(en_rise[a], en),
                Direction::Fall => en_fall[a] = reach.bdd_mut().or(en_fall[a], en),
            }
        }

        let mut sym = SymbolicAnalysis {
            reach,
            nsig,
            er_t,
            en_any,
            en_rise,
            en_fall,
            v1: vec![BDD_FALSE; nsig],
            v0: vec![BDD_FALSE; nsig],
            initial_values: vec![false; nsig],
            consistency: SymbolicConsistency::Unknown,
            distinct_codes: None,
            csc_conflicts: None,
            peak_nodes: 0,
            interrupt: None,
        };
        if sym.reach.is_complete() {
            sym.coding_layer(stg, budget);
        } else {
            sym.interrupt = sym.reach.interrupt();
        }
        sym.peak_nodes = sym.reach.peak_nodes().max(sym.reach.bdd().node_count());
        Ok(sym)
    }

    /// Derives initial values, value sets, the code relation and the
    /// USC/CSC verdicts; sets `consistency` to the first failure found.
    fn coding_layer(&mut self, stg: &Stg, budget: &Budget) {
        let nt = self.reach.transition_count();
        // Transition indices grouped per signal.
        let mut rise_of: Vec<Vec<usize>> = vec![Vec::new(); self.nsig];
        let mut fall_of: Vec<Vec<usize>> = vec![Vec::new(); self.nsig];
        for t in 0..nt {
            let tid = TransId(t as u32);
            let a = stg.signal_of(tid).index();
            match stg.direction_of(tid) {
                Direction::Rise => rise_of[a].push(t),
                Direction::Fall => fall_of[a].push(t),
            }
        }
        let others_of = |a: usize| -> Vec<usize> {
            (0..nt)
                .filter(|&t| stg.signal_of(TransId(t as u32)).index() != a)
                .collect()
        };

        let initial = self.reach.initial();
        let reached = self.reach.reached();
        for a in 0..self.nsig {
            let others = others_of(a);
            // R_a: reachable before a's first switch.
            let r_a = match self.reach.closure(initial, &others, budget) {
                Ok(r) => r,
                Err(i) => {
                    self.interrupt = Some(i);
                    return;
                }
            };
            let can_rise = self.reach.bdd_mut().and(r_a, self.en_rise[a]) != BDD_FALSE;
            let can_fall = self.reach.bdd_mut().and(r_a, self.en_fall[a]) != BDD_FALSE;
            let init_val = match (can_rise, can_fall) {
                (true, false) => false,
                (false, true) => true,
                (true, true) => {
                    self.consistency = SymbolicConsistency::Inconsistent {
                        signal: SignalId(a as u16),
                    };
                    return;
                }
                (false, false) => {
                    self.consistency = SymbolicConsistency::Undetermined {
                        signal: SignalId(a as u16),
                    };
                    return;
                }
            };
            self.initial_values[a] = init_val;

            // V1_a / V0_a: closures of the a± successor sets (plus the
            // initial cube on its side) under every non-a transition.
            let mut seed1 = if init_val { initial } else { BDD_FALSE };
            for &t in &rise_of[a] {
                let img = self.reach.image(reached, t);
                seed1 = self.reach.bdd_mut().or(seed1, img);
            }
            let mut seed0 = if init_val { BDD_FALSE } else { initial };
            for &t in &fall_of[a] {
                let img = self.reach.image(reached, t);
                seed0 = self.reach.bdd_mut().or(seed0, img);
            }
            let (v1, v0) = match (
                self.reach.closure(seed1, &others, budget),
                self.reach.closure(seed0, &others, budget),
            ) {
                (Ok(v1), Ok(v0)) => (v1, v0),
                (Err(i), _) | (_, Err(i)) => {
                    self.interrupt = Some(i);
                    return;
                }
            };

            // Consistency of the value assignment: V1/V0 partition the
            // reachable set, and no transition is enabled towards the
            // value its source already has (autoconcurrency).
            let bdd = self.reach.bdd_mut();
            let overlap = bdd.and(v1, v0);
            let union = bdd.or(v1, v0);
            let rise_in_v1 = bdd.and(v1, self.en_rise[a]);
            let fall_in_v0 = bdd.and(v0, self.en_fall[a]);
            if overlap != BDD_FALSE
                || union != reached
                || rise_in_v1 != BDD_FALSE
                || fall_in_v0 != BDD_FALSE
            {
                self.consistency = SymbolicConsistency::Inconsistent {
                    signal: SignalId(a as u16),
                };
                return;
            }
            self.v1[a] = v1;
            self.v0[a] = v0;
        }
        self.consistency = SymbolicConsistency::Consistent;

        // Code relation: every reachable marking paired with its binary
        // code on the auxiliary rail.
        let mut code_rel = reached;
        for a in 0..self.nsig {
            let var = self.reach.aux_var(a);
            let v1 = self.v1[a];
            let bdd = self.reach.bdd_mut();
            let lit = bdd.literal(var, true);
            let eq = bdd.iff(lit, v1);
            code_rel = bdd.and(code_rel, eq);
        }
        let current = self.reach.current_vars().clone();
        let width = self.reach.bdd().width();
        let codespace = self.reach.bdd_mut().exists(code_rel, &current);
        let aux_vars = Bits::from_ones(width, (0..self.nsig).map(|a| self.reach.aux_var(a)));
        let distinct = self.reach.bdd().sat_count_within(codespace, &aux_vars);
        self.distinct_codes = Some(distinct);

        // CSC: a conflict for synthesized a is a code with both an
        // exciting and a non-exciting reachable marking.
        let mut conflicts = Vec::new();
        for s in stg.synthesized_signals() {
            let a = s.index();
            let bdd = self.reach.bdd_mut();
            let excited = bdd.and(code_rel, self.en_any[a]);
            let excited_codes = bdd.exists(excited, &current);
            let quiet = bdd.not(self.en_any[a]);
            let quiet = bdd.and(code_rel, quiet);
            let quiet_codes = bdd.exists(quiet, &current);
            if bdd.and(excited_codes, quiet_codes) != BDD_FALSE {
                conflicts.push(s);
            }
        }
        self.csc_conflicts = Some(conflicts);
    }

    /// The underlying marking-level reachable set.
    pub fn reach(&self) -> &SymbolicReach {
        &self.reach
    }

    /// Reachable-state cardinality (of the partial set when interrupted).
    pub fn state_count(&self) -> u128 {
        self.reach.state_count()
    }

    /// Fixpoint iterations of the main reachability build.
    pub fn iterations(&self) -> usize {
        self.reach.iterations()
    }

    /// Peak live node count across reachability *and* coding fixpoints.
    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    /// Did every fixpoint (reachability and coding) run to completion?
    pub fn is_complete(&self) -> bool {
        self.interrupt.is_none()
    }

    /// The tagged partial verdict, if a soft budget limit fired.
    pub fn interrupt(&self) -> Option<Interrupt> {
        self.interrupt
    }

    /// The symbolic consistency verdict.
    pub fn consistency(&self) -> SymbolicConsistency {
        self.consistency
    }

    /// The initial value of `signal`, when the encoding is consistent.
    pub fn initial_value(&self, signal: SignalId) -> Option<bool> {
        self.consistency
            .is_consistent()
            .then(|| self.initial_values[signal.index()])
    }

    /// The value of `signal` at marking `m`, when the encoding is
    /// consistent (meaningful for reachable `m`).
    pub fn value(&self, signal: SignalId, m: &Marking) -> Option<bool> {
        self.consistency.is_consistent().then(|| {
            self.reach
                .bdd()
                .eval(self.v1[signal.index()], &self.reach.assignment_of(m))
        })
    }

    /// Is `m` reachable (in the possibly partial set)?
    pub fn contains(&self, m: &Marking) -> bool {
        self.reach.contains(m)
    }

    /// Is `m` in the excitation region of transition `t` — reachable with
    /// `t` enabled?
    pub fn in_er(&self, t: TransId, m: &Marking) -> bool {
        self.reach
            .bdd()
            .eval(self.er_t[t.index()], &self.reach.assignment_of(m))
    }

    /// Is any transition of `signal` enabled at `m` (pure mask query)?
    pub fn is_excited(&self, signal: SignalId, m: &Marking) -> bool {
        self.reach
            .bdd()
            .eval(self.en_any[signal.index()], &self.reach.assignment_of(m))
    }

    /// Is `m` in the generalized quiescent region of `signal` at value
    /// `v` — reachable, carrying value `v`, with no transition of the
    /// signal enabled? `None` when the encoding is not consistent.
    pub fn in_qr(&self, signal: SignalId, v: bool, m: &Marking) -> Option<bool> {
        let value = self.value(signal, m)?;
        Some(self.contains(m) && value == v && !self.is_excited(signal, m))
    }

    /// Cardinality of the symbolic excitation region of transition `t`.
    pub fn er_count(&self, t: TransId) -> u128 {
        self.reach
            .bdd()
            .sat_count_within(self.er_t[t.index()], self.reach.current_vars())
    }

    /// Number of distinct reachable binary codes (`None` until the coding
    /// layer completes on a consistent encoding).
    pub fn distinct_code_count(&self) -> Option<u128> {
        self.distinct_codes
    }

    /// Does unique state coding hold? Distinct codes equal reachable
    /// states exactly when no two states share a code.
    pub fn has_usc(&self) -> Option<bool> {
        self.distinct_codes.map(|d| d == self.state_count())
    }

    /// Does complete state coding hold (no synthesized signal with a
    /// conflicting code)?
    pub fn has_csc(&self) -> Option<bool> {
        self.csc_conflicts.as_ref().map(|c| c.is_empty())
    }

    /// The synthesized signals with at least one CSC conflict.
    pub fn csc_conflict_signals(&self) -> Option<&[SignalId]> {
        self.csc_conflicts.as_deref()
    }
}
