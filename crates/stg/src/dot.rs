//! Graphviz (DOT) exporters for STGs and reachability graphs — the
//! debugging/visualization companions of the library.

use crate::encode::StateEncoding;
use crate::signal::SignalKind;
use crate::stg::Stg;
use si_petri::ReachabilityGraph;
use std::fmt::Write;

/// Renders the STG as a DOT digraph: transitions as boxes (inputs dashed),
/// places as circles (implicit single-arc places elided to direct edges),
/// marked places with a token dot.
pub fn stg_to_dot(stg: &Stg) -> String {
    let net = stg.net();
    let m0 = net.initial_marking();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", stg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for t in net.transitions() {
        let style = if stg.signal_kind(stg.signal_of(t)) == SignalKind::Input {
            ", style=dashed"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  t{} [shape=box, label=\"{}\"{}];",
            t.index(),
            stg.transition_display(t),
            style
        );
    }
    for p in net.places() {
        let implicit = net.place_name(p).starts_with('<')
            && net.pre_p(p).len() == 1
            && net.post_p(p).len() == 1
            && !m0.get(p.index());
        if implicit {
            // direct edge
            let _ = writeln!(
                out,
                "  t{} -> t{};",
                net.pre_p(p)[0].index(),
                net.post_p(p)[0].index()
            );
        } else {
            let label = if m0.get(p.index()) { "&bull;" } else { "" };
            let _ = writeln!(
                out,
                "  p{} [shape=circle, label=\"{label}\", xlabel=\"{}\"];",
                p.index(),
                net.place_name(p)
            );
            for &t in net.pre_p(p) {
                let _ = writeln!(out, "  t{} -> p{};", t.index(), p.index());
            }
            for &t in net.post_p(p) {
                let _ = writeln!(out, "  p{} -> t{};", p.index(), t.index());
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the reachability graph with binary codes as node labels — the
/// paper's Fig. 1(b) style of state-graph drawing.
pub fn rg_to_dot(stg: &Stg, rg: &ReachabilityGraph, enc: &StateEncoding) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}_rg\" {{", stg.name());
    for s in rg.states() {
        let _ = writeln!(out, "  s{} [label=\"{}\"];", s.index(), enc.code(s));
    }
    for s in rg.states() {
        for &(t, d) in rg.successors(s) {
            let _ = writeln!(
                out,
                "  s{} -> s{} [label=\"{}\"];",
                s.index(),
                d.index(),
                stg.transition_display(t)
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn stg_dot_mentions_all_transitions() {
        let stg = benchmarks::running_example();
        let dot = stg_to_dot(&stg);
        assert!(dot.starts_with("digraph"));
        for t in stg.net().transitions() {
            assert!(dot.contains(&stg.transition_display(t)));
        }
        // choice place p1 is explicit
        assert!(dot.contains("xlabel=\"p1\""));
        // marked place carries a token
        assert!(dot.contains("&bull;"));
    }

    #[test]
    fn rg_dot_has_codes_and_edges() {
        let stg = benchmarks::half_handshake();
        let rg = si_petri::ReachabilityGraph::build(stg.net(), 1000).unwrap();
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        let dot = rg_to_dot(&stg, &rg, &enc);
        assert!(dot.matches("->").count() >= rg.state_count());
        assert!(dot.contains("label=\"000\"") || dot.contains("label=\"111\""));
    }

    #[test]
    fn dashed_inputs_solid_outputs() {
        let stg = benchmarks::half_handshake();
        let dot = stg_to_dot(&stg);
        // input a dashed at least once
        assert!(dot.contains("style=dashed"));
    }
}
