//! Scalable STG generators — the workloads of Tables VI and VII and the
//! generalized C-latch of Fig. 7.
//!
//! Each generator produces a family of specifications whose reachability
//! graph grows exponentially while the STG itself grows linearly — exactly
//! the regime where the paper's structural methods beat state-based tools.

use crate::signal::Direction::{Fall, Rise};
use crate::signal::SignalKind;
use crate::stg::Stg;

/// The generalized C-latch of Fig. 7: an n-input C-element closed on its
/// inputs through inverters.
///
/// Output `z` rises when all inputs are 1 and falls when all are 0; each
/// `z` edge releases a concurrent burst of input changes. The STG has
/// `2n + 2` transitions and `4n` places but `2^(n+1)` reachable markings —
/// with `n = 90` that exceeds the paper's 10²⁷-state claim.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn clatch(n: usize) -> Stg {
    assert!(n > 0, "clatch needs at least one input");
    let mut b = Stg::builder(format!("clatch_{n}"));
    let z = b.add_signal("z", SignalKind::Output);
    let xs: Vec<_> = (0..n)
        .map(|i| b.add_signal(format!("x{i}"), SignalKind::Input))
        .collect();
    let zp = b.add_transition(z, Rise);
    let zm = b.add_transition(z, Fall);
    for &x in &xs {
        let xp = b.add_transition(x, Rise);
        let xm = b.add_transition(x, Fall);
        // z- -> x+ -> z+ -> x- -> z- ring per input.
        let p0 = b.arc(zm, xp); // marked: initially all inputs may rise
        b.mark_place(p0);
        b.arc(xp, zp);
        b.arc(zp, xm);
        b.arc(xm, zm);
    }
    b.build()
}

/// A Muller pipeline of `n` C-element stages (Table VII).
///
/// Stage `i` implements `c_i = C(c_{i-1}, ¬c_{i+1})`; the left environment
/// drives the input `r`, the right end is free-running. The net is a marked
/// graph; the number of reachable markings grows exponentially with `n`
/// (pipeline occupancy patterns).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn muller_pipeline(n: usize) -> Stg {
    assert!(n > 0, "pipeline needs at least one stage");
    let mut b = Stg::builder(format!("muller_{n}"));
    let r = b.add_signal("r", SignalKind::Input);
    let cs: Vec<_> = (0..n)
        .map(|i| b.add_signal(format!("c{i}"), SignalKind::Output))
        .collect();
    let rp = b.add_transition(r, Rise);
    let rm = b.add_transition(r, Fall);
    let cp: Vec<_> = cs.iter().map(|&c| b.add_transition(c, Rise)).collect();
    let cm: Vec<_> = cs.iter().map(|&c| b.add_transition(c, Fall)).collect();
    // Left environment: r toggles after stage 0 acknowledges.
    b.arc(rp, cp[0]);
    b.arc(rm, cm[0]);
    let p = b.arc(cp[0], rm);
    let _ = p;
    let p0 = b.arc(cm[0], rp);
    b.mark_place(p0);
    for i in 1..n {
        // data forward: c_{i-1}+ -> c_i+, c_{i-1}- -> c_i-
        b.arc(cp[i - 1], cp[i]);
        b.arc(cm[i - 1], cm[i]);
        // acknowledgement backward: c_i+ -> c_{i-1}-, c_i- -> c_{i-1}+
        b.arc(cp[i], cm[i - 1]);
        let back = b.arc(cm[i], cp[i - 1]);
        b.mark_place(back); // initially all stages low: rises are allowed
    }
    b.build()
}

/// Dining philosophers (Table VII): `n` philosophers, `n` shared forks —
/// a live, safe but **non-free-choice** net that is still SM-coverable.
///
/// Philosopher `i` grabs forks `i` and `(i+1) mod n` with the input event
/// `eat_i+`, is served (`done_i+`, output), releases the forks (`eat_i-`)
/// and is cleaned up (`done_i-`, output).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn philosophers(n: usize) -> Stg {
    assert!(n >= 2, "need at least two philosophers");
    let mut b = Stg::builder(format!("phil_{n}"));
    let eat: Vec<_> = (0..n)
        .map(|i| b.add_signal(format!("eat{i}"), SignalKind::Input))
        .collect();
    let done: Vec<_> = (0..n)
        .map(|i| b.add_signal(format!("done{i}"), SignalKind::Output))
        .collect();
    let forks: Vec<_> = (0..n)
        .map(|i| b.add_place(format!("fork{i}"), true))
        .collect();
    for i in 0..n {
        let thinking = b.add_place(format!("thinking{i}"), true);
        let eating = b.add_place(format!("eating{i}"), false);
        let served = b.add_place(format!("served{i}"), false);
        let cleanup = b.add_place(format!("cleanup{i}"), false);
        let take = b.add_transition(eat[i], Rise);
        let serve = b.add_transition(done[i], Rise);
        let release = b.add_transition(eat[i], Fall);
        let clean = b.add_transition(done[i], Fall);
        b.arc_pt(thinking, take);
        b.arc_pt(forks[i], take);
        b.arc_pt(forks[(i + 1) % n], take);
        b.arc_tp(take, eating);
        b.arc_pt(eating, serve);
        b.arc_tp(serve, served);
        b.arc_pt(served, release);
        b.arc_tp(release, cleanup);
        b.arc_tp(release, forks[i]);
        b.arc_tp(release, forks[(i + 1) % n]);
        b.arc_pt(cleanup, clean);
        b.arc_tp(clean, thinking);
    }
    b.build()
}

/// A fork/join burst controller: request `r` spawns `n` concurrent
/// two-phase handshakes (`a_i` out, `b_i` in), the completion detector `d`
/// joins them (the `pe-send-ifc` archetype of Table V/VI).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn burst(n: usize) -> Stg {
    assert!(n > 0, "burst needs at least one branch");
    let mut b = Stg::builder(format!("burst_{n}"));
    let r = b.add_signal("r", SignalKind::Input);
    let d = b.add_signal("d", SignalKind::Output);
    let rp = b.add_transition(r, Rise);
    let rm = b.add_transition(r, Fall);
    let dp = b.add_transition(d, Rise);
    let dm = b.add_transition(d, Fall);
    for i in 0..n {
        let a = b.add_signal(format!("a{i}"), SignalKind::Output);
        let bb = b.add_signal(format!("b{i}"), SignalKind::Input);
        let ap = b.add_transition(a, Rise);
        let am = b.add_transition(a, Fall);
        let bp = b.add_transition(bb, Rise);
        let bm = b.add_transition(bb, Fall);
        b.arc(rp, ap);
        b.arc(ap, bp);
        b.arc(bp, dp);
        b.arc(rm, am);
        b.arc(am, bm);
        b.arc(bm, dm);
    }
    b.arc(dp, rm);
    let p0 = b.arc(dm, rp);
    b.mark_place(p0);
    b.build()
}

/// A sequencer: `n` four-phase handshakes (`r_i` in, `a_i` out) performed
/// strictly in order around a ring — long chains, no concurrency (the
/// `seq` archetype; exercises adjacency and QPS on deep paths).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sequencer(n: usize) -> Stg {
    assert!(n > 0, "sequencer needs at least one stage");
    let mut b = Stg::builder(format!("seq_{n}"));
    let mut prev_last = None;
    let mut first = None;
    for i in 0..n {
        let r = b.add_signal(format!("r{i}"), SignalKind::Input);
        let a = b.add_signal(format!("a{i}"), SignalKind::Output);
        let rp = b.add_transition(r, Rise);
        let ap = b.add_transition(a, Rise);
        let rm = b.add_transition(r, Fall);
        let am = b.add_transition(a, Fall);
        b.arc(rp, ap);
        b.arc(ap, rm);
        b.arc(rm, am);
        if let Some(last) = prev_last {
            b.arc(last, rp);
        } else {
            first = Some(rp);
        }
        prev_last = Some(am);
    }
    let p0 = b.arc(prev_last.unwrap(), first.unwrap());
    b.mark_place(p0);
    b.build()
}

/// A VME-style bus controller with an `n`-stage internal data chain — a
/// scalable family with a **genuine CSC conflict** (the `vme_read_raw`
/// archetype): after the release phase `lds- ; ldtack-` the controller
/// returns to the binary code of the initial state while the underlying
/// marking differs, so synthesis must insert a state signal. The chain
/// signals `c0 … c{n-1}` rise between `ldtack+` and `d+` and fall between
/// `dsr-` and `d-`; they are all low in both conflicting states, so the
/// conflict survives at every `n` while the STG (and the CSC-insertion
/// search space) grows linearly.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn vme_chain(n: usize) -> Stg {
    assert!(n > 0, "vme_chain needs at least one chain stage");
    let mut b = Stg::builder(format!("vmechain_{n}"));
    let dsr = b.add_signal("dsr", SignalKind::Input);
    let ldtack = b.add_signal("ldtack", SignalKind::Input);
    let lds = b.add_signal("lds", SignalKind::Output);
    let d = b.add_signal("d", SignalKind::Output);
    let dtack = b.add_signal("dtack", SignalKind::Output);
    let cs: Vec<_> = (0..n)
        .map(|i| b.add_signal(format!("c{i}"), SignalKind::Output))
        .collect();
    let dsrp = b.add_transition(dsr, Rise);
    let dsrm = b.add_transition(dsr, Fall);
    let ldtackp = b.add_transition(ldtack, Rise);
    let ldtackm = b.add_transition(ldtack, Fall);
    let ldsp = b.add_transition(lds, Rise);
    let ldsm = b.add_transition(lds, Fall);
    let dp = b.add_transition(d, Rise);
    let dm = b.add_transition(d, Fall);
    let dtackp = b.add_transition(dtack, Rise);
    let dtackm = b.add_transition(dtack, Fall);
    // Request: dsr+ ; lds+ ; ldtack+ ; c0+ ; … ; c{n-1}+ ; d+ ; dtack+ ; dsr-.
    b.arc(dsrp, ldsp);
    b.arc(ldsp, ldtackp);
    let mut prev = ldtackp;
    for &c in &cs {
        let cp = b.add_transition(c, Rise);
        b.arc(prev, cp);
        prev = cp;
    }
    b.arc(prev, dp);
    b.arc(dp, dtackp);
    b.arc(dtackp, dsrm);
    // Release: dsr- ; c0- ; … ; c{n-1}- ; d- ; then dtack- ∥ (lds- ; ldtack-).
    let mut prev = dsrm;
    for &c in &cs {
        let cm = b.add_transition(c, Fall);
        b.arc(prev, cm);
        prev = cm;
    }
    b.arc(prev, dm);
    b.arc(dm, dtackm);
    b.arc(dm, ldsm);
    b.arc(ldsm, ldtackm);
    // lds+ rejoins the ldtack handshake: it waits for dsr+ AND ldtack-.
    let ploop = b.arc(ldtackm, ldsp);
    b.mark_place(ploop);
    let p0 = b.arc(dtackm, dsrp);
    b.mark_place(p0);
    b.build()
}

/// The concurrent sibling of [`vme_chain`]: the same VME-style CSC
/// conflict, but the `n` internal stages run as a **parallel burst**
/// (`ldtack+` forks `c0+ … c{n-1}+`, `d+` joins them; `dsr-` forks the
/// falling burst, `d-` joins). The conflict core stays the same size
/// while almost every place is concurrent with the inserted state signal
/// — the regime where incremental re-analysis skips most of the
/// refinement replay.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn vme_burst(n: usize) -> Stg {
    assert!(n > 0, "vme_burst needs at least one branch");
    let mut b = Stg::builder(format!("vmeburst_{n}"));
    let dsr = b.add_signal("dsr", SignalKind::Input);
    let ldtack = b.add_signal("ldtack", SignalKind::Input);
    let lds = b.add_signal("lds", SignalKind::Output);
    let d = b.add_signal("d", SignalKind::Output);
    let dtack = b.add_signal("dtack", SignalKind::Output);
    let cs: Vec<_> = (0..n)
        .map(|i| b.add_signal(format!("c{i}"), SignalKind::Output))
        .collect();
    let dsrp = b.add_transition(dsr, Rise);
    let dsrm = b.add_transition(dsr, Fall);
    let ldtackp = b.add_transition(ldtack, Rise);
    let ldtackm = b.add_transition(ldtack, Fall);
    let ldsp = b.add_transition(lds, Rise);
    let ldsm = b.add_transition(lds, Fall);
    let dp = b.add_transition(d, Rise);
    let dm = b.add_transition(d, Fall);
    let dtackp = b.add_transition(dtack, Rise);
    let dtackm = b.add_transition(dtack, Fall);
    // Request: dsr+ ; lds+ ; ldtack+ ; (c0+ ∥ … ∥ c{n-1}+) ; d+ ; dtack+.
    b.arc(dsrp, ldsp);
    b.arc(ldsp, ldtackp);
    let mut falls = Vec::with_capacity(n);
    for &c in &cs {
        let cp = b.add_transition(c, Rise);
        b.arc(ldtackp, cp);
        b.arc(cp, dp);
        falls.push(b.add_transition(c, Fall));
    }
    b.arc(dp, dtackp);
    b.arc(dtackp, dsrm);
    // Release: dsr- ; (c0- ∥ … ∥ c{n-1}-) ; d- ; then dtack- ∥ (lds- ; ldtack-).
    for &cm in &falls {
        b.arc(dsrm, cm);
        b.arc(cm, dm);
    }
    b.arc(dm, dtackm);
    b.arc(dm, ldsm);
    b.arc(ldsm, ldtackm);
    let ploop = b.arc(ldtackm, ldsp);
    b.mark_place(ploop);
    let p0 = b.arc(dtackm, dsrp);
    b.mark_place(p0);
    b.build()
}

/// A free-choice selector: the environment picks one of `n` request lines;
/// each is served by its own acknowledge output (the `mmu`/`trimos`
/// choice-controller archetype).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn selector(n: usize) -> Stg {
    assert!(n >= 2, "selector needs at least two alternatives");
    let mut b = Stg::builder(format!("select_{n}"));
    let p0 = b.add_place("idle", true);
    for i in 0..n {
        let r = b.add_signal(format!("r{i}"), SignalKind::Input);
        let a = b.add_signal(format!("a{i}"), SignalKind::Output);
        let rp = b.add_transition(r, Rise);
        let ap = b.add_transition(a, Rise);
        let rm = b.add_transition(r, Fall);
        let am = b.add_transition(a, Fall);
        b.arc_pt(p0, rp);
        b.arc(rp, ap);
        b.arc(ap, rm);
        b.arc(rm, am);
        b.arc_tp(am, p0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_petri::ReachabilityGraph;

    fn check_basics(stg: &Stg, expect_fc: bool, cap: usize) -> ReachabilityGraph {
        assert_eq!(stg.net().is_free_choice(), expect_fc, "{}", stg.name());
        let rg = ReachabilityGraph::build(stg.net(), cap).expect("safe net");
        assert!(rg.is_live(stg.net()), "{} must be live", stg.name());
        let enc = crate::encode::StateEncoding::compute(stg, &rg);
        assert!(enc.is_ok(), "{} must be consistent", stg.name());
        rg
    }

    #[test]
    fn clatch_state_count_is_exponential() {
        for n in 1..=6 {
            let stg = clatch(n);
            let rg = check_basics(&stg, true, 10_000);
            assert_eq!(rg.state_count(), 1 << (n + 1), "clatch({n})");
        }
    }

    #[test]
    fn muller_pipeline_grows() {
        let mut prev = 0;
        for n in 1..=6 {
            let stg = muller_pipeline(n);
            let rg = check_basics(&stg, true, 100_000);
            assert!(rg.state_count() > prev);
            prev = rg.state_count();
        }
        // marked graph
        assert!(muller_pipeline(4).net().is_marked_graph());
    }

    #[test]
    fn philosophers_non_fc_but_live() {
        let stg = philosophers(3);
        assert!(!stg.net().is_free_choice());
        let rg = ReachabilityGraph::build(stg.net(), 100_000).unwrap();
        assert!(rg.is_live(stg.net()));
        // SM-coverable despite being non-FC
        let cover = si_petri::sm_cover(stg.net()).expect("SM-coverable");
        assert!(!cover.is_empty());
    }

    #[test]
    fn burst_is_consistent_and_concurrent() {
        let stg = burst(3);
        let rg = check_basics(&stg, true, 100_000);
        // branches run concurrently: more states than a pure sequence
        assert!(rg.state_count() > 14);
        assert!(crate::encode::semimodularity_violations(&stg, &rg).is_empty());
    }

    #[test]
    fn sequencer_is_a_simple_cycle() {
        let stg = sequencer(3);
        let rg = check_basics(&stg, true, 1000);
        assert_eq!(rg.state_count(), 12); // 4 phases x 3 stages
    }

    #[test]
    fn vme_chain_and_burst_have_genuine_csc_conflicts() {
        for stg in [vme_chain(1), vme_chain(4), vme_burst(1), vme_burst(4)] {
            let rg = check_basics(&stg, true, 100_000);
            let enc = crate::encode::StateEncoding::compute(&stg, &rg).unwrap();
            let coding = crate::encode::CodingAnalysis::compute(&stg, &rg, &enc);
            assert!(
                !coding.has_csc(),
                "{} must carry the VME CSC conflict",
                stg.name()
            );
        }
        // n = 1 of both families degenerates to the same shape.
        assert_eq!(
            vme_chain(1).net().place_count(),
            vme_burst(1).net().place_count()
        );
    }

    #[test]
    fn vme_chain_grows_linearly() {
        let small = vme_chain(2);
        let large = vme_chain(10);
        assert_eq!(
            large.net().transition_count() - small.net().transition_count(),
            16
        );
        let rg = ReachabilityGraph::build(large.net(), 100_000).unwrap();
        assert!(rg.is_live(large.net()));
    }

    #[test]
    fn selector_has_choice() {
        let stg = selector(3);
        let rg = check_basics(&stg, true, 1000);
        assert_eq!(rg.state_count(), 1 + 3 * 3); // idle + 3 per branch...
        let enc = crate::encode::StateEncoding::compute(&stg, &rg).unwrap();
        let coding = crate::encode::CodingAnalysis::compute(&stg, &rg, &enc);
        assert!(coding.has_csc(), "selector must satisfy CSC");
        assert!(crate::encode::semimodularity_violations(&stg, &rg).is_empty());
    }
}
