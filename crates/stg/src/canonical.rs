//! Canonical `.g` serialization — a deterministic normal form.
//!
//! [`write_g`](crate::write_g) preserves declaration order, so two files
//! describing the same STG with permuted `.inputs` lists or shuffled graph
//! lines serialize differently. The serving layer keys its artifact store
//! by content hash, so it needs a *canonical* form: [`canonical_g`] sorts
//! every freely-ordered element lexicographically (signal declarations,
//! graph lines, arc targets, marking tokens), making the output independent
//! of the order in which the model was declared or built.
//!
//! Two invariants, pinned by `tests/canonical_form.rs`:
//!
//! * **Fixpoint**: `canonical_g(parse_g(canonical_g(stg))) == canonical_g(stg)`
//!   byte for byte — implicit place names (`<t1,t2>`) regenerate
//!   deterministically on reparse.
//! * **Permutation invariance**: permuting signal declarations and graph
//!   lines of a `.g` file does not change the canonical output.

use crate::signal::SignalKind;
use crate::stg::Stg;
use si_petri::PlaceId;

fn is_implicit(stg: &Stg, p: PlaceId) -> bool {
    let net = stg.net();
    net.place_name(p).starts_with('<') && net.pre_p(p).len() == 1 && net.post_p(p).len() == 1
}

/// Serializes an STG to its canonical `.g` form.
///
/// The output is a valid `.g` file accepted by [`parse_g`](crate::parse_g);
/// structurally it round-trips exactly like [`write_g`](crate::write_g)
/// output, but every list in it is sorted:
///
/// * signal names within `.inputs` / `.outputs` / `.internal`;
/// * transition lines of `.graph`, by transition display name, each with
///   its targets sorted;
/// * explicit place lines, by place name, each with its targets sorted;
/// * `.marking` tokens.
///
/// # Examples
///
/// ```
/// use si_stg::{canonical_g, parse_g};
///
/// let a = parse_g(".model m\n.inputs a b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n")?;
/// let b = parse_g(".model m\n.inputs b a\n.graph\nb- a+\na- b-\nb+ a-\na+ b+\n.marking { <b-,a+> }\n.end\n")?;
/// assert_eq!(canonical_g(&a), canonical_g(&b));
/// let reparsed = parse_g(&canonical_g(&a))?;
/// assert_eq!(canonical_g(&reparsed), canonical_g(&a));
/// # Ok::<(), si_stg::ParseGError>(())
/// ```
pub fn canonical_g(stg: &Stg) -> String {
    use std::fmt::Write;
    let net = stg.net();
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", stg.name());
    for (directive, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let mut names: Vec<&str> = stg
            .signals()
            .filter(|&s| stg.signal_kind(s) == kind)
            .map(|s| stg.signal_name(s))
            .collect();
        names.sort_unstable();
        if !names.is_empty() {
            let _ = writeln!(out, "{} {}", directive, names.join(" "));
        }
    }
    let _ = writeln!(out, ".graph");

    // Transition lines: "<display> <sorted targets...>", sorted by display.
    let mut trans_lines: Vec<(String, Vec<String>)> = Vec::new();
    for t in net.transitions() {
        let mut targets: Vec<String> = Vec::new();
        for &p in net.post_t(t) {
            if is_implicit(stg, p) {
                targets.push(stg.transition_display(net.post_p(p)[0]));
            } else {
                targets.push(net.place_name(p).to_string());
            }
        }
        if !targets.is_empty() {
            targets.sort_unstable();
            trans_lines.push((stg.transition_display(t), targets));
        }
    }
    trans_lines.sort_unstable();
    for (display, targets) in &trans_lines {
        let _ = writeln!(out, "{} {}", display, targets.join(" "));
    }

    // Explicit place lines: "<place> <sorted targets...>", sorted by name.
    let mut place_lines: Vec<(String, Vec<String>)> = Vec::new();
    for p in net.places() {
        if !is_implicit(stg, p) {
            let mut targets: Vec<String> = net
                .post_p(p)
                .iter()
                .map(|&t| stg.transition_display(t))
                .collect();
            if !targets.is_empty() {
                targets.sort_unstable();
                place_lines.push((net.place_name(p).to_string(), targets));
            }
        }
    }
    place_lines.sort_unstable();
    for (name, targets) in &place_lines {
        let _ = writeln!(out, "{} {}", name, targets.join(" "));
    }

    let mut marks: Vec<String> = Vec::new();
    for i in net.initial_marking().iter_ones() {
        let p = PlaceId(i as u32);
        if is_implicit(stg, p) {
            let pre = stg.transition_display(net.pre_p(p)[0]);
            let post = stg.transition_display(net.post_p(p)[0]);
            marks.push(format!("<{pre},{post}>"));
        } else {
            marks.push(net.place_name(p).to_string());
        }
    }
    marks.sort_unstable();
    let _ = writeln!(out, ".marking {{ {} }}", marks.join(" "));
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;

    #[test]
    fn sorted_and_fixpoint() {
        let text = "\
.model m
.outputs y
.inputs x
.graph
y- x+
x- y-
y+ x-
x+ y+
.marking { <y-,x+> }
.end
";
        let stg = parse_g(text).unwrap();
        let canon = canonical_g(&stg);
        // Directive order and sorted graph lines.
        let inputs_at = canon.find(".inputs x").unwrap();
        let outputs_at = canon.find(".outputs y").unwrap();
        assert!(inputs_at < outputs_at);
        let x_plus = canon.find("x+ y+").unwrap();
        let x_minus = canon.find("x- y-").unwrap();
        assert!(x_plus < x_minus);
        // Byte-level fixpoint through a reparse.
        let reparsed = parse_g(&canon).unwrap();
        assert_eq!(canonical_g(&reparsed), canon);
    }

    #[test]
    fn permuted_declarations_agree() {
        let a = parse_g(
            ".model m\n.inputs a b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let b = parse_g(
            ".model m\n.inputs b a\n.graph\nb- a+\nb+ a-\na- b-\na+ b+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        assert_eq!(canonical_g(&a), canonical_g(&b));
    }

    #[test]
    fn explicit_places_sorted() {
        let text = "\
.model choice
.inputs a b
.outputs c
.graph
p0 b+ a+
a+ c+
b+ c+/2
c+ a-
c+/2 b-
a- c-
b- c-/2
c- p0
c-/2 p0
.marking { p0 }
.end
";
        let stg = parse_g(text).unwrap();
        let canon = canonical_g(&stg);
        assert!(canon.contains("p0 a+ b+"));
        let reparsed = parse_g(&canon).unwrap();
        assert_eq!(canonical_g(&reparsed), canon);
    }
}
