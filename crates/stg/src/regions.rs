//! Ground-truth signal regions computed on the reachability graph (§II-C).
//!
//! Excitation regions ER, quiescent regions QR, restricted quiescent regions
//! QR\*, the generalized regions GER/GQR and the backward regions BR of the
//! Appendix. The structural flow approximates all of these; this module
//! computes them exactly so that tests and the state-based baselines can
//! compare.

use crate::encode::StateEncoding;
use crate::signal::{Direction, SignalId};
use crate::stg::Stg;
use si_boolean::Bits;
use si_petri::{ReachabilityGraph, StateId, TransId};

/// A set of states of the reachability graph.
pub type StateSet = Bits;

/// The exact regions of one signal.
#[derive(Clone, Debug)]
pub struct SignalRegions {
    /// The signal these regions belong to.
    pub signal: SignalId,
    /// The signal's transitions, in STG order.
    pub transitions: Vec<TransId>,
    /// `er[i]` — markings enabling `transitions[i]`.
    pub er: Vec<StateSet>,
    /// `qr[i]` — quiescent region of `transitions[i]`.
    pub qr: Vec<StateSet>,
    /// `qr_restricted[i]` — QR minus all other QRs of the signal.
    pub qr_restricted: Vec<StateSet>,
    /// `br[i]` — backward quiescent region of `transitions[i]`.
    pub br: Vec<StateSet>,
    /// Union of ERs of rising transitions.
    pub ger_rise: StateSet,
    /// Union of ERs of falling transitions.
    pub ger_fall: StateSet,
    /// Union of QRs of rising transitions (signal stable at 1).
    pub gqr_one: StateSet,
    /// Union of QRs of falling transitions (signal stable at 0).
    pub gqr_zero: StateSet,
}

impl SignalRegions {
    /// Computes all regions of `signal` on the RG.
    pub fn compute(stg: &Stg, rg: &ReachabilityGraph, signal: SignalId) -> Self {
        let ns = rg.state_count();
        let transitions: Vec<TransId> = stg.transitions_of(signal).to_vec();

        // States enabling any transition of `signal`.
        let mut enables_signal = Bits::zeros(ns);
        for s in rg.states() {
            if rg
                .successors(s)
                .iter()
                .any(|&(t, _)| stg.signal_of(t) == signal)
            {
                enables_signal.set(s.index(), true);
            }
        }

        let mut er = Vec::new();
        let mut qr = Vec::new();
        let mut br = Vec::new();
        for &t in &transitions {
            // ER(t): states with an outgoing t edge.
            let mut e = Bits::zeros(ns);
            for s in rg.states() {
                if rg.successors(s).iter().any(|&(u, _)| u == t) {
                    e.set(s.index(), true);
                }
            }

            // QR(t): forward closure from t-successors over states that do
            // not enable any transition of the signal.
            let mut q = Bits::zeros(ns);
            let mut stack: Vec<StateId> = Vec::new();
            for s in rg.states() {
                for &(u, d) in rg.successors(s) {
                    if u == t && !enables_signal.get(d.index()) && !q.get(d.index()) {
                        q.set(d.index(), true);
                        stack.push(d);
                    }
                }
            }
            while let Some(s) = stack.pop() {
                for &(_, d) in rg.successors(s) {
                    if !enables_signal.get(d.index()) && !q.get(d.index()) {
                        q.set(d.index(), true);
                        stack.push(d);
                    }
                }
            }

            // BR(t): backward closure from ER(t) over non-enabling states.
            let mut b = Bits::zeros(ns);
            let mut stack: Vec<StateId> = e.iter_ones().map(|i| StateId(i as u32)).collect();
            while let Some(s) = stack.pop() {
                for &(_, p) in rg.predecessors(s) {
                    if !enables_signal.get(p.index()) && !b.get(p.index()) {
                        b.set(p.index(), true);
                        stack.push(p);
                    }
                }
            }

            er.push(e);
            qr.push(q);
            br.push(b);
        }

        // Restricted QRs.
        let mut qr_restricted = Vec::new();
        for (i, q) in qr.iter().enumerate() {
            let mut r = q.clone();
            for (j, other) in qr.iter().enumerate() {
                if i != j {
                    r.subtract(other);
                }
            }
            qr_restricted.push(r);
        }

        // Generalized regions.
        let mut ger_rise = Bits::zeros(ns);
        let mut ger_fall = Bits::zeros(ns);
        let mut gqr_one = Bits::zeros(ns);
        let mut gqr_zero = Bits::zeros(ns);
        for (i, &t) in transitions.iter().enumerate() {
            match stg.direction_of(t) {
                Direction::Rise => {
                    ger_rise.union_with(&er[i]);
                    gqr_one.union_with(&qr[i]);
                }
                Direction::Fall => {
                    ger_fall.union_with(&er[i]);
                    gqr_zero.union_with(&qr[i]);
                }
            }
        }

        SignalRegions {
            signal,
            transitions,
            er,
            qr,
            qr_restricted,
            br,
            ger_rise,
            ger_fall,
            gqr_one,
            gqr_zero,
        }
    }

    /// Index of a transition within [`SignalRegions::transitions`].
    pub fn transition_index(&self, t: TransId) -> Option<usize> {
        self.transitions.iter().position(|&u| u == t)
    }
}

/// Collects the distinct binary codes of a state set.
pub fn codes_of(enc: &StateEncoding, set: &StateSet) -> Vec<Bits> {
    let mut out: std::collections::BTreeSet<Bits> = Default::default();
    for i in set.iter_ones() {
        out.insert(enc.code(StateId(i as u32)).clone());
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Direction::{Fall, Rise};
    use crate::signal::SignalKind;

    /// x+ -> y+ -> x- -> y- loop.
    fn toggle() -> (Stg, ReachabilityGraph, StateEncoding) {
        let mut b = Stg::builder("toggle");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let xp = b.add_transition(x, Rise);
        let yp = b.add_transition(y, Rise);
        let xm = b.add_transition(x, Fall);
        let ym = b.add_transition(y, Fall);
        b.arc(xp, yp);
        b.arc(yp, xm);
        b.arc(xm, ym);
        let p = b.arc(ym, xp);
        b.mark_place(p);
        let stg = b.build();
        let rg = ReachabilityGraph::build(stg.net(), 1000).unwrap();
        let enc = StateEncoding::compute(&stg, &rg).unwrap();
        (stg, rg, enc)
    }

    #[test]
    fn toggle_regions_partition() {
        let (stg, rg, _enc) = toggle();
        let y = stg.signal_by_name("y").unwrap();
        let r = SignalRegions::compute(&stg, &rg, y);
        // 4 states: s0 (pre x+), s1 (y+ enabled), s2 (x- enabled, y=1),
        // s3 (y- enabled).
        assert_eq!(r.transitions.len(), 2);
        let rise_idx = r
            .transitions
            .iter()
            .position(|&t| stg.direction_of(t) == Rise)
            .unwrap();
        let fall_idx = 1 - rise_idx;
        assert_eq!(r.er[rise_idx].count_ones(), 1);
        assert_eq!(r.er[fall_idx].count_ones(), 1);
        // QR(y+) = the single state where y=1 and x- is pending.
        assert_eq!(r.qr[rise_idx].count_ones(), 1);
        // QR(y-) = the state before x+ (y stable 0).
        assert_eq!(r.qr[fall_idx].count_ones(), 1);
        // ER ∪ QR covers all 4 states for a 2-transition signal.
        let mut all = r.ger_rise.clone();
        all.union_with(&r.ger_fall);
        all.union_with(&r.gqr_one);
        all.union_with(&r.gqr_zero);
        assert_eq!(all.count_ones(), 4);
        // restricted == plain here (no overlap possible with one + and one -)
        assert_eq!(r.qr_restricted[rise_idx], r.qr[rise_idx]);
    }

    #[test]
    fn er_and_qr_disjoint_for_signal(/* ER enables, QR does not */) {
        let (stg, rg, _enc) = toggle();
        let y = stg.signal_by_name("y").unwrap();
        let r = SignalRegions::compute(&stg, &rg, y);
        for e in &r.er {
            for q in &r.qr {
                assert!(!e.intersects(q));
            }
        }
    }

    #[test]
    fn backward_region_of_toggle() {
        let (stg, rg, _enc) = toggle();
        let y = stg.signal_by_name("y").unwrap();
        let r = SignalRegions::compute(&stg, &rg, y);
        let rise_idx = r
            .transitions
            .iter()
            .position(|&t| stg.direction_of(t) == Rise)
            .unwrap();
        // BR(y+): states that can reach ER(y+) without enabling y
        // transitions — exactly the state before x+ (s0).
        assert_eq!(r.br[rise_idx].count_ones(), 1);
        // and it is the QR(y-) state
        let fall_idx = 1 - rise_idx;
        assert_eq!(r.br[rise_idx], r.qr[fall_idx]);
    }

    #[test]
    fn codes_of_regions() {
        let (stg, rg, enc) = toggle();
        let y = stg.signal_by_name("y").unwrap();
        let r = SignalRegions::compute(&stg, &rg, y);
        let rise_idx = r
            .transitions
            .iter()
            .position(|&t| stg.direction_of(t) == Rise)
            .unwrap();
        let er_codes = codes_of(&enc, &r.er[rise_idx]);
        assert_eq!(er_codes.len(), 1);
        // At ER(y+): x=1, y=0 -> code 10 (signal order x,y).
        assert!(er_codes[0].get(0));
        assert!(!er_codes[0].get(1));
    }
}
