//! Parser and writer for the `.g` (astg) STG interchange format.
//!
//! The supported subset is the one used by the classic asynchronous
//! benchmark suite and by petrify-family tools:
//!
//! ```text
//! .model name
//! .inputs a b
//! .outputs c
//! .internal x
//! .graph
//! a+ b+ c+/2      # arcs from a+ to b+ and to c+/2 (implicit places)
//! p1 c-           # place to transition
//! c- p1           # transition to place
//! .marking { p1 <a+,b+> }
//! .end
//! ```
//!
//! Transition tokens are `name`, a sign `+`/`-`, and an optional `/k`
//! instance. Tokens that do not parse as transitions of declared signals are
//! places. Comments start with `#`.

use crate::signal::{Direction, SignalKind};
use crate::stg::{Stg, StgBuilder};
use si_petri::{PlaceId, TransId};
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`parse_g`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGError {
    line: usize,
    message: String,
}

impl ParseGError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseGError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseGError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseGError {}

/// A reference to a transition as written in the file, e.g. `d+/2`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct TransRef {
    signal: String,
    direction: Direction,
    instance: u32,
}

fn parse_trans_ref(token: &str, signals: &HashMap<String, SignalKind>) -> Option<TransRef> {
    let (head, instance) = match token.split_once('/') {
        Some((h, i)) => (h, i.parse::<u32>().ok()?),
        None => (token, 1),
    };
    let (name, dir) = if let Some(n) = head.strip_suffix('+') {
        (n, Direction::Rise)
    } else if let Some(n) = head.strip_suffix('-') {
        (n, Direction::Fall)
    } else {
        return None;
    };
    if !signals.contains_key(name) {
        return None;
    }
    Some(TransRef {
        signal: name.to_string(),
        direction: dir,
        instance,
    })
}

/// Parses an STG from the `.g` format.
///
/// # Errors
///
/// Returns a [`ParseGError`] with the offending line on malformed input
/// (unknown directives are ignored for compatibility).
pub fn parse_g(text: &str) -> Result<Stg, ParseGError> {
    let mut model = String::from("stg");
    let mut signals: Vec<(String, SignalKind)> = Vec::new();
    let mut signal_kinds: HashMap<String, SignalKind> = HashMap::new();
    let mut graph_lines: Vec<(usize, Vec<String>)> = Vec::new();
    let mut marking_tokens: Vec<(usize, String)> = Vec::new();
    let mut in_graph = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        if let Some(rest) = line.strip_prefix(".model") {
            model = rest.trim().to_string();
        } else if let Some(rest) = line
            .strip_prefix(".inputs")
            .or_else(|| line.strip_prefix(".outputs"))
            .or_else(|| line.strip_prefix(".internal"))
        {
            let kind = if line.starts_with(".inputs") {
                SignalKind::Input
            } else if line.starts_with(".outputs") {
                SignalKind::Output
            } else {
                SignalKind::Internal
            };
            for name in rest.split_whitespace() {
                if signal_kinds.contains_key(name) {
                    return Err(ParseGError::new(lineno, format!("duplicate signal {name}")));
                }
                signal_kinds.insert(name.to_string(), kind);
                signals.push((name.to_string(), kind));
            }
        } else if line == ".graph" {
            in_graph = true;
        } else if let Some(rest) = line.strip_prefix(".marking") {
            let inner = rest.trim().trim_start_matches('{').trim_end_matches('}');
            // Keep angle-bracket tokens together: "<a+,b->" has no spaces in
            // the classic format.
            for tok in inner.split_whitespace() {
                marking_tokens.push((lineno, tok.to_string()));
            }
            in_graph = false;
        } else if line == ".end" {
            in_graph = false;
        } else if line.starts_with('.') {
            // Unknown directive (e.g. ".dummy", ".capacity"): ignored.
            in_graph = false;
        } else if in_graph {
            graph_lines.push((
                lineno,
                line.split_whitespace().map(str::to_string).collect(),
            ));
        } else {
            return Err(ParseGError::new(
                lineno,
                format!("unexpected line {line:?}"),
            ));
        }
    }

    let mut b = Stg::builder(model);
    let mut signal_ids = HashMap::new();
    for (name, kind) in &signals {
        signal_ids.insert(name.clone(), b.add_signal(name.clone(), *kind));
    }

    // First pass: create every referenced transition.
    let mut trans_ids: HashMap<TransRef, TransId> = HashMap::new();
    for (_, tokens) in &graph_lines {
        for tok in tokens {
            if let Some(r) = parse_trans_ref(tok, &signal_kinds) {
                if let std::collections::hash_map::Entry::Vacant(e) = trans_ids.entry(r.clone()) {
                    e.insert(b.add_transition_with_instance(
                        signal_ids[&r.signal],
                        r.direction,
                        r.instance,
                    ));
                }
            }
        }
    }

    // Second pass: arcs. Implicit places between transition pairs are
    // created lazily and remembered for the marking section.
    let mut places: HashMap<String, PlaceId> = HashMap::new();
    let mut implicit: HashMap<(TransId, TransId), PlaceId> = HashMap::new();
    enum NodeRef {
        T(TransId),
        P(PlaceId),
    }
    let resolve =
        |b: &mut StgBuilder, places: &mut HashMap<String, PlaceId>, tok: &str| -> NodeRef {
            if let Some(r) = parse_trans_ref(tok, &signal_kinds) {
                NodeRef::T(trans_ids[&r])
            } else {
                let id = *places
                    .entry(tok.to_string())
                    .or_insert_with(|| b.add_place(tok, false));
                NodeRef::P(id)
            }
        };
    for (lineno, tokens) in &graph_lines {
        if tokens.len() < 2 {
            return Err(ParseGError::new(*lineno, "graph line needs >= 2 tokens"));
        }
        let src = resolve(&mut b, &mut places, &tokens[0]);
        for tok in &tokens[1..] {
            let dst = resolve(&mut b, &mut places, tok);
            match (&src, dst) {
                (NodeRef::T(t1), NodeRef::T(t2)) => {
                    let p = b.arc(*t1, t2);
                    implicit.insert((*t1, t2), p);
                }
                (NodeRef::T(t), NodeRef::P(p)) => {
                    b.arc_tp(*t, p);
                }
                (NodeRef::P(p), NodeRef::T(t)) => {
                    b.arc_pt(*p, t);
                }
                (NodeRef::P(_), NodeRef::P(_)) => {
                    return Err(ParseGError::new(*lineno, "place-to-place arc"));
                }
            }
        }
    }

    // Marking.
    for (lineno, tok) in &marking_tokens {
        if let Some(inner) = tok.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
            let (a, bb) = inner
                .split_once(',')
                .ok_or_else(|| ParseGError::new(*lineno, "malformed <t,t> marking token"))?;
            let ra = parse_trans_ref(a, &signal_kinds)
                .ok_or_else(|| ParseGError::new(*lineno, format!("unknown transition {a}")))?;
            let rb = parse_trans_ref(bb, &signal_kinds)
                .ok_or_else(|| ParseGError::new(*lineno, format!("unknown transition {bb}")))?;
            let key = (
                *trans_ids
                    .get(&ra)
                    .ok_or_else(|| ParseGError::new(*lineno, format!("unused transition {a}")))?,
                *trans_ids
                    .get(&rb)
                    .ok_or_else(|| ParseGError::new(*lineno, format!("unused transition {bb}")))?,
            );
            let p = implicit
                .get(&key)
                .ok_or_else(|| ParseGError::new(*lineno, format!("no implicit place {tok}")))?;
            b.mark_place(*p);
        } else if let Some(&p) = places.get(tok.as_str()) {
            b.mark_place(p);
        } else {
            return Err(ParseGError::new(*lineno, format!("unknown place {tok}")));
        }
    }

    Ok(b.build())
}

/// Serializes an STG back to the `.g` format.
///
/// Implicit places (single producer, single consumer, `<...>`-named) are
/// emitted as direct transition-to-transition arcs; everything else uses
/// explicit place lines.
pub fn write_g(stg: &Stg) -> String {
    use std::fmt::Write;
    let net = stg.net();
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", stg.name());
    for (directive, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let names: Vec<&str> = stg
            .signals()
            .filter(|&s| stg.signal_kind(s) == kind)
            .map(|s| stg.signal_name(s))
            .collect();
        if !names.is_empty() {
            let _ = writeln!(out, "{} {}", directive, names.join(" "));
        }
    }
    let _ = writeln!(out, ".graph");
    let is_implicit = |p: si_petri::PlaceId| {
        net.place_name(p).starts_with('<') && net.pre_p(p).len() == 1 && net.post_p(p).len() == 1
    };
    for t in net.transitions() {
        let mut targets: Vec<String> = Vec::new();
        for &p in net.post_t(t) {
            if is_implicit(p) {
                targets.push(stg.transition_display(net.post_p(p)[0]));
            } else {
                targets.push(net.place_name(p).to_string());
            }
        }
        if !targets.is_empty() {
            let _ = writeln!(out, "{} {}", stg.transition_display(t), targets.join(" "));
        }
    }
    for p in net.places() {
        if !is_implicit(p) {
            let targets: Vec<String> = net
                .post_p(p)
                .iter()
                .map(|&t| stg.transition_display(t))
                .collect();
            if !targets.is_empty() {
                let _ = writeln!(out, "{} {}", net.place_name(p), targets.join(" "));
            }
        }
    }
    let mut marks: Vec<String> = Vec::new();
    for i in net.initial_marking().iter_ones() {
        let p = si_petri::PlaceId(i as u32);
        if is_implicit(p) {
            let pre = stg.transition_display(net.pre_p(p)[0]);
            let post = stg.transition_display(net.post_p(p)[0]);
            marks.push(format!("<{pre},{post}>"));
        } else {
            marks.push(net.place_name(p).to_string());
        }
    }
    let _ = writeln!(out, ".marking {{ {} }}", marks.join(" "));
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = "\
.model toggle
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
";

    #[test]
    fn parses_toggle() {
        let stg = parse_g(TOGGLE).unwrap();
        assert_eq!(stg.name(), "toggle");
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().place_count(), 4);
        assert_eq!(stg.net().initial_marking().count_ones(), 1);
        let y = stg.signal_by_name("y").unwrap();
        assert_eq!(stg.signal_kind(y), SignalKind::Output);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let stg = parse_g(TOGGLE).unwrap();
        let text = write_g(&stg);
        let stg2 = parse_g(&text).unwrap();
        assert_eq!(stg.signal_count(), stg2.signal_count());
        assert_eq!(stg.net().transition_count(), stg2.net().transition_count());
        assert_eq!(stg.net().place_count(), stg2.net().place_count());
        assert_eq!(
            stg.net().initial_marking().count_ones(),
            stg2.net().initial_marking().count_ones()
        );
    }

    #[test]
    fn explicit_places_and_choice() {
        let text = "\
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+/2
c+ a-
c+/2 b-
a- c-
b- c-/2
c- p0
c-/2 p0
.marking { p0 }
.end
";
        let stg = parse_g(text).unwrap();
        let p0 = stg.net().place_by_name("p0").unwrap();
        assert_eq!(stg.net().post_p(p0).len(), 2);
        assert!(stg.net().is_free_choice());
        assert!(stg.net().initial_marking().get(p0.index()));
        // instance /2 resolved
        assert!(stg.transition_by_display("c+/2").is_some());
    }

    #[test]
    fn instances_roundtrip() {
        let text = "\
.model multi
.inputs a
.outputs d
.graph
a+ d+/2
d+/2 a-
a- d-
d- a+
.marking { <d-,a+> }
.end
";
        let stg = parse_g(text).unwrap();
        let out = write_g(&stg);
        assert!(out.contains("d+/2"));
        let stg2 = parse_g(&out).unwrap();
        assert!(stg2.transition_by_display("d+/2").is_some());
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let bad = ".model m\n.inputs a\n.graph\np q\n.end\n";
        let err = parse_g(bad).unwrap_err();
        assert!(err.to_string().contains("line 4"));
        let dup = ".model m\n.inputs a a\n";
        assert!(parse_g(dup).is_err());
        let unknown_place =
            ".model m\n.inputs a\n.graph\na+ p\np a-\na- a+\n.marking { zz }\n.end\n";
        assert!(parse_g(unknown_place).is_err());
    }

    #[test]
    fn comments_and_unknown_directives_ignored() {
        let text = "\
# a comment
.model c
.inputs x   # trailing comment
.outputs y
.dummy foo
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
";
        let stg = parse_g(text).unwrap();
        assert_eq!(stg.signal_count(), 2);
    }
}
