//! The signal transition graph model and its builder.

use crate::signal::{Direction, SignalId, SignalKind, TransitionLabel};
use si_petri::{PetriNet, PlaceId, TransId};
use std::collections::HashMap;

/// A signal transition graph: a labelled Petri net (§II-B).
///
/// Construct with [`Stg::builder`] or parse from the `.g` format with
/// [`crate::parse_g`].
///
/// # Examples
///
/// ```
/// use si_stg::{SignalKind, Stg};
///
/// let mut b = Stg::builder("toggle");
/// let x = b.add_signal("x", SignalKind::Input);
/// let y = b.add_signal("y", SignalKind::Output);
/// let xp = b.add_transition(x, si_stg::Direction::Rise);
/// let yp = b.add_transition(y, si_stg::Direction::Rise);
/// let xm = b.add_transition(x, si_stg::Direction::Fall);
/// let ym = b.add_transition(y, si_stg::Direction::Fall);
/// b.arc(xp, yp); b.arc(yp, xm); b.arc(xm, ym);
/// let p = b.arc(ym, xp); // returns the implicit place
/// b.mark_place(p);
/// let stg = b.build();
/// assert_eq!(stg.signal_count(), 2);
/// assert_eq!(stg.transitions_of(x).len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Stg {
    name: String,
    net: PetriNet,
    signal_names: Vec<String>,
    signal_kinds: Vec<SignalKind>,
    labels: Vec<TransitionLabel>,
    by_signal: Vec<Vec<TransId>>,
}

impl Stg {
    /// Starts building an STG with the given model name.
    pub fn builder(name: impl Into<String>) -> StgBuilder {
        StgBuilder {
            name: name.into(),
            net: PetriNet::builder(),
            signal_names: Vec::new(),
            signal_kinds: Vec::new(),
            labels: Vec::new(),
            instance_counters: HashMap::new(),
            marked: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying Petri net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signal_names.len()
    }

    /// Iterates over all signal ids.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> {
        (0..self.signal_count() as u16).map(SignalId)
    }

    /// Signals that must be synthesized (outputs and internals).
    pub fn synthesized_signals(&self) -> Vec<SignalId> {
        self.signals()
            .filter(|&s| self.signal_kind(s).is_synthesized())
            .collect()
    }

    /// The name of a signal.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.signal_names[s.index()]
    }

    /// The kind of a signal.
    pub fn signal_kind(&self, s: SignalId) -> SignalKind {
        self.signal_kinds[s.index()]
    }

    /// Looks up a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signal_names
            .iter()
            .position(|n| n == name)
            .map(|i| SignalId(i as u16))
    }

    /// The label of a transition.
    pub fn label(&self, t: TransId) -> TransitionLabel {
        self.labels[t.index()]
    }

    /// The signal a transition switches.
    pub fn signal_of(&self, t: TransId) -> SignalId {
        self.labels[t.index()].signal
    }

    /// The direction of a transition.
    pub fn direction_of(&self, t: TransId) -> Direction {
        self.labels[t.index()].direction
    }

    /// All transitions of a signal.
    pub fn transitions_of(&self, s: SignalId) -> &[TransId] {
        &self.by_signal[s.index()]
    }

    /// Transitions of a signal with the given direction.
    pub fn transitions_of_dir(&self, s: SignalId, d: Direction) -> Vec<TransId> {
        self.by_signal[s.index()]
            .iter()
            .copied()
            .filter(|&t| self.direction_of(t) == d)
            .collect()
    }

    /// Human-readable name of a transition, e.g. `d+/2`.
    pub fn transition_display(&self, t: TransId) -> String {
        self.label(t)
            .display_with(self.signal_name(self.signal_of(t)))
    }

    /// Returns `true` if a transition switches an input signal.
    pub fn is_input_transition(&self, t: TransId) -> bool {
        self.signal_kind(self.signal_of(t)) == SignalKind::Input
    }

    /// Looks up a transition by its display name (e.g. `a+`, `d-/2`).
    pub fn transition_by_display(&self, name: &str) -> Option<TransId> {
        self.net
            .transitions()
            .find(|&t| self.transition_display(t) == name)
    }
}

/// Incremental constructor for [`Stg`]; see [`Stg::builder`].
#[derive(Debug)]
pub struct StgBuilder {
    name: String,
    net: si_petri::PetriNetBuilder,
    signal_names: Vec<String>,
    signal_kinds: Vec<SignalKind>,
    labels: Vec<TransitionLabel>,
    instance_counters: HashMap<(SignalId, char), u32>,
    marked: Vec<PlaceId>,
}

impl StgBuilder {
    /// Declares a signal.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_signal(&mut self, name: impl Into<String>, kind: SignalKind) -> SignalId {
        let name = name.into();
        assert!(
            !self.signal_names.contains(&name),
            "duplicate signal name {name:?}"
        );
        let id = SignalId(self.signal_names.len() as u16);
        self.signal_names.push(name);
        self.signal_kinds.push(kind);
        id
    }

    /// Adds a transition of `signal` in the given direction. Instances are
    /// numbered automatically (`a+`, `a+/2`, …).
    pub fn add_transition(&mut self, signal: SignalId, direction: Direction) -> TransId {
        let key = (signal, direction.sign());
        let counter = self.instance_counters.entry(key).or_insert(0);
        let instance = *counter + 1;
        self.add_transition_with_instance(signal, direction, instance)
    }

    /// Adds a transition with an explicit instance number (used by the `.g`
    /// parser, where `a+/3` may appear before `a+/2`).
    ///
    /// # Panics
    ///
    /// Panics if that `(signal, direction, instance)` triple already exists.
    pub fn add_transition_with_instance(
        &mut self,
        signal: SignalId,
        direction: Direction,
        instance: u32,
    ) -> TransId {
        let label = TransitionLabel {
            signal,
            direction,
            instance,
        };
        assert!(
            !self.labels.contains(&label),
            "duplicate transition {}",
            label.display_with(&self.signal_names[signal.index()])
        );
        let key = (signal, direction.sign());
        let counter = self.instance_counters.entry(key).or_insert(0);
        *counter = (*counter).max(instance);
        let name = label.display_with(&self.signal_names[signal.index()]);
        let t = self.net.add_transition(name);
        self.labels.push(label);
        t
    }

    /// Adds an explicit place.
    pub fn add_place(&mut self, name: impl Into<String>, marked: bool) -> PlaceId {
        let p = self.net.add_place(name, marked);
        if marked {
            self.marked.push(p);
        }
        p
    }

    /// Adds an implicit place between two transitions (named
    /// `<a+,b->`-style), returning it so it can be marked.
    pub fn arc(&mut self, from: TransId, to: TransId) -> PlaceId {
        let disp = |t: TransId| {
            let l = self.labels[t.index()];
            l.display_with(&self.signal_names[l.signal.index()])
        };
        let name = format!("<{},{}>", disp(from), disp(to));
        let p = self.net.add_place(name, false);
        self.net.arc_tp(from, p);
        self.net.arc_pt(p, to);
        p
    }

    /// Adds an arc from a place to a transition.
    pub fn arc_pt(&mut self, p: PlaceId, t: TransId) -> &mut Self {
        self.net.arc_pt(p, t);
        self
    }

    /// Adds an arc from a transition to a place.
    pub fn arc_tp(&mut self, t: TransId, p: PlaceId) -> &mut Self {
        self.net.arc_tp(t, p);
        self
    }

    /// Marks a place in the initial marking.
    ///
    /// Only usable with places created by [`StgBuilder::arc`]; explicit
    /// places take their marking at creation time.
    pub fn mark_place(&mut self, p: PlaceId) {
        self.marked.push(p);
    }

    /// Finalizes the STG.
    pub fn build(self) -> Stg {
        // Rebuild with the accumulated marking: PetriNetBuilder fixes the
        // marking at place creation, so patch via a rebuild pass.
        let marked: std::collections::HashSet<usize> =
            self.marked.iter().map(|p| p.index()).collect();
        let tmp = self.net.build();
        let mut b = PetriNet::builder();
        for p in tmp.places() {
            b.add_place(
                tmp.place_name(p),
                marked.contains(&p.index()) || tmp.initial_marking().get(p.index()),
            );
        }
        for t in tmp.transitions() {
            let nt = b.add_transition(tmp.transition_name(t));
            debug_assert_eq!(nt, t);
            for &p in tmp.pre_t(t) {
                b.arc_pt(p, nt);
            }
            for &p in tmp.post_t(t) {
                b.arc_tp(nt, p);
            }
        }
        let net = b.build();
        let mut by_signal = vec![Vec::new(); self.signal_names.len()];
        for (i, l) in self.labels.iter().enumerate() {
            by_signal[l.signal.index()].push(TransId(i as u32));
        }
        Stg {
            name: self.name,
            net,
            signal_names: self.signal_names,
            signal_kinds: self.signal_kinds,
            labels: self.labels,
            by_signal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Direction::{Fall, Rise};

    fn toggle() -> Stg {
        let mut b = Stg::builder("toggle");
        let x = b.add_signal("x", SignalKind::Input);
        let y = b.add_signal("y", SignalKind::Output);
        let xp = b.add_transition(x, Rise);
        let yp = b.add_transition(y, Rise);
        let xm = b.add_transition(x, Fall);
        let ym = b.add_transition(y, Fall);
        b.arc(xp, yp);
        b.arc(yp, xm);
        b.arc(xm, ym);
        let p = b.arc(ym, xp);
        b.mark_place(p);
        b.build()
    }

    #[test]
    fn builder_basics() {
        let stg = toggle();
        assert_eq!(stg.name(), "toggle");
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().place_count(), 4);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().initial_marking().count_ones(), 1);
        let x = stg.signal_by_name("x").unwrap();
        assert_eq!(stg.signal_kind(x), SignalKind::Input);
        assert_eq!(stg.transitions_of(x).len(), 2);
        assert_eq!(stg.transitions_of_dir(x, Rise).len(), 1);
        assert_eq!(stg.synthesized_signals().len(), 1);
    }

    #[test]
    fn transition_naming_and_lookup() {
        let stg = toggle();
        let t = stg.transition_by_display("y+").unwrap();
        assert_eq!(stg.transition_display(t), "y+");
        assert_eq!(stg.direction_of(t), Rise);
        assert_eq!(stg.signal_name(stg.signal_of(t)), "y");
        assert!(!stg.is_input_transition(t));
        assert!(stg.transition_by_display("y+/2").is_none());
    }

    #[test]
    fn instance_numbering() {
        let mut b = Stg::builder("multi");
        let d = b.add_signal("d", SignalKind::Output);
        let d1 = b.add_transition(d, Rise);
        let d2 = b.add_transition(d, Rise);
        let dm = b.add_transition(d, Fall);
        b.arc(d1, dm);
        b.arc(d2, dm);
        let p = b.arc(dm, d1);
        b.mark_place(p);
        let stg = b.build();
        assert_eq!(stg.transition_display(d1), "d+");
        assert_eq!(stg.transition_display(d2), "d+/2");
        assert_eq!(stg.transition_display(dm), "d-");
        assert_eq!(stg.label(d2).instance, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate signal")]
    fn duplicate_signal_panics() {
        let mut b = Stg::builder("bad");
        b.add_signal("x", SignalKind::Input);
        b.add_signal("x", SignalKind::Output);
    }
}
