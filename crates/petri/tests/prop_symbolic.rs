//! Differential suite: the symbolic BDD backend against the explicit
//! explorer and the STG-level coding oracles.
//!
//! The explicit explorer is the oracle of record (ROADMAP discipline):
//! on every net both backends can finish, the symbolic reachable-state
//! count, safeness verdict, per-transition excitation-region sizes and
//! sampled state memberships must be **identical** — on proptest-grown
//! random nets and on every scalable generator family. The STG layer is
//! pinned the same way against [`StateEncoding`]/[`CodingAnalysis`]/
//! [`SignalRegions`]: signal values, ER/QR membership, USC/CSC verdicts
//! and distinct-code counts.
//!
//! The explicit side honors `SISYN_DIFF_SHARDS` (CI runs the suite at two
//! shard counts) — the symbolic answers must match the sequential *and*
//! the sharded spelling of the oracle.

use proptest::prelude::*;
use si_petri::{
    PetriNet, ReachError, ReachOptions, ReachabilityGraph, StateId, SymbolicReach, TransId,
};
use si_stg::generators::{clatch, philosophers, vme_burst, vme_chain};
use si_stg::{CodingAnalysis, SignalRegions, StateEncoding, Stg, SymbolicAnalysis};

/// Shard count of the explicit oracle (`SISYN_DIFF_SHARDS`, default 1) —
/// the differential assertions are shard-invariant because the explicit
/// build itself is pinned bit-identical at any shard count.
fn diff_shards() -> usize {
    std::env::var("SISYN_DIFF_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn explicit(net: &PetriNet, cap: usize) -> Result<ReachabilityGraph, ReachError> {
    ReachabilityGraph::build_with(net, ReachOptions::with_cap(cap).shards(diff_shards()))
}

/// Sampled subset of the explicit states: all of them on small graphs, an
/// evenly-strided slice on bigger ones (membership checks are per-state
/// BDD walks; the counts above already pin the whole set).
fn sample_states(rg: &ReachabilityGraph) -> Vec<StateId> {
    let ns = rg.state_count();
    let stride = (ns / 256).max(1);
    rg.states().step_by(stride).collect()
}

/// Net-level agreement: counts, per-transition ER cardinalities, sampled
/// membership and enabledness.
fn assert_net_agrees(net: &PetriNet) {
    let rg = explicit(net, 4_000_000).expect("explicit oracle within cap");
    let sym = SymbolicReach::build(net).expect("symbolic build");
    assert!(sym.is_complete());
    assert_eq!(
        sym.state_count(),
        rg.state_count() as u128,
        "reachable-state count"
    );
    let mut sym2 = SymbolicReach::build(net).expect("symbolic rebuild");
    for t in 0..net.transition_count() {
        assert_eq!(
            sym2.er_count(t),
            rg.states_enabling(TransId(t as u32)).len() as u128,
            "ER cardinality of transition {t}"
        );
    }
    for s in sample_states(&rg) {
        let m = rg.marking(s);
        assert!(sym.contains(m), "reachable marking in the symbolic set");
        for t in 0..net.transition_count() {
            let explicit_enabled = rg
                .successors(s)
                .iter()
                .any(|&(u, _)| u == TransId(t as u32));
            assert_eq!(
                sym.is_enabled_at(t, m),
                explicit_enabled,
                "enabledness of transition {t}"
            );
        }
    }
}

/// STG-level agreement: everything of the net level plus signal values,
/// ER/QR membership, consistency and the USC/CSC coding verdicts.
fn assert_stg_agrees(stg: &Stg) {
    assert_net_agrees(stg.net());
    let rg = explicit(stg.net(), 4_000_000).expect("explicit oracle within cap");
    let enc = StateEncoding::compute(stg, &rg).expect("generator STGs are consistent");
    let coding = CodingAnalysis::compute(stg, &rg, &enc);
    let sym = SymbolicAnalysis::build(stg).expect("symbolic build");

    assert!(sym.consistency().is_consistent(), "consistency verdict");
    assert_eq!(sym.state_count(), rg.state_count() as u128);
    assert_eq!(
        sym.distinct_code_count(),
        Some(enc.distinct_codes().len() as u128),
        "distinct code count"
    );
    assert_eq!(sym.has_usc(), Some(coding.has_usc()), "USC verdict");
    assert_eq!(sym.has_csc(), Some(coding.has_csc()), "CSC verdict");

    let samples = sample_states(&rg);
    for sig in stg.signals() {
        let regions = SignalRegions::compute(stg, &rg, sig);
        // ER cardinality per transition of the signal, against the exact
        // region oracle.
        for (i, &t) in regions.transitions.iter().enumerate() {
            assert_eq!(
                sym.er_count(t),
                regions.er[i].count_ones() as u128,
                "ER size of {}",
                stg.transition_display(t)
            );
        }
        for &s in &samples {
            let m = rg.marking(s);
            // Signal value against the explicit encoding.
            assert_eq!(
                sym.value(sig, m),
                Some(enc.value(s, sig)),
                "value of {} at state {}",
                stg.signal_name(sig),
                s.index()
            );
            // ER membership per transition of the signal.
            for &t in &regions.transitions {
                let explicit_er = rg.successors(s).iter().any(|&(u, _)| u == t);
                assert_eq!(
                    sym.in_er(t, m),
                    explicit_er,
                    "ER membership of {}",
                    stg.transition_display(t)
                );
            }
            // Generalized QR membership: value stable at v with no
            // transition of the signal enabled.
            let excited = rg
                .successors(s)
                .iter()
                .any(|&(t, _)| stg.signal_of(t) == sig);
            for v in [false, true] {
                let explicit_qr = enc.value(s, sig) == v && !excited;
                assert_eq!(
                    sym.in_qr(sig, v, m),
                    Some(explicit_qr),
                    "QR({}, {v}) membership",
                    stg.signal_name(sig)
                );
            }
            // The region oracle's generalized quiescent sets are subsets
            // of the symbolic ones (they exclude quiescent states not
            // forward-reachable from a switch of the signal).
            if regions.gqr_one.get(s.index()) {
                assert_eq!(sym.in_qr(sig, true, m), Some(true));
            }
            if regions.gqr_zero.get(s.index()) {
                assert_eq!(sym.in_qr(sig, false, m), Some(true));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Generator families.

#[test]
fn clatch_family_agrees() {
    for n in 1..=6 {
        assert_stg_agrees(&clatch(n));
    }
}

#[test]
fn vme_chain_family_agrees() {
    for n in 1..=4 {
        assert_stg_agrees(&vme_chain(n));
    }
}

#[test]
fn vme_burst_family_agrees() {
    for n in 1..=4 {
        assert_stg_agrees(&vme_burst(n));
    }
}

#[test]
fn philosophers_family_agrees() {
    for n in 2..=4 {
        assert_stg_agrees(&philosophers(n));
    }
}

/// The acceptance witness: a concurrent generator instance solved
/// symbolically at a size where the explicit explorer exceeds its default
/// 4M-state cap. `clatch(22)` has exactly `2^23 = 8388608` reachable
/// markings — the symbolic count proves the explicit default cap
/// (4000000) must overflow, and a small-cap explicit run witnesses the
/// overflow behaviour without walking millions of states in a debug test.
#[test]
fn symbolic_solves_beyond_the_explicit_cap() {
    let stg = clatch(22);
    let sym = SymbolicReach::build(stg.net()).expect("symbolic build");
    assert!(sym.is_complete());
    assert_eq!(sym.state_count(), 1u128 << 23);
    assert!(sym.state_count() > 4_000_000);
    match explicit(stg.net(), 100_000) {
        Err(ReachError::StateCapExceeded { cap: 100_000 }) => {}
        other => panic!("expected the explicit cap to overflow, got {other:?}"),
    }
}

/// The structural variable-ordering heuristic: `n` disjoint two-place
/// rings declared in the *hostile* order (all first places, then all
/// second places — the striping a parsed `.g` file produces, under which
/// the reached set `⋀_i (a_i ⊕ c_i)` is an exponential BDD in raw
/// declaration order). The flow-order DFS must pair each ring's places on
/// adjacent levels, keeping the build linear — and the answers identical
/// to the explicit oracle regardless.
#[test]
fn hostile_declaration_order_stays_linear_and_agrees() {
    let n = 18;
    let mut b = PetriNet::builder();
    let firsts: Vec<_> = (0..n).map(|i| b.add_place(format!("a{i}"), true)).collect();
    let seconds: Vec<_> = (0..n)
        .map(|i| b.add_place(format!("c{i}"), false))
        .collect();
    for i in 0..n {
        let go = b.add_transition(format!("go{i}"));
        let back = b.add_transition(format!("back{i}"));
        b.arc_pt(firsts[i], go);
        b.arc_tp(go, seconds[i]);
        b.arc_pt(seconds[i], back);
        b.arc_tp(back, firsts[i]);
    }
    let net = b.build();
    let sym = SymbolicReach::build(&net).expect("symbolic build");
    assert!(sym.is_complete());
    assert_eq!(sym.state_count(), 1u128 << n);
    // Striped order needs ≥ 2^18 nodes for the reached set alone (node
    // counts are cumulative — the manager hash-conses and never frees);
    // the flow order keeps the whole build two orders of magnitude under
    // that.
    assert!(
        sym.peak_nodes() < 100_000,
        "peak {} nodes — the ordering heuristic regressed",
        sym.peak_nodes()
    );
    assert_net_agrees(&net);
}

// ---------------------------------------------------------------------
// Unsafe nets: both backends must report the same NotSafe verdict.

/// A deliberately unsafe net: two producers feed one place before it is
/// consumed, so the second firing duplicates the token.
fn unsafe_net() -> PetriNet {
    let mut b = PetriNet::builder();
    let p0 = b.add_place("p0", true);
    let p1 = b.add_place("p1", true);
    let q = b.add_place("q", false);
    let t0 = b.add_transition("t0");
    let t1 = b.add_transition("t1");
    b.arc_pt(p0, t0);
    b.arc_tp(t0, q);
    b.arc_pt(p1, t1);
    b.arc_tp(t1, q);
    b.build()
}

#[test]
fn unsafe_nets_agree_on_the_not_safe_verdict() {
    let net = unsafe_net();
    let explicit_err = explicit(&net, 1_000).expect_err("explicit NotSafe");
    let symbolic_err = SymbolicReach::build(&net).expect_err("symbolic NotSafe");
    assert!(matches!(explicit_err, ReachError::NotSafe { .. }));
    assert!(matches!(symbolic_err, ReachError::NotSafe { .. }));
}

// ---------------------------------------------------------------------
// Random nets (the prop_substrate grammar: live, safe, free-choice).

/// Expansion step applied to a random place of a ring (same grammar as the
/// substrate property tests: the result stays live/safe/free-choice).
#[derive(Clone, Debug)]
enum Expand {
    ForkJoin,
    Choice,
    Chain,
}

fn arb_expansions() -> impl Strategy<Value = Vec<(usize, Expand)>> {
    proptest::collection::vec(
        (
            0..64usize,
            prop_oneof![
                Just(Expand::ForkJoin),
                Just(Expand::Choice),
                Just(Expand::Chain)
            ],
        ),
        0..6,
    )
}

/// Builds a net by starting from a 2-place ring and expanding places.
fn build_net(expansions: &[(usize, Expand)]) -> PetriNet {
    let mut nplaces: usize = 2;
    let mut trans: Vec<(Vec<usize>, Vec<usize>)> = vec![(vec![0], vec![1]), (vec![1], vec![0])];
    for (pick, ex) in expansions {
        let target = pick % nplaces;
        match ex {
            Expand::Chain => {
                let fresh = nplaces;
                nplaces += 1;
                for (pre, _) in trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = fresh;
                        }
                    }
                }
                trans.push((vec![target], vec![fresh]));
            }
            Expand::ForkJoin => {
                let (a, b, exit) = (nplaces, nplaces + 1, nplaces + 2);
                nplaces += 3;
                for (pre, _) in trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = exit;
                        }
                    }
                }
                trans.push((vec![target], vec![a, b]));
                trans.push((vec![a, b], vec![exit]));
            }
            Expand::Choice => {
                let (a, b, exit) = (nplaces, nplaces + 1, nplaces + 2);
                nplaces += 3;
                for (pre, _) in trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = exit;
                        }
                    }
                }
                trans.push((vec![target], vec![a]));
                trans.push((vec![target], vec![b]));
                trans.push((vec![a], vec![exit]));
                trans.push((vec![b], vec![exit]));
            }
        }
    }
    let mut builder = PetriNet::builder();
    let places: Vec<_> = (0..nplaces)
        .map(|i| builder.add_place(format!("p{i}"), i == 0))
        .collect();
    for (i, (pre, post)) in trans.iter().enumerate() {
        let t = builder.add_transition(format!("t{i}"));
        for &p in pre {
            builder.arc_pt(places[p], t);
        }
        for &p in post {
            builder.arc_tp(t, places[p]);
        }
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random live/safe/free-choice nets: counts, ER cardinalities,
    /// membership and enabledness all agree with the explicit oracle.
    #[test]
    fn random_nets_agree(expansions in arb_expansions()) {
        assert_net_agrees(&build_net(&expansions));
    }
}
