//! Property tests: structural analyses vs the behavioural oracle on random
//! live free-choice-ish nets.
//!
//! The generator builds random strongly-connected "workflow" nets from a
//! grammar of rings with inserted fork/join and choice/merge diamonds, which
//! keeps them live, safe and free-choice by construction.

use proptest::prelude::*;
use si_petri::{sm_cover, ConcurrencyRelation, PetriNet, ReachabilityGraph};

/// Expansion step applied to a random place of a ring.
#[derive(Clone, Debug)]
enum Expand {
    /// Replace a place by a parallel fork/join of two place chains.
    ForkJoin,
    /// Replace a place by a free-choice diamond of two place chains.
    Choice,
    /// Replace a place by a two-place chain.
    Chain,
}

fn arb_expansions() -> impl Strategy<Value = Vec<(usize, Expand)>> {
    proptest::collection::vec(
        (
            0..64usize,
            prop_oneof![
                Just(Expand::ForkJoin),
                Just(Expand::Choice),
                Just(Expand::Chain),
            ],
        ),
        0..5,
    )
}

/// Builds a net by starting from a 2-place ring and expanding places.
fn build_net(expansions: &[(usize, Expand)]) -> PetriNet {
    // Represent the net symbolically: lists of (pre, post) for transitions
    // over abstract place ids; start with ring p0 -> t -> p1 -> t' -> p0.
    #[derive(Clone)]
    struct Sym {
        nplaces: usize,
        trans: Vec<(Vec<usize>, Vec<usize>)>,
    }
    let mut sym = Sym {
        nplaces: 2,
        trans: vec![(vec![0], vec![1]), (vec![1], vec![0])],
    };
    for (pick, ex) in expansions {
        let target = pick % sym.nplaces;
        // Replace `target` by a sub-structure between a fresh entry
        // transition te and exit transition tx: producers of target now feed
        // an entry place; consumers read an exit place.
        match ex {
            Expand::Chain => {
                // target -> te -> fresh -> (consumers move to fresh)
                let fresh = sym.nplaces;
                sym.nplaces += 1;
                for (pre, _) in sym.trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = fresh;
                        }
                    }
                }
                sym.trans.push((vec![target], vec![fresh]));
            }
            Expand::ForkJoin => {
                let a = sym.nplaces;
                let b = sym.nplaces + 1;
                let c = sym.nplaces + 2;
                sym.nplaces += 3;
                for (pre, _) in sym.trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = c;
                        }
                    }
                }
                sym.trans.push((vec![target], vec![a, b])); // fork
                sym.trans.push((vec![a, b], vec![c])); // join
            }
            Expand::Choice => {
                let a = sym.nplaces;
                let b = sym.nplaces + 1;
                let c = sym.nplaces + 2;
                sym.nplaces += 3;
                for (pre, _) in sym.trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = c;
                        }
                    }
                }
                sym.trans.push((vec![target], vec![a])); // choose left
                sym.trans.push((vec![target], vec![b])); // choose right
                sym.trans.push((vec![a], vec![c])); // merge left
                sym.trans.push((vec![b], vec![c])); // merge right
            }
        }
    }
    let mut builder = PetriNet::builder();
    let places: Vec<_> = (0..sym.nplaces)
        .map(|i| builder.add_place(format!("p{i}"), i == 0))
        .collect();
    for (i, (pre, post)) in sym.trans.iter().enumerate() {
        let t = builder.add_transition(format!("t{i}"));
        for &p in pre {
            builder.arc_pt(places[p], t);
        }
        for &p in post {
            builder.arc_tp(t, places[p]);
        }
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_nets_are_live_safe_fc(exp in arb_expansions()) {
        let net = build_net(&exp);
        prop_assert!(net.is_free_choice());
        let rg = ReachabilityGraph::build(&net, 200_000).expect("safe");
        prop_assert!(rg.is_live(&net));
        prop_assert!(rg.is_strongly_connected());
    }

    #[test]
    fn structural_concurrency_matches_behaviour(exp in arb_expansions()) {
        let net = build_net(&exp);
        let rg = ReachabilityGraph::build(&net, 200_000).expect("safe");
        let cr = ConcurrencyRelation::compute(&net);
        // Exactness on live-safe-FC nets: both inclusions.
        for p in net.places() {
            for q in net.places() {
                if p != q {
                    prop_assert_eq!(cr.places(p, q), rg.places_concurrent(p, q),
                        "places {} {}", p, q);
                }
            }
            for t in net.transitions() {
                prop_assert_eq!(
                    cr.place_transition(p, t),
                    rg.place_transition_concurrent(&net, p, t),
                    "pt {} {}", p, t);
            }
        }
        for a in net.transitions() {
            for b in net.transitions() {
                if a != b {
                    prop_assert_eq!(cr.transitions(a, b),
                        rg.transitions_concurrent(&net, a, b),
                        "tt {} {}", a, b);
                }
            }
        }
    }

    #[test]
    fn sm_cover_covers_everything(exp in arb_expansions()) {
        let net = build_net(&exp);
        let cover = sm_cover(&net).expect("live safe FC nets are SM-coverable");
        let mut covered = vec![false; net.place_count()];
        for sm in &cover {
            for &p in sm.places() {
                covered[p.index()] = true;
            }
            // every adjacent transition is one-in-one-out within the SM
            for &t in sm.transitions() {
                let ins = net.pre_t(t).iter().filter(|p| sm.contains_place(**p)).count();
                let outs = net.post_t(t).iter().filter(|p| sm.contains_place(**p)).count();
                prop_assert_eq!((ins, outs), (1, 1));
            }
            // exactly one token
            let tokens = net.initial_marking().iter_ones()
                .filter(|&i| sm.place_set().get(i)).count();
            prop_assert_eq!(tokens, 1);
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn sm_component_marked_invariantly(exp in arb_expansions()) {
        // One-token SM-components hold exactly one token in EVERY reachable
        // marking (Property 7.2 of the paper).
        let net = build_net(&exp);
        let cover = sm_cover(&net).expect("coverable");
        let rg = ReachabilityGraph::build(&net, 200_000).expect("safe");
        for sm in &cover {
            for s in rg.states() {
                let tokens = rg.marking(s).iter_ones()
                    .filter(|&i| sm.place_set().get(i)).count();
                prop_assert_eq!(tokens, 1, "SM must stay one-token");
            }
        }
    }
}
