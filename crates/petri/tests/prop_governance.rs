//! Property tests of exploration governance: cooperative cancellation
//! fired at a random point of the walk always yields a *clean* partial
//! exploration (no panic, no deadlock, a tagged reason, a plausible state
//! count) at every engine width, and the state count of a cap-bounded
//! exploration is monotone in the cap.

use proptest::prelude::*;
use si_petri::space::{explore_with, ExploreOptions, MarkingSpace, SpaceVisitor, StateSpace};
use si_petri::{Budget, CancelToken, InterruptReason, PetriNet, ReachError, SymbolicReach};
use std::sync::atomic::{AtomicUsize, Ordering};

/// `n` disjoint two-place rings, each with its own token: safe, live, and
/// exactly `2^n` reachable markings — a state space whose size is known
/// in closed form at any shard count.
fn rings(n: usize) -> PetriNet {
    let mut b = PetriNet::builder();
    for i in 0..n {
        let a = b.add_place(format!("a{i}"), true);
        let c = b.add_place(format!("c{i}"), false);
        let go = b.add_transition(format!("go{i}"));
        let back = b.add_transition(format!("back{i}"));
        b.arc_pt(a, go);
        b.arc_tp(go, c);
        b.arc_pt(c, back);
        b.arc_tp(back, a);
    }
    b.build()
}

/// A marking space that cancels `token` on its `k`-th expansion — the
/// proptest's stand-in for a user hitting Ctrl-C at an arbitrary moment.
struct CancelAt {
    inner: MarkingSpace,
    token: CancelToken,
    k: usize,
    expansions: AtomicUsize,
}

impl StateSpace for CancelAt {
    type Violation = ReachError;

    fn words(&self) -> usize {
        self.inner.words()
    }

    fn initial(&self) -> Vec<u64> {
        self.inner.initial()
    }

    fn for_each_successor<Vis: SpaceVisitor<ReachError>>(
        &self,
        state: &[u64],
        scratch: &mut [u64],
        visit: &mut Vis,
    ) -> Result<(), ReachError> {
        if self.expansions.fetch_add(1, Ordering::Relaxed) + 1 == self.k {
            self.token.cancel();
        }
        self.inner.for_each_successor(state, scratch, visit)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cancelling at a random expansion leaves a clean partial result:
    /// the explorers return `Ok`, tag the interruption (or finish — the
    /// checks are amortized, so a late cancel can lose the race against
    /// termination), and never report more states than exist.
    #[test]
    fn cancellation_mid_walk_is_clean_at_every_width(
        k in 1usize..512,
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize), Just(8usize)],
    ) {
        let net = rings(9); // 512 states
        let total = 512usize;
        let token = CancelToken::new();
        let space = CancelAt {
            inner: MarkingSpace::new(&net),
            token: token.clone(),
            k,
            expansions: AtomicUsize::new(0),
        };
        let opts = ExploreOptions::with_cap(usize::MAX)
            .budget(Budget::unbounded().cancel(token.clone()))
            .shards(shards);
        let expl = explore_with(&space, opts).expect("cancellation is not an error");
        prop_assert!(expl.violations.is_empty());
        match expl.interrupted {
            Some(reason) => {
                prop_assert_eq!(reason, InterruptReason::Cancelled);
                prop_assert!(expl.states >= 1);
                prop_assert!(expl.states <= total, "states {} > total", expl.states);
                let i = expl.interrupt().unwrap();
                prop_assert_eq!(i.states_explored, expl.states);
            }
            // The walk outran the next governance checkpoint: it must
            // then be the complete exploration.
            None => prop_assert_eq!(expl.states, total),
        }
        // The token is spent either way — the cancel fired.
        prop_assert!(token.is_cancelled());
    }

    /// The explored-state count of a cap-bounded sequential exploration
    /// is exactly `min(total, cap)` — and therefore monotone in the cap.
    #[test]
    fn capped_state_counts_are_monotone_in_the_budget(
        c1 in 1usize..600,
        c2 in 1usize..600,
    ) {
        let net = rings(9); // 512 states
        let total = 512usize;
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        let run = |cap: usize| {
            let space = MarkingSpace::new(&net);
            explore_with(&space, ExploreOptions::with_cap(cap)).unwrap()
        };
        let el = run(lo);
        let eh = run(hi);
        prop_assert_eq!(el.states, total.min(lo));
        prop_assert_eq!(eh.states, total.min(hi));
        prop_assert!(el.states <= eh.states);
        prop_assert_eq!(el.interrupted.is_some(), lo < total);
        prop_assert_eq!(
            el.cap_exceeded(),
            lo < total,
            "a sub-total cap must tag the partial result"
        );
    }
}

// ---------------------------------------------------------------------
// Symbolic-backend governance: the BDD fixpoint honors the same soft
// budget limits with per-iteration amortized checks, and interruption is
// the same tagged partial verdict (`Ok` + `interrupt()`, never an error).

#[test]
fn symbolic_pre_cancelled_token_is_a_clean_tagged_partial_verdict() {
    let net = rings(9); // 512 states
    let token = CancelToken::new();
    token.cancel();
    let sym = SymbolicReach::build_with(&net, &Budget::unbounded().cancel(token))
        .expect("cancellation is not an error");
    let i = sym.interrupt().expect("tagged partial verdict");
    assert_eq!(i.reason, InterruptReason::Cancelled);
    assert!(!sym.is_complete());
    // The check fires before the first image: only the initial cube.
    assert_eq!(sym.iterations(), 0);
    assert_eq!(sym.state_count(), 1);
    assert_eq!(i.states_explored, 1);
    assert!(sym.contains(&net.initial_marking()));
}

#[test]
fn symbolic_expired_deadline_is_a_clean_tagged_partial_verdict() {
    let net = rings(9);
    let already_past = std::time::Instant::now() - std::time::Duration::from_millis(1);
    let sym = SymbolicReach::build_with(&net, &Budget::unbounded().deadline(already_past))
        .expect("deadline expiry is not an error");
    let i = sym.interrupt().expect("tagged partial verdict");
    assert_eq!(i.reason, InterruptReason::DeadlineExpired);
    assert!(sym.state_count() >= 1);
    assert!(sym.state_count() <= 512);
}

/// The explicit state cap deliberately does not bound the symbolic
/// fixpoint (nothing is enumerated): a cap far below the state count
/// still yields the complete set.
#[test]
fn symbolic_ignores_the_enumeration_cap() {
    let net = rings(9);
    let sym = SymbolicReach::build_with(&net, &Budget::with_cap(4)).expect("complete build");
    assert!(sym.is_complete());
    assert_eq!(sym.state_count(), 512);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cancelling the symbolic fixpoint at an arbitrary moment (here: a
    /// token cancelled up front, a deadline in the near future or the
    /// unbounded budget) always yields a clean result — complete with the
    /// closed-form count, or a tagged underapproximation of it.
    #[test]
    fn symbolic_budget_interruption_is_clean_at_every_width(
        n in 4usize..11,
        deadline_us in 0u64..200,
    ) {
        let net = rings(n);
        let total = 1u128 << n;
        let deadline = std::time::Instant::now() + std::time::Duration::from_micros(deadline_us);
        let sym = SymbolicReach::build_with(&net, &Budget::unbounded().deadline(deadline))
            .expect("deadline expiry is not an error");
        prop_assert!(sym.state_count() >= 1);
        prop_assert!(sym.state_count() <= total);
        match sym.interrupt() {
            Some(i) => {
                prop_assert_eq!(i.reason, InterruptReason::DeadlineExpired);
                prop_assert!(!sym.is_complete());
                prop_assert_eq!(i.states_explored as u128, sym.state_count());
            }
            None => prop_assert_eq!(sym.state_count(), total),
        }
        // The initial marking is in every partial set.
        prop_assert!(sym.contains(&net.initial_marking()));
    }
}
