//! Property tests of exploration governance: cooperative cancellation
//! fired at a random point of the walk always yields a *clean* partial
//! exploration (no panic, no deadlock, a tagged reason, a plausible state
//! count) at every engine width, and the state count of a cap-bounded
//! exploration is monotone in the cap.

use proptest::prelude::*;
use si_petri::space::{explore_with, ExploreOptions, MarkingSpace, SpaceVisitor, StateSpace};
use si_petri::{Budget, CancelToken, InterruptReason, PetriNet, ReachError};
use std::sync::atomic::{AtomicUsize, Ordering};

/// `n` disjoint two-place rings, each with its own token: safe, live, and
/// exactly `2^n` reachable markings — a state space whose size is known
/// in closed form at any shard count.
fn rings(n: usize) -> PetriNet {
    let mut b = PetriNet::builder();
    for i in 0..n {
        let a = b.add_place(format!("a{i}"), true);
        let c = b.add_place(format!("c{i}"), false);
        let go = b.add_transition(format!("go{i}"));
        let back = b.add_transition(format!("back{i}"));
        b.arc_pt(a, go);
        b.arc_tp(go, c);
        b.arc_pt(c, back);
        b.arc_tp(back, a);
    }
    b.build()
}

/// A marking space that cancels `token` on its `k`-th expansion — the
/// proptest's stand-in for a user hitting Ctrl-C at an arbitrary moment.
struct CancelAt {
    inner: MarkingSpace,
    token: CancelToken,
    k: usize,
    expansions: AtomicUsize,
}

impl StateSpace for CancelAt {
    type Violation = ReachError;

    fn words(&self) -> usize {
        self.inner.words()
    }

    fn initial(&self) -> Vec<u64> {
        self.inner.initial()
    }

    fn for_each_successor<Vis: SpaceVisitor<ReachError>>(
        &self,
        state: &[u64],
        scratch: &mut [u64],
        visit: &mut Vis,
    ) -> Result<(), ReachError> {
        if self.expansions.fetch_add(1, Ordering::Relaxed) + 1 == self.k {
            self.token.cancel();
        }
        self.inner.for_each_successor(state, scratch, visit)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cancelling at a random expansion leaves a clean partial result:
    /// the explorers return `Ok`, tag the interruption (or finish — the
    /// checks are amortized, so a late cancel can lose the race against
    /// termination), and never report more states than exist.
    #[test]
    fn cancellation_mid_walk_is_clean_at_every_width(
        k in 1usize..512,
        shards in prop_oneof![Just(1usize), Just(2usize), Just(4usize), Just(8usize)],
    ) {
        let net = rings(9); // 512 states
        let total = 512usize;
        let token = CancelToken::new();
        let space = CancelAt {
            inner: MarkingSpace::new(&net),
            token: token.clone(),
            k,
            expansions: AtomicUsize::new(0),
        };
        let opts = ExploreOptions::with_cap(usize::MAX)
            .budget(Budget::unbounded().cancel(token.clone()))
            .shards(shards);
        let expl = explore_with(&space, opts).expect("cancellation is not an error");
        prop_assert!(expl.violations.is_empty());
        match expl.interrupted {
            Some(reason) => {
                prop_assert_eq!(reason, InterruptReason::Cancelled);
                prop_assert!(expl.states >= 1);
                prop_assert!(expl.states <= total, "states {} > total", expl.states);
                let i = expl.interrupt().unwrap();
                prop_assert_eq!(i.states_explored, expl.states);
            }
            // The walk outran the next governance checkpoint: it must
            // then be the complete exploration.
            None => prop_assert_eq!(expl.states, total),
        }
        // The token is spent either way — the cancel fired.
        prop_assert!(token.is_cancelled());
    }

    /// The explored-state count of a cap-bounded sequential exploration
    /// is exactly `min(total, cap)` — and therefore monotone in the cap.
    #[test]
    fn capped_state_counts_are_monotone_in_the_budget(
        c1 in 1usize..600,
        c2 in 1usize..600,
    ) {
        let net = rings(9); // 512 states
        let total = 512usize;
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        let run = |cap: usize| {
            let space = MarkingSpace::new(&net);
            explore_with(&space, ExploreOptions::with_cap(cap)).unwrap()
        };
        let el = run(lo);
        let eh = run(hi);
        prop_assert_eq!(el.states, total.min(lo));
        prop_assert_eq!(eh.states, total.min(hi));
        prop_assert!(el.states <= eh.states);
        prop_assert_eq!(el.interrupted.is_some(), lo < total);
        prop_assert_eq!(
            el.cap_exceeded(),
            lo < total,
            "a sub-total cap must tag the partial result"
        );
    }
}
