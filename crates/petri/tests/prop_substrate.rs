//! Equivalence property tests for the word-parallel state substrate: the
//! mask-based firing rule, the interned CSR reachability engine and the
//! batched concurrency fixpoint must agree *exactly* with the naive
//! reference implementations on random live, safe, free-choice nets.

use proptest::prelude::*;
use si_petri::{ConcurrencyRelation, PetriNet, ReachabilityGraph};

/// Expansion step applied to a random place of a ring (same grammar as the
/// structural property tests: the result stays live/safe/free-choice).
#[derive(Clone, Debug)]
enum Expand {
    ForkJoin,
    Choice,
    Chain,
}

fn arb_expansions() -> impl Strategy<Value = Vec<(usize, Expand)>> {
    proptest::collection::vec(
        (
            0..64usize,
            prop_oneof![
                Just(Expand::ForkJoin),
                Just(Expand::Choice),
                Just(Expand::Chain)
            ],
        ),
        0..6,
    )
}

/// Builds a net by starting from a 2-place ring and expanding places.
fn build_net(expansions: &[(usize, Expand)]) -> PetriNet {
    // Symbolic transitions over abstract place ids, starting from the ring
    // p0 -> t -> p1 -> t' -> p0.
    let mut nplaces: usize = 2;
    let mut trans: Vec<(Vec<usize>, Vec<usize>)> = vec![(vec![0], vec![1]), (vec![1], vec![0])];
    for (pick, ex) in expansions {
        let target = pick % nplaces;
        match ex {
            Expand::Chain => {
                // target -> te -> fresh; consumers of target move to fresh.
                let fresh = nplaces;
                nplaces += 1;
                for (pre, _) in trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = fresh;
                        }
                    }
                }
                trans.push((vec![target], vec![fresh]));
            }
            Expand::ForkJoin => {
                // target -> te -> (a ∥ b) -> tx -> exit; consumers move to exit.
                let (a, b, exit) = (nplaces, nplaces + 1, nplaces + 2);
                nplaces += 3;
                for (pre, _) in trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = exit;
                        }
                    }
                }
                trans.push((vec![target], vec![a, b]));
                trans.push((vec![a, b], vec![exit]));
            }
            Expand::Choice => {
                // target -> (ta | tb) -> (a | b) -> (tja | tjb) -> exit.
                let (a, b, exit) = (nplaces, nplaces + 1, nplaces + 2);
                nplaces += 3;
                for (pre, _) in trans.iter_mut() {
                    for p in pre.iter_mut() {
                        if *p == target {
                            *p = exit;
                        }
                    }
                }
                trans.push((vec![target], vec![a]));
                trans.push((vec![target], vec![b]));
                trans.push((vec![a], vec![exit]));
                trans.push((vec![b], vec![exit]));
            }
        }
    }
    let mut builder = PetriNet::builder();
    let places: Vec<_> = (0..nplaces)
        .map(|i| builder.add_place(format!("p{i}"), i == 0))
        .collect();
    for (i, (pre, post)) in trans.iter().enumerate() {
        let t = builder.add_transition(format!("t{i}"));
        for &p in pre {
            builder.arc_pt(places[p], t);
        }
        for &p in post {
            builder.arc_tp(t, places[p]);
        }
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mask_firing_rule_matches_naive(exps in arb_expansions()) {
        let net = build_net(&exps);
        let rg = ReachabilityGraph::build(&net, 20_000).unwrap();
        for s in rg.states() {
            let m = rg.marking(s);
            for t in net.transitions() {
                prop_assert_eq!(
                    net.is_enabled(m, t),
                    net.is_enabled_naive(m, t),
                    "enable mismatch at {:?} for {}", s, t
                );
                if net.is_enabled(m, t) {
                    let mut out = m.clone();
                    net.fire_into(m, t, &mut out);
                    prop_assert_eq!(&out, &net.fire_naive(m, t), "fire mismatch for {}", t);
                    prop_assert_eq!(&out, &net.fire(m, t));
                }
            }
        }
    }

    #[test]
    fn interned_reachability_matches_naive(exps in arb_expansions()) {
        let net = build_net(&exps);
        let fast = ReachabilityGraph::build(&net, 20_000).unwrap();
        let naive = ReachabilityGraph::build_naive(&net, 20_000).unwrap();
        prop_assert_eq!(fast.state_count(), naive.state_count());
        prop_assert_eq!(fast.edge_count(), naive.edge_count());
        for s in fast.states() {
            prop_assert_eq!(fast.marking(s), naive.marking(s));
            prop_assert_eq!(fast.successors(s), naive.successors(s));
            prop_assert_eq!(fast.predecessors(s), naive.predecessors(s));
            prop_assert_eq!(fast.state_of(fast.marking(s)), Some(s));
        }
        for t in net.transitions() {
            prop_assert_eq!(fast.states_enabling(t), naive.states_enabling(t));
        }
        prop_assert_eq!(fast.is_live(&net), naive.is_live(&net));
        prop_assert_eq!(fast.is_strongly_connected(), naive.is_strongly_connected());
    }

    #[test]
    fn batched_concurrency_matches_naive(exps in arb_expansions()) {
        let net = build_net(&exps);
        let fast = ConcurrencyRelation::compute(&net);
        let naive = ConcurrencyRelation::compute_naive(&net);
        prop_assert_eq!(fast.pair_count(), naive.pair_count());
        for p in net.places() {
            for q in net.places() {
                if p != q {
                    prop_assert_eq!(fast.places(p, q), naive.places(p, q), "{} {}", p, q);
                }
            }
            for t in net.transitions() {
                prop_assert_eq!(
                    fast.place_transition(p, t),
                    naive.place_transition(p, t),
                    "{} {}", p, t
                );
            }
        }
        for a in net.transitions() {
            for b in net.transitions() {
                if a != b {
                    prop_assert_eq!(fast.transitions(a, b), naive.transitions(a, b), "{} {}", a, b);
                }
            }
        }
    }

    #[test]
    fn sharded_reachability_matches_sequential(
        exps in arb_expansions(),
        shards in prop_oneof![Just(2usize), Just(4usize), Just(8usize)],
    ) {
        let net = build_net(&exps);
        let seq = ReachabilityGraph::build(&net, 20_000).unwrap();
        let par = ReachabilityGraph::build_sharded(&net, 20_000, shards).unwrap();
        // The sharded engine renumbers canonically, so the comparison is
        // bit-for-bit — not merely up to permutation.
        prop_assert_eq!(par.state_count(), seq.state_count());
        prop_assert_eq!(par.edge_count(), seq.edge_count());
        for s in seq.states() {
            prop_assert_eq!(par.marking(s), seq.marking(s));
            prop_assert_eq!(par.successors(s), seq.successors(s));
            prop_assert_eq!(par.predecessors(s), seq.predecessors(s));
            prop_assert_eq!(par.state_of(par.marking(s)), Some(s));
        }
        for t in net.transitions() {
            prop_assert_eq!(par.states_enabling(t), seq.states_enabling(t));
        }
        prop_assert_eq!(par.is_live(&net), seq.is_live(&net));
        prop_assert_eq!(par.is_strongly_connected(), seq.is_strongly_connected());
    }

    #[test]
    fn sharded_cap_errors_agree(exps in arb_expansions()) {
        let net = build_net(&exps);
        let full = ReachabilityGraph::build(&net, 20_000).unwrap();
        if full.state_count() > 1 {
            let cap = full.state_count() - 1;
            let seq = ReachabilityGraph::build(&net, cap);
            let par = ReachabilityGraph::build_sharded(&net, cap, 4);
            prop_assert!(par.is_err());
            prop_assert_eq!(seq.unwrap_err(), par.unwrap_err());
        }
    }

    #[test]
    fn cap_and_errors_agree(exps in arb_expansions()) {
        let net = build_net(&exps);
        let full = ReachabilityGraph::build(&net, 20_000).unwrap();
        if full.state_count() > 1 {
            let cap = full.state_count() - 1;
            let a = ReachabilityGraph::build(&net, cap);
            let b = ReachabilityGraph::build_naive(&net, cap);
            prop_assert!(a.is_err() && b.is_err());
            prop_assert_eq!(a.unwrap_err(), b.unwrap_err());
        }
    }
}
