//! The Petri-net kernel: places, transitions, flow relation, markings.
//!
//! Matches §II-B of the paper: a PN is `(P, T, F, m0)`. All nets handled by
//! the synthesis flow are assumed live, safe and free-choice; this module
//! provides the structural class checks and the firing rule, while
//! behavioural checks (liveness, safeness) live in [`crate::reach`].

use si_boolean::Bits;
use std::fmt;

/// Index of a place in a [`PetriNet`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PlaceId(pub u32);

/// Index of a transition in a [`PetriNet`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TransId(pub u32);

impl PlaceId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A node of the net graph — either a place or a transition.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// A place node.
    Place(PlaceId),
    /// A transition node.
    Trans(TransId),
}

/// A marking of a safe net: the set of marked places.
pub type Marking = Bits;

/// A place/transition net with a safe initial marking.
///
/// Build one with [`PetriNet::builder`]. Presets and postsets are stored
/// both ways for O(degree) traversal.
///
/// # Examples
///
/// ```
/// use si_petri::PetriNet;
///
/// let mut b = PetriNet::builder();
/// let p0 = b.add_place("p0", true);
/// let p1 = b.add_place("p1", false);
/// let t = b.add_transition("t");
/// b.arc_pt(p0, t);
/// b.arc_tp(t, p1);
/// let net = b.build();
/// assert!(net.is_enabled(&net.initial_marking(), t));
/// ```
#[derive(Clone, Debug)]
pub struct PetriNet {
    place_names: Vec<String>,
    trans_names: Vec<String>,
    /// Preset of each transition (places), sorted.
    pre_t: Vec<Vec<PlaceId>>,
    /// Postset of each transition (places), sorted.
    post_t: Vec<Vec<PlaceId>>,
    /// Preset of each place (transitions), sorted.
    pre_p: Vec<Vec<TransId>>,
    /// Postset of each place (transitions), sorted.
    post_p: Vec<Vec<TransId>>,
    initial: Marking,
    /// Word mask of `•t` per transition (width = place count).
    pre_t_mask: Vec<Bits>,
    /// Word mask of `t•` per transition.
    post_t_mask: Vec<Bits>,
    /// Word mask of `t• \ •t` per transition: the places that *gain* a
    /// token when `t` fires — a safeness violation iff one is already
    /// marked.
    gain_mask: Vec<Bits>,
}

/// Incremental constructor for [`PetriNet`].
#[derive(Clone, Debug, Default)]
pub struct PetriNetBuilder {
    place_names: Vec<String>,
    trans_names: Vec<String>,
    arcs_pt: Vec<(PlaceId, TransId)>,
    arcs_tp: Vec<(TransId, PlaceId)>,
    initial: Vec<bool>,
}

impl PetriNetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a place; `marked` sets its initial token.
    pub fn add_place(&mut self, name: impl Into<String>, marked: bool) -> PlaceId {
        let id = PlaceId(self.place_names.len() as u32);
        self.place_names.push(name.into());
        self.initial.push(marked);
        id
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransId {
        let id = TransId(self.trans_names.len() as u32);
        self.trans_names.push(name.into());
        id
    }

    /// Adds an arc from a place to a transition.
    pub fn arc_pt(&mut self, p: PlaceId, t: TransId) -> &mut Self {
        self.arcs_pt.push((p, t));
        self
    }

    /// Adds an arc from a transition to a place.
    pub fn arc_tp(&mut self, t: TransId, p: PlaceId) -> &mut Self {
        self.arcs_tp.push((t, p));
        self
    }

    /// Number of places added so far.
    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions added so far.
    pub fn transition_count(&self) -> usize {
        self.trans_names.len()
    }

    /// Finalizes the net.
    ///
    /// # Panics
    ///
    /// Panics if an arc references an unknown node.
    pub fn build(self) -> PetriNet {
        let np = self.place_names.len();
        let nt = self.trans_names.len();
        let mut pre_t = vec![Vec::new(); nt];
        let mut post_t = vec![Vec::new(); nt];
        let mut pre_p = vec![Vec::new(); np];
        let mut post_p = vec![Vec::new(); np];
        for (p, t) in self.arcs_pt {
            assert!(
                p.index() < np && t.index() < nt,
                "arc references unknown node"
            );
            pre_t[t.index()].push(p);
            post_p[p.index()].push(t);
        }
        for (t, p) in self.arcs_tp {
            assert!(
                p.index() < np && t.index() < nt,
                "arc references unknown node"
            );
            post_t[t.index()].push(p);
            pre_p[p.index()].push(t);
        }
        for v in pre_t.iter_mut().chain(post_t.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        for v in pre_p.iter_mut().chain(post_p.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        let initial = Bits::from_ones(
            np,
            self.initial
                .iter()
                .enumerate()
                .filter(|&(_, &m)| m)
                .map(|(i, _)| i),
        );
        let mask = |places: &[PlaceId]| Bits::from_ones(np, places.iter().map(|p| p.index()));
        let pre_t_mask: Vec<Bits> = pre_t.iter().map(|ps| mask(ps)).collect();
        let post_t_mask: Vec<Bits> = post_t.iter().map(|ps| mask(ps)).collect();
        let gain_mask = pre_t_mask
            .iter()
            .zip(&post_t_mask)
            .map(|(pre, post)| post.difference(pre))
            .collect();
        PetriNet {
            place_names: self.place_names,
            trans_names: self.trans_names,
            pre_t,
            post_t,
            pre_p,
            post_p,
            initial,
            pre_t_mask,
            post_t_mask,
            gain_mask,
        }
    }
}

impl PetriNet {
    /// Starts building a net.
    pub fn builder() -> PetriNetBuilder {
        PetriNetBuilder::new()
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.trans_names.len()
    }

    /// Iterates over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.place_count() as u32).map(PlaceId)
    }

    /// Iterates over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransId> {
        (0..self.transition_count() as u32).map(TransId)
    }

    /// The name of a place.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.index()]
    }

    /// The name of a transition.
    pub fn transition_name(&self, t: TransId) -> &str {
        &self.trans_names[t.index()]
    }

    /// Looks up a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names
            .iter()
            .position(|n| n == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Looks up a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransId> {
        self.trans_names
            .iter()
            .position(|n| n == name)
            .map(|i| TransId(i as u32))
    }

    /// Preset of a transition: `•t`.
    pub fn pre_t(&self, t: TransId) -> &[PlaceId] {
        &self.pre_t[t.index()]
    }

    /// Postset of a transition: `t•`.
    pub fn post_t(&self, t: TransId) -> &[PlaceId] {
        &self.post_t[t.index()]
    }

    /// Preset of a place: `•p`.
    pub fn pre_p(&self, p: PlaceId) -> &[TransId] {
        &self.pre_p[p.index()]
    }

    /// Postset of a place: `p•`.
    pub fn post_p(&self, p: PlaceId) -> &[TransId] {
        &self.post_p[p.index()]
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// Word mask of `•t` (width = place count).
    pub fn pre_mask(&self, t: TransId) -> &Bits {
        &self.pre_t_mask[t.index()]
    }

    /// Word mask of `t•`.
    pub fn post_mask(&self, t: TransId) -> &Bits {
        &self.post_t_mask[t.index()]
    }

    /// Word mask of `t• \ •t` — the places that gain a token when `t`
    /// fires. Firing `t` at `m` violates safeness iff `m` intersects it.
    pub fn gain_mask(&self, t: TransId) -> &Bits {
        &self.gain_mask[t.index()]
    }

    /// Returns `true` if `t` is enabled at `m` (all of `•t` marked).
    ///
    /// O(words) via the precomputed preset mask.
    pub fn is_enabled(&self, m: &Marking, t: TransId) -> bool {
        self.pre_t_mask[t.index()].is_subset(m)
    }

    /// Reference implementation of [`Self::is_enabled`]: the per-place scan
    /// the masks replaced. Kept as the oracle for equivalence tests and the
    /// before/after benchmark.
    pub fn is_enabled_naive(&self, m: &Marking, t: TransId) -> bool {
        self.pre_t(t).iter().all(|p| m.get(p.index()))
    }

    /// Returns `true` if firing `t` at `m` would put a second token on a
    /// place (`m ∩ (t• \ •t) ≠ ∅`). Only meaningful when `t` is enabled.
    pub fn violates_safeness(&self, m: &Marking, t: TransId) -> bool {
        m.intersects(&self.gain_mask[t.index()])
    }

    /// Fires `t` at `m`, returning the successor marking.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled at `m` (debug assertion semantics for
    /// the safe-net firing rule).
    pub fn fire(&self, m: &Marking, t: TransId) -> Marking {
        assert!(self.is_enabled(m, t), "firing a disabled transition");
        let mut next = m.clone();
        self.fire_into(m, t, &mut next);
        next
    }

    /// In-place firing rule: writes `(m \ •t) ∪ t•` into `out` without
    /// allocating. `out` must have the net's place-count width.
    ///
    /// This is the hot path of reachability exploration: enabledness is a
    /// `debug_assert` here (callers test it first), unlike [`Self::fire`]
    /// which always panics on a disabled firing.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch; in debug builds also if `t` is not
    /// enabled at `m`.
    ///
    /// # Examples
    ///
    /// ```
    /// use si_petri::PetriNet;
    ///
    /// // p0 -> t -> p1
    /// let mut b = PetriNet::builder();
    /// let p0 = b.add_place("p0", true);
    /// let p1 = b.add_place("p1", false);
    /// let t = b.add_transition("t");
    /// b.arc_pt(p0, t);
    /// b.arc_tp(t, p1);
    /// let net = b.build();
    ///
    /// let m0 = net.initial_marking();
    /// let mut out = m0.clone(); // scratch marking, reused across firings
    /// net.fire_into(&m0, t, &mut out);
    /// assert!(!out.get(p0.index()) && out.get(p1.index()));
    /// ```
    pub fn fire_into(&self, m: &Marking, t: TransId, out: &mut Marking) {
        debug_assert!(self.is_enabled(m, t), "firing a disabled transition");
        out.copy_from(m);
        out.subtract(&self.pre_t_mask[t.index()]);
        out.union_with(&self.post_t_mask[t.index()]);
    }

    /// Reference implementation of [`Self::fire`] via per-place updates;
    /// oracle counterpart of [`Self::is_enabled_naive`].
    pub fn fire_naive(&self, m: &Marking, t: TransId) -> Marking {
        assert!(self.is_enabled_naive(m, t), "firing a disabled transition");
        let mut next = m.clone();
        for p in self.pre_t(t) {
            next.set(p.index(), false);
        }
        for p in self.post_t(t) {
            next.set(p.index(), true);
        }
        next
    }

    /// All transitions enabled at `m`.
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransId> {
        self.transitions()
            .filter(|&t| self.is_enabled(m, t))
            .collect()
    }

    /// Free-choice check: every arc `(p, t)` is either the unique outgoing
    /// arc of `p` or the unique incoming arc of `t`.
    ///
    /// Equivalently: if `|p•| > 1` then every `t ∈ p•` has `•t = {p}`.
    pub fn is_free_choice(&self) -> bool {
        for p in self.places() {
            if self.post_p(p).len() > 1 {
                for &t in self.post_p(p) {
                    if self.pre_t(t).len() != 1 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// State-machine check: every transition has exactly one input and one
    /// output place.
    pub fn is_state_machine(&self) -> bool {
        self.transitions()
            .all(|t| self.pre_t(t).len() == 1 && self.post_t(t).len() == 1)
    }

    /// Marked-graph check: every place has exactly one input and one output
    /// transition (no choice, no merge).
    pub fn is_marked_graph(&self) -> bool {
        self.places()
            .all(|p| self.pre_p(p).len() == 1 && self.post_p(p).len() == 1)
    }

    /// Choice places: places with more than one output transition.
    pub fn choice_places(&self) -> Vec<PlaceId> {
        self.places()
            .filter(|&p| self.post_p(p).len() > 1)
            .collect()
    }

    /// Removes duplicate places (identical preset, postset and initial
    /// marking) — the cheapest class of redundant places (§II-B assumes
    /// irredundant nets). Returns the surviving net and, for bookkeeping,
    /// the names of removed places.
    pub fn remove_duplicate_places(&self) -> (PetriNet, Vec<String>) {
        use std::collections::HashMap;
        let mut seen: HashMap<(Vec<TransId>, Vec<TransId>, bool), PlaceId> = HashMap::new();
        let mut keep: Vec<PlaceId> = Vec::new();
        let mut removed = Vec::new();
        for p in self.places() {
            let key = (
                self.pre_p(p).to_vec(),
                self.post_p(p).to_vec(),
                self.initial.get(p.index()),
            );
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
                e.insert(p);
                keep.push(p);
            } else {
                removed.push(self.place_name(p).to_string());
            }
        }
        if removed.is_empty() {
            return (self.clone(), removed);
        }
        let mut b = PetriNet::builder();
        let mut map = vec![None; self.place_count()];
        for &p in &keep {
            map[p.index()] = Some(b.add_place(self.place_name(p), self.initial.get(p.index())));
        }
        for t in self.transitions() {
            let nt = b.add_transition(self.transition_name(t));
            for p in self.pre_t(t) {
                if let Some(np) = map[p.index()] {
                    b.arc_pt(np, nt);
                }
            }
            for p in self.post_t(t) {
                if let Some(np) = map[p.index()] {
                    b.arc_tp(nt, np);
                }
            }
        }
        (b.build(), removed)
    }

    /// Builds the [`FiringView`] of this net: the per-transition masks
    /// flattened into contiguous word arrays, ready for sharing across
    /// worker threads.
    pub fn firing_view(&self) -> FiringView {
        let nt = self.transition_count();
        let nw = self.initial.as_words().len();
        let mut pre = vec![0u64; nt * nw];
        let mut post = vec![0u64; nt * nw];
        let mut gain = vec![0u64; nt * nw];
        for t in self.transitions() {
            let o = t.index() * nw;
            pre[o..o + nw].copy_from_slice(self.pre_t_mask[t.index()].as_words());
            post[o..o + nw].copy_from_slice(self.post_t_mask[t.index()].as_words());
            gain[o..o + nw].copy_from_slice(self.gain_mask[t.index()].as_words());
        }
        FiringView {
            nw,
            nt,
            np: self.place_count(),
            pre,
            post,
            gain,
        }
    }

    /// Renders the net in a human-readable adjacency form (debugging aid).
    pub fn to_debug_string(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for t in self.transitions() {
            let pre: Vec<&str> = self.pre_t(t).iter().map(|&p| self.place_name(p)).collect();
            let post: Vec<&str> = self.post_t(t).iter().map(|&p| self.place_name(p)).collect();
            let _ = writeln!(
                s,
                "{} : {{{}}} -> {{{}}}",
                self.transition_name(t),
                pre.join(","),
                post.join(",")
            );
        }
        let marked: Vec<&str> = self
            .initial
            .iter_ones()
            .map(|i| self.place_names[i].as_str())
            .collect();
        let _ = writeln!(s, "m0 = {{{}}}", marked.join(","));
        s
    }
}

/// A `Send + Sync` snapshot of a net's firing rule, flattened for the
/// exploration hot loops.
///
/// The per-transition preset / postset / gain masks are stored as three
/// contiguous `u64` arrays (`transition_count × words` each), so an enable
/// scan streams straight through memory with no per-transition heap pointer
/// to chase — and, because the view owns plain `Vec<u64>`s, a single
/// instance can be shared by reference across the worker threads of the
/// sharded reachability engine. Markings are handled as raw `&[u64]` word
/// slices (the representation behind [`Marking::as_words`]).
#[derive(Clone, Debug)]
pub struct FiringView {
    nw: usize,
    nt: usize,
    np: usize,
    /// `•t` masks, transition-major: `pre[t*nw .. (t+1)*nw]`.
    pre: Vec<u64>,
    /// `t•` masks, same layout.
    post: Vec<u64>,
    /// `t• \ •t` masks, same layout.
    gain: Vec<u64>,
}

impl FiringView {
    /// Words per marking.
    pub fn words(&self) -> usize {
        self.nw
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.nt
    }

    /// Number of places (the marking width in bits).
    pub fn place_count(&self) -> usize {
        self.np
    }

    /// The `•t` mask words of transition `t`.
    #[inline]
    pub fn pre(&self, t: usize) -> &[u64] {
        &self.pre[t * self.nw..(t + 1) * self.nw]
    }

    /// The `t•` mask words of transition `t`.
    #[inline]
    pub fn post(&self, t: usize) -> &[u64] {
        &self.post[t * self.nw..(t + 1) * self.nw]
    }

    /// The `t• \ •t` mask words of transition `t`.
    #[inline]
    pub fn gain(&self, t: usize) -> &[u64] {
        &self.gain[t * self.nw..(t + 1) * self.nw]
    }

    /// Is `t` enabled at marking `m` (`•t ⊆ m`, word-parallel)?
    #[inline]
    pub fn is_enabled(&self, m: &[u64], t: usize) -> bool {
        self.pre(t).iter().zip(m).all(|(p, w)| p & !w == 0)
    }

    /// Would firing `t` at `m` put a second token on a place
    /// (`m ∩ (t• \ •t) ≠ ∅`)? Only meaningful when `t` is enabled.
    #[inline]
    pub fn violates_safeness(&self, m: &[u64], t: usize) -> bool {
        self.gain(t).iter().zip(m).any(|(g, w)| g & w != 0)
    }

    /// The firing rule `(m \ •t) ∪ t•`, written into `out`.
    #[inline]
    pub fn fire_into(&self, m: &[u64], t: usize, out: &mut [u64]) {
        let pre = self.pre(t);
        let post = self.post(t);
        for w in 0..self.nw {
            out[w] = (m[w] & !pre[w]) | post[w];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-place, 2-transition ring: p0 -> t0 -> p1 -> t1 -> p0.
    fn ring() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        b.build()
    }

    #[test]
    fn build_and_query() {
        let n = ring();
        assert_eq!(n.place_count(), 2);
        assert_eq!(n.transition_count(), 2);
        assert_eq!(n.place_by_name("p1"), Some(PlaceId(1)));
        assert_eq!(n.transition_by_name("t0"), Some(TransId(0)));
        assert_eq!(n.pre_t(TransId(0)), &[PlaceId(0)]);
        assert_eq!(n.post_t(TransId(0)), &[PlaceId(1)]);
        assert_eq!(n.pre_p(PlaceId(0)), &[TransId(1)]);
        assert_eq!(n.post_p(PlaceId(0)), &[TransId(0)]);
    }

    #[test]
    fn firing_rule() {
        let n = ring();
        let m0 = n.initial_marking();
        assert!(n.is_enabled(&m0, TransId(0)));
        assert!(!n.is_enabled(&m0, TransId(1)));
        let m1 = n.fire(&m0, TransId(0));
        assert!(m1.get(1) && !m1.get(0));
        let m2 = n.fire(&m1, TransId(1));
        assert_eq!(m2, m0);
        assert_eq!(n.enabled_transitions(&m0), vec![TransId(0)]);
    }

    #[test]
    #[should_panic(expected = "disabled")]
    fn firing_disabled_panics() {
        let n = ring();
        let _ = n.fire(&n.initial_marking(), TransId(1));
    }

    #[test]
    fn class_checks() {
        let n = ring();
        assert!(n.is_free_choice());
        assert!(n.is_state_machine());
        assert!(n.is_marked_graph());

        // Add a choice: p0 -> {t0, t2} with singleton presets => still FC.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let t0 = b.add_transition("t0");
        let t2 = b.add_transition("t2");
        b.arc_pt(p0, t0);
        b.arc_pt(p0, t2);
        b.arc_tp(t0, p1);
        b.arc_tp(t2, p1);
        let n = b.build();
        assert!(n.is_free_choice());
        assert!(!n.is_marked_graph());
        assert_eq!(n.choice_places(), vec![PlaceId(0)]);

        // Non-free-choice: p0 -> {t0, t2}, and t0 also needs p1.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", true);
        let t0 = b.add_transition("t0");
        let t2 = b.add_transition("t2");
        b.arc_pt(p0, t0);
        b.arc_pt(p0, t2);
        b.arc_pt(p1, t0);
        let n = b.build();
        assert!(!n.is_free_choice());
    }

    #[test]
    fn duplicate_place_removal() {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p0b = b.add_place("p0_dup", true);
        let p1 = b.add_place("p1", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        for p in [p0, p0b] {
            b.arc_pt(p, t0);
            b.arc_tp(t1, p);
        }
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        let n = b.build();
        let (reduced, removed) = n.remove_duplicate_places();
        assert_eq!(removed, vec!["p0_dup".to_string()]);
        assert_eq!(reduced.place_count(), 2);
        assert!(reduced.is_enabled(&reduced.initial_marking(), TransId(0)));
    }

    #[test]
    fn masks_match_adjacency_lists() {
        let n = ring();
        for t in n.transitions() {
            assert_eq!(
                n.pre_mask(t).iter_ones().collect::<Vec<_>>(),
                n.pre_t(t).iter().map(|p| p.index()).collect::<Vec<_>>()
            );
            assert_eq!(
                n.post_mask(t).iter_ones().collect::<Vec<_>>(),
                n.post_t(t).iter().map(|p| p.index()).collect::<Vec<_>>()
            );
        }
        // gain of t0 = {p1} (p1 ∉ •t0)
        assert_eq!(
            n.gain_mask(TransId(0)).iter_ones().collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn fire_into_matches_fire_and_naive() {
        let n = ring();
        let m0 = n.initial_marking();
        let mut out = m0.clone();
        n.fire_into(&m0, TransId(0), &mut out);
        assert_eq!(out, n.fire(&m0, TransId(0)));
        assert_eq!(out, n.fire_naive(&m0, TransId(0)));
        assert_eq!(
            n.is_enabled(&m0, TransId(1)),
            n.is_enabled_naive(&m0, TransId(1))
        );
    }

    #[test]
    fn safeness_mask_detects_duplicate_token() {
        // t puts a token on p1 while p1 can already be marked.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", true);
        let t = b.add_transition("t");
        b.arc_pt(p0, t);
        b.arc_tp(t, p1);
        let n = b.build();
        assert!(n.violates_safeness(&n.initial_marking(), TransId(0)));
        // Self-loop on p1 does not violate safeness.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", true);
        let t = b.add_transition("t");
        b.arc_pt(p0, t);
        b.arc_pt(p1, t);
        b.arc_tp(t, p1);
        let n = b.build();
        assert!(!n.violates_safeness(&n.initial_marking(), TransId(0)));
    }

    #[test]
    fn firing_view_matches_marking_api() {
        let n = ring();
        let view = n.firing_view();
        assert_eq!(view.words(), 1);
        assert_eq!(view.transition_count(), 2);
        assert_eq!(view.place_count(), 2);
        let m0 = n.initial_marking();
        let mut out = vec![0u64; view.words()];
        for t in n.transitions() {
            assert_eq!(
                view.is_enabled(m0.as_words(), t.index()),
                n.is_enabled(&m0, t)
            );
            assert_eq!(
                view.violates_safeness(m0.as_words(), t.index()),
                n.violates_safeness(&m0, t)
            );
            if n.is_enabled(&m0, t) {
                view.fire_into(m0.as_words(), t.index(), &mut out);
                assert_eq!(&out, n.fire(&m0, t).as_words());
            }
        }
    }

    #[test]
    fn debug_string_mentions_everything() {
        let s = ring().to_debug_string();
        assert!(s.contains("t0") && s.contains("p1") && s.contains("m0"));
    }
}
