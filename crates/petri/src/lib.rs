//! Petri-net kernel for speed-independent circuit synthesis.
//!
//! Part of the `sisyn` workspace reproducing Pastor, Cortadella, Kondratyev
//! and Roig, *“Structural Methods for the Synthesis of Speed-Independent
//! Circuits”*. This crate hosts everything of §II-B and §V that is pure
//! Petri-net machinery, independent of signal interpretation:
//!
//! * [`PetriNet`] — places/transitions/flow with a safe marking and the
//!   firing rule, plus free-choice / state-machine / marked-graph checks;
//! * [`space`] — the generic state-space layer: the [`space::StateSpace`]
//!   abstraction (packed states + lazy successors + a verdict hook) with
//!   **one** sequential explorer ([`space::explore`]) and **one** sharded
//!   multi-threaded explorer ([`shard::explore_sharded`]) behind every
//!   traversal in the workspace — reachability, speed-independence
//!   verification and conformance checking;
//! * [`ReachabilityGraph`] — the explicit state space (the thing the paper
//!   avoids; used as baseline and oracle), built on the generic explorers
//!   over the trivial marking space, engine selected via [`ReachOptions`];
//! * [`SymbolicReach`] — the BDD reachability backend: markings as BDD
//!   variables, per-transition relation BDDs from the [`FiringView`]
//!   masks, the reachable set by symbolic image iteration — cardinality,
//!   membership and safeness without enumerating states, cross-checked
//!   against the explicit oracle;
//! * [`SmComponent`], [`SmFinder`], [`sm_cover`] — one-token state-machine
//!   components and SM-covers;
//! * [`ConcurrencyRelation`] — the structural concurrency fixpoint (§V-A);
//! * [`ForwardReduction`] — the `N ⇓ T'` operator (§V-B).
//!
//! # Examples
//!
//! ```
//! use si_petri::{sm_cover, ConcurrencyRelation, PetriNet, ReachabilityGraph};
//!
//! let mut b = PetriNet::builder();
//! let p0 = b.add_place("idle", true);
//! let p1 = b.add_place("busy", false);
//! let go = b.add_transition("go");
//! let done = b.add_transition("done");
//! b.arc_pt(p0, go);
//! b.arc_tp(go, p1);
//! b.arc_pt(p1, done);
//! b.arc_tp(done, p0);
//! let net = b.build();
//!
//! assert!(net.is_free_choice());
//! let rg = ReachabilityGraph::build(&net, 100)?;
//! assert_eq!(rg.state_count(), 2);
//! assert_eq!(sm_cover(&net).unwrap().len(), 1);
//! assert_eq!(ConcurrencyRelation::compute(&net).pair_count(), 0);
//! # Ok::<(), si_petri::ReachError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod budget;
mod concurrency;
mod invariant;
mod net;
mod reach;
mod reduce;
mod redundant;
pub mod shard;
mod siphon;
mod sm;
pub mod space;
mod summary;
mod symbolic;

pub use budget::{Budget, CancelToken, Interrupt, InterruptReason};
pub use concurrency::ConcurrencyRelation;
pub use invariant::{is_p_invariant, p_semiflows, t_semiflows, weighted_tokens, Semiflow};
pub use net::{FiringView, Marking, Node, PetriNet, PetriNetBuilder, PlaceId, TransId};
pub use reach::{ReachError, ReachOptions, ReachabilityGraph, StateId};
pub use reduce::ForwardReduction;
pub use redundant::{duplicate_places, redundant_places};
pub use siphon::{
    check_live_safe_fc, is_siphon, is_trap, maximal_trap_within, minimal_siphons, StructuralCheck,
};
pub use sm::{sm_cover, SmComponent, SmCoverError, SmFinder};
pub use summary::{ParseSummaryError, ReachSummary};
pub use symbolic::SymbolicReach;
