//! Redundant-place detection.
//!
//! §II-B of the paper assumes irredundant nets (a place is redundant when
//! its removal preserves the set of feasible sequences). Two detectors:
//!
//! * [`duplicate_places`] / [`PetriNet::remove_duplicate_places`] — the
//!   purely structural case (identical presets, postsets and marking);
//! * [`redundant_places`] — the exact behavioural criterion on the
//!   reachability graph: `p` is redundant iff it is never the *unique
//!   disabler* of a transition, i.e. no reachable marking has all other
//!   preset places of some `t ∈ p•` marked while `p` is empty. (Standard
//!   induction: if `p` never uniquely blocks, every sequence of the reduced
//!   net is feasible in the original and vice versa.)

use crate::net::{PetriNet, PlaceId};
use crate::reach::{ReachError, ReachabilityGraph};

/// Structurally duplicate places (identical preset, postset, marking),
/// keyed as (kept, duplicate).
pub fn duplicate_places(net: &PetriNet) -> Vec<(PlaceId, PlaceId)> {
    use std::collections::HashMap;
    let mut seen: HashMap<(Vec<_>, Vec<_>, bool), PlaceId> = HashMap::new();
    let mut dups = Vec::new();
    for p in net.places() {
        let key = (
            net.pre_p(p).to_vec(),
            net.post_p(p).to_vec(),
            net.initial_marking().get(p.index()),
        );
        match seen.get(&key) {
            Some(&kept) => dups.push((kept, p)),
            None => {
                seen.insert(key, p);
            }
        }
    }
    dups
}

/// Exact behavioural redundancy over the reachable markings.
///
/// # Errors
///
/// Propagates reachability failures (state cap, non-safe nets).
pub fn redundant_places(net: &PetriNet, cap: usize) -> Result<Vec<PlaceId>, ReachError> {
    let rg = ReachabilityGraph::build(net, cap)?;
    let mut redundant = Vec::new();
    'place: for p in net.places() {
        if net.post_p(p).is_empty() {
            // No consumer: the place constrains nothing (it can only be a
            // sink); it is redundant by definition.
            redundant.push(p);
            continue;
        }
        for s in rg.states() {
            let m = rg.marking(s);
            if m.get(p.index()) {
                continue;
            }
            for &t in net.post_p(p) {
                let others_ready = net.pre_t(t).iter().all(|&q| q == p || m.get(q.index()));
                if others_ready {
                    continue 'place; // p uniquely disables t here: essential
                }
            }
        }
        redundant.push(p);
    }
    Ok(redundant)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring with an added redundant "shadow" place that mirrors p0.
    fn ring_with_shadow() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let shadow = b.add_place("shadow", true);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        // shadow is consumed and reproduced alongside p0
        b.arc_pt(shadow, t0);
        b.arc_tp(t1, shadow);
        b.build()
    }

    #[test]
    fn shadow_place_is_redundant() {
        let net = ring_with_shadow();
        let shadow = net.place_by_name("shadow").unwrap();
        let p0 = net.place_by_name("p0").unwrap();
        // p0 and shadow mirror each other, so each is *individually*
        // redundant (redundancy is not closed under union).
        let red = redundant_places(&net, 1000).unwrap();
        assert_eq!(red, vec![p0, shadow]);
    }

    #[test]
    fn essential_places_are_kept() {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        let net = b.build();
        assert!(redundant_places(&net, 100).unwrap().is_empty());
    }

    #[test]
    fn join_guard_is_essential() {
        // fork/join: both branch places essential (each uniquely disables
        // the join while the other branch finished first).
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let a = b.add_place("a", false);
        let bb = b.add_place("b", false);
        let f = b.add_transition("fork");
        let j = b.add_transition("join");
        b.arc_pt(p0, f);
        b.arc_tp(f, a);
        b.arc_tp(f, bb);
        b.arc_pt(a, j);
        b.arc_pt(bb, j);
        b.arc_tp(j, p0);
        let net = b.build();
        // a and b are never marked separately here (they are filled and
        // drained together), so each is actually redundant w.r.t. the other!
        let red = redundant_places(&net, 100).unwrap();
        assert_eq!(red.len(), 2, "twin join guards shadow each other");
        // They are also structural duplicates; after deduplication the
        // surviving guard is essential.
        let (reduced, removed) = net.remove_duplicate_places();
        assert_eq!(removed.len(), 1);
        assert!(redundant_places(&reduced, 100).unwrap().is_empty());
    }

    #[test]
    fn duplicates_found_structurally() {
        let net = {
            let mut b = PetriNet::builder();
            let p0 = b.add_place("p0", true);
            let twin = b.add_place("twin", true);
            let p1 = b.add_place("p1", false);
            let t0 = b.add_transition("t0");
            let t1 = b.add_transition("t1");
            for p in [p0, twin] {
                b.arc_pt(p, t0);
                b.arc_tp(t1, p);
            }
            b.arc_tp(t0, p1);
            b.arc_pt(p1, t1);
            b.build()
        };
        let dups = duplicate_places(&net);
        assert_eq!(dups.len(), 1);
        assert_eq!(net.place_name(dups[0].1), "twin");
    }
}
