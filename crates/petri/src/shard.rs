//! The generic **sharded** state-space explorer.
//!
//! The sequential explorer of [`crate::space`] is bounded by one thread
//! walking one interner. This module removes that bound for *any*
//! [`StateSpace`] by *partitioning the interner*: every discovered packed
//! state is owned by exactly one **shard**, chosen by a multiplicative mix
//! of the state's word hash, and every shard is explored by its own worker
//! thread. Reachability-graph construction
//! ([`crate::ReachabilityGraph::build_sharded`]), speed-independence
//! verification and conformance product exploration all ride the same
//! pipeline.
//!
//! # Pipeline
//!
//! ```text
//!             ┌────────────────────── worker i ──────────────────────┐
//!             │ frontier_i ─▶ space.for_each_successor(state)        │
//!             │     ▲               │                                │
//!             │     │        shard_of(s') == i ? ──yes─▶ intern_i ───┤
//!             │     └──────────────────────────────────── (if new)   │
//!             │                      no                              │
//!             │                      ▼                               │
//!             │            queues[j][i]  (batched, mutexed)          │
//!             └──────────────────────┬───────────────────────────────┘
//!                                    ▼
//!             ┌────────────────────── worker j ──────────────────────┐
//!             │ drain queues[j][*] ─▶ intern_j ─▶ record edge/parent │
//!             │                          │ (if new) ─▶ frontier_j    │
//!             └──────────────────────────┴───────────────────────────┘
//!
//!   termination: global `pending` counter =
//!       (discovered-but-unexplored states) + (sent-but-unprocessed msgs);
//!   a worker may exit only when its frontier and inbox are empty AND
//!   pending == 0 — or when the shared stop flag is raised (fatal
//!   violation, state cap, or violation budget spent).
//! ```
//!
//! Each worker owns a private interner (open-addressing table + flat word
//! arena) and a LIFO frontier, so the hot loop is identical to the
//! sequential explorer: no locks, no allocation per successor. Only
//! *cross-shard successors* pay for communication, and those are staged in
//! per-destination batches that are flushed under a per-`(src, dst)` pair
//! mutex — workers never contend on a single global structure.
//!
//! # Merging, and canonical reachability numbering
//!
//! After the parallel phase the shards hold disjoint state sets with
//! *shard-local* ids. [`explore_sharded`] merges them into one
//! [`Exploration`] under provisional global ids (shard offset + local id):
//! states into a flat arena, per-state discovering edges (witnesses),
//! violations, and — when edge recording is on — the successor adjacency
//! as CSR rows sorted by label. Verdict-style clients (verification,
//! conformance) consume that directly: the violation *set* and the
//! witness validity are deterministic even though ids are not.
//!
//! Reachability needs more: the crate-private `seal` step **renumbers
//! states by replaying the
//! sequential exploration order** (LIFO stack from the initial state,
//! successors scanned in label order) over the discovered graph, making
//! [`crate::ReachabilityGraph::build_sharded`] *bit-identical* to the
//! sequential engine regardless of thread scheduling. Property tests
//! (`crates/petri/tests/prop_substrate.rs`) pin this equivalence on the
//! random live/safe/free-choice corpus.

use crate::budget::{Budget, InterruptReason};
use crate::net::{Marking, PetriNet, TransId};
use crate::reach::{MarkingInterner, ReachError, ReachabilityGraph, StateId};
use crate::space::{
    Exploration, ExploreError, ExploreOptions, SpaceVisitor, StateSpace, Store, NO_PARENT,
};
use si_boolean::hash_word_slice;
use si_fault::{fail_point, fail_trigger, relock, run_isolated};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Odd multiplier decorrelating the shard index from the interner's slot
/// index (both are derived from the same word hash; without the remix a
/// shard's keys would share their low hash bits and cluster in its table).
const SHARD_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Staged cross-shard messages are flushed to the shared queue once this
/// many have accumulated for one destination (or when the sender's local
/// frontier drains). Batching amortizes the queue mutex.
const FLUSH_AT: usize = 128;

/// Owning shard of a packed state: top `log2(nshards)` bits of the remixed
/// hash. `shift == 64 - log2(nshards)`.
#[inline]
fn shard_of(key: &[u64], shift: u32) -> usize {
    (hash_word_slice(key).wrapping_mul(SHARD_MIX) >> shift) as usize
}

/// A batch of cross-shard messages: `nw` state words plus
/// `(source-local state, label)` per message. The source shard is
/// implied by which queue the batch sits in.
#[derive(Default)]
struct MsgBatch {
    words: Vec<u64>,
    meta: Vec<(u32, u32)>,
}

/// One `(src, dst)` message queue. The `nonempty` flag is written only
/// while `buf`'s lock is held, so a receiver that reads `true` (Acquire)
/// will find the messages, and a stale `false` merely defers the batch to
/// the receiver's next spin (the `pending` counter keeps it spinning).
/// Idle workers thereby skip empty inboxes without touching any mutex.
#[derive(Default)]
struct Queue {
    nonempty: AtomicBool,
    buf: Mutex<MsgBatch>,
}

/// One discovered edge, recorded by the shard owning its destination.
struct EdgeRec {
    src_shard: u32,
    src_local: u32,
    label: u32,
    /// Local id within the recording shard.
    dst_local: u32,
}

/// [`Shared::interrupted`] codes: 0 = none, otherwise an
/// [`InterruptReason`] (first writer wins via compare-exchange).
const INTR_NONE: u8 = 0;

fn intr_code(reason: InterruptReason) -> u8 {
    match reason {
        InterruptReason::CapExceeded => 1,
        InterruptReason::DeadlineExpired => 2,
        InterruptReason::Cancelled => 3,
        InterruptReason::MemoryExhausted => 4,
    }
}

fn intr_reason(code: u8) -> Option<InterruptReason> {
    match code {
        1 => Some(InterruptReason::CapExceeded),
        2 => Some(InterruptReason::DeadlineExpired),
        3 => Some(InterruptReason::Cancelled),
        4 => Some(InterruptReason::MemoryExhausted),
        _ => None,
    }
}

/// State shared by all workers of one exploration.
struct Shared<V> {
    nshards: usize,
    shift: u32,
    /// Words per state (byte accounting).
    nw: usize,
    budget: Budget,
    max_violations: usize,
    /// In-flight work: discovered-but-unexplored states plus
    /// sent-but-unprocessed messages. Zero ⇔ exploration complete.
    pending: AtomicUsize,
    /// Total states interned across all shards (cap accounting).
    states: AtomicUsize,
    /// Total violations reported across all shards (budget accounting).
    violations: AtomicUsize,
    /// Raised on fatal violation, worker panic, or an exhausted budget
    /// dimension; every worker winds down when it sees it — even with
    /// `pending` still nonzero (a panicked worker can never drain its
    /// share, so termination must not depend on the counter then).
    stop: AtomicBool,
    /// First exhausted budget dimension ([`INTR_NONE`] = none).
    interrupted: AtomicU8,
    fatal: Mutex<Option<V>>,
    /// First worker panic `(shard, message)`; like `fatal`, first wins.
    panic_slot: Mutex<Option<(usize, String)>>,
    /// `queues[dst][src]` — receiver `dst` drains row `dst`, sender `src`
    /// appends under the pair's own mutex, so flushes to different
    /// destinations never contend.
    queues: Vec<Vec<Queue>>,
}

impl<V> Shared<V> {
    /// First fatal violation wins; everyone else sees `stop` and unwinds.
    fn fail(&self, v: V) {
        let mut slot = relock(&self.fatal);
        if slot.is_none() {
            *slot = Some(v);
        }
        self.stop.store(true, Ordering::Release);
    }

    /// A worker panicked (caught at the worker boundary): record the
    /// first panic and stop every other worker.
    fn worker_panicked(&self, shard: usize, message: String) {
        let mut slot = relock(&self.panic_slot);
        if slot.is_none() {
            *slot = Some((shard, message));
        }
        self.stop.store(true, Ordering::Release);
    }

    /// A budget dimension ran out: record the first reason (the partial
    /// result is still merged and returned) and stop every worker.
    fn interrupt(&self, reason: InterruptReason) {
        let _ = self.interrupted.compare_exchange(
            INTR_NONE,
            intr_code(reason),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.stop.store(true, Ordering::Release);
    }

    /// The state cap was burst: record it and stop every worker.
    fn cap_burst(&self) {
        self.interrupt(InterruptReason::CapExceeded);
    }

    /// Amortized soft-budget check (deadline / cancellation / bytes),
    /// called from the workers' periodic checkpoints. The byte estimate
    /// is the interned-state arena plus interner-table overhead.
    fn check_budget(&self) {
        let approx_bytes = self
            .states
            .load(Ordering::Relaxed)
            .saturating_mul(self.nw * 8 + 16);
        if let Some(reason) = self.budget.check_soft(approx_bytes) {
            self.interrupt(reason);
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Per-worker private state: one shard of the interner, its frontier, its
/// edge/parent/violation records and its outbound staging buffers.
struct Worker<V> {
    me: usize,
    nw: usize,
    interner: MarkingInterner,
    /// LIFO frontier of shard-local state ids (same discipline as the
    /// sequential explorer).
    frontier: Vec<u32>,
    /// All discovered edges, when [`ExploreOptions::record_edges`].
    edges: Vec<EdgeRec>,
    /// Discovering `(src_shard, src_local, label)` per local state, when
    /// [`ExploreOptions::witness`].
    parents: Vec<(u32, u32, u32)>,
    /// Violations observed while exploring, tagged with the local id of
    /// the observing state.
    violations: Vec<(u32, V)>,
    /// Outbound staging, one batch per destination shard.
    out: Vec<MsgBatch>,
    record_edges: bool,
    witness: bool,
    /// Cross-shard batches this worker published (plain field: summed
    /// into the observability registry at merge time, so the hot path
    /// never touches shared metrics).
    flushes: u64,
    /// Idle spins (frontier and inbox empty, pending > 0); ditto.
    idle_spins: u64,
}

impl<V: Send> Worker<V> {
    fn new(me: usize, nw: usize, nshards: usize, opts: &ExploreOptions) -> Self {
        Worker {
            me,
            nw,
            interner: MarkingInterner::new(nw),
            frontier: Vec::new(),
            edges: Vec::new(),
            parents: Vec::new(),
            violations: Vec::new(),
            out: (0..nshards).map(|_| MsgBatch::default()).collect(),
            record_edges: opts.record_edges,
            witness: opts.witness,
            flushes: 0,
            idle_spins: 0,
        }
    }

    /// Interns `key` in this shard, recording the edge/parent that
    /// discovered it; new states are charged against the global cap and
    /// pushed on the local frontier. Returns `false` when the exploration
    /// must stop.
    fn accept(
        &mut self,
        key: &[u64],
        src_shard: u32,
        src_local: u32,
        label: u32,
        shared: &Shared<V>,
    ) -> bool {
        let (local, is_new) = self.interner.intern(key);
        if is_new {
            if self.witness {
                self.parents.push((src_shard, src_local, label));
            }
            let before = shared.states.fetch_add(1, Ordering::AcqRel);
            // Injection site: simulate the cap bursting at state k.
            if fail_trigger!("shard::accept", before) {
                shared.cap_burst();
                return false;
            }
            if before >= shared.budget.cap {
                shared.cap_burst();
                return false;
            }
            shared.pending.fetch_add(1, Ordering::AcqRel);
            self.frontier.push(local.0);
        }
        if self.record_edges {
            self.edges.push(EdgeRec {
                src_shard,
                src_local,
                label,
                dst_local: local.0,
            });
        }
        true
    }

    /// Takes every waiting inbound batch and interns its states.
    /// Returns whether anything was received.
    fn drain_inbox(&mut self, shared: &Shared<V>) -> bool {
        let mut any = false;
        for src in 0..shared.nshards {
            if src == self.me {
                continue;
            }
            let q = &shared.queues[self.me][src];
            if !q.nonempty.load(Ordering::Acquire) {
                continue;
            }
            let batch = {
                let mut buf = relock(&q.buf);
                q.nonempty.store(false, Ordering::Release);
                std::mem::take(&mut *buf)
            };
            if batch.meta.is_empty() {
                continue;
            }
            if batch.words.len() != batch.meta.len() * self.nw {
                // A sender panicked mid-append and left the batch torn.
                // Its panic has already raised `stop`; skip the batch
                // rather than cascade the failure into this worker.
                debug_assert!(shared.stopped());
                continue;
            }
            any = true;
            for (k, &(src_local, label)) in batch.meta.iter().enumerate() {
                let key = &batch.words[k * self.nw..(k + 1) * self.nw];
                let ok = self.accept(key, src as u32, src_local, label, shared);
                shared.pending.fetch_sub(1, Ordering::AcqRel);
                if !ok {
                    return any;
                }
            }
        }
        any
    }

    /// Publishes the staged batch for `dst` into the shared queue.
    fn flush_to(&mut self, dst: usize, shared: &Shared<V>) {
        if self.out[dst].meta.is_empty() {
            return;
        }
        // Injection site: delay the publish (queue stall) — the pending
        // counter must keep the receiver spinning until this lands.
        fail_point!("shard::flush", dst);
        self.flushes += 1;
        // Flushes are already amortized (per FLUSH_AT messages), so the
        // states-per-batch histogram costs one relaxed load per flush.
        si_obs::histogram_record("explore.flush_batch", self.out[dst].meta.len() as u64);
        let staged = &mut self.out[dst];
        {
            let q = &shared.queues[dst][self.me];
            let mut buf = relock(&q.buf);
            buf.words.extend_from_slice(&staged.words);
            buf.meta.extend_from_slice(&staged.meta);
            q.nonempty.store(true, Ordering::Release);
        }
        staged.words.clear();
        staged.meta.clear();
    }

    fn flush_all(&mut self, shared: &Shared<V>) {
        for dst in 0..shared.nshards {
            if dst != self.me {
                self.flush_to(dst, shared);
            }
        }
    }

    /// The worker main loop: drain inbox, explore the local frontier
    /// through the space's `inspect` + `for_each_successor`, flush
    /// outbound batches, spin-yield when idle until `pending` reaches
    /// zero (or someone stops the run).
    fn run<S: StateSpace<Violation = V>>(&mut self, space: &S, shared: &Shared<V>) {
        // Injection site: a worker that dies on arrival (value = shard
        // index) — the catch_unwind boundary in `explore_sharded` must
        // convert this into a structured `WorkerPanicked` error.
        fail_point!("shard::worker", self.me);
        let nw = self.nw;
        let mut cur = vec![0u64; nw];
        let mut scratch = vec![0u64; nw];
        let governed = shared.budget.has_soft_limits();
        // Progress heartbeats ride the existing per-64-states checkpoint,
        // so arming them adds no branch to the per-state loop.
        let ticking = si_obs::progress_armed();
        loop {
            if shared.stopped() {
                return;
            }
            let received = self.drain_inbox(shared);
            let mut explored = 0usize;
            while let Some(s) = self.frontier.pop() {
                if shared.violations.load(Ordering::Acquire) >= shared.max_violations {
                    shared.stop.store(true, Ordering::Release);
                    return;
                }
                cur.copy_from_slice(self.interner.key(s as usize));
                let fatal = {
                    let mut vis = WorkerVisitor {
                        worker: self,
                        shared,
                        src: s,
                        stopped: false,
                    };
                    // A violating verdict re-checks the budget at once: a
                    // spent budget stops the run before this state's
                    // successors are expanded (mirrors the sequential
                    // explorer).
                    if space.inspect(&cur, &mut vis) == crate::space::Verdict::Violation
                        && shared.violations.load(Ordering::Acquire) >= shared.max_violations
                    {
                        shared.stop.store(true, Ordering::Release);
                        return;
                    }
                    space.for_each_successor(&cur, &mut scratch, &mut vis).err()
                };
                if let Some(v) = fatal {
                    shared.fail(v);
                    return;
                }
                shared.pending.fetch_sub(1, Ordering::AcqRel);
                explored += 1;
                if explored.is_multiple_of(64) {
                    if governed {
                        shared.check_budget();
                    }
                    if ticking {
                        si_obs::progress_tick(
                            shared.states.load(Ordering::Relaxed),
                            self.frontier.len(),
                        );
                    }
                    if shared.stopped() {
                        return;
                    }
                    // Keep cross-shard latency bounded even during long
                    // local runs: publish what we have and take deliveries.
                    self.flush_all(shared);
                    self.drain_inbox(shared);
                }
            }
            self.flush_all(shared);
            if !received && self.frontier.is_empty() {
                if shared.pending.load(Ordering::Acquire) == 0 {
                    return;
                }
                if governed {
                    // An idle worker still honors deadline/cancellation:
                    // with every shard idle-spinning on a stalled queue,
                    // someone has to notice the budget ran out.
                    shared.check_budget();
                }
                self.idle_spins += 1;
                std::thread::yield_now();
            }
        }
    }
}

/// The space-facing visitor of one state expansion inside a worker:
/// routes successors to their owning shard, collects violations.
struct WorkerVisitor<'a, V> {
    worker: &'a mut Worker<V>,
    shared: &'a Shared<V>,
    /// Local id of the state being expanded.
    src: u32,
    /// This expansion must stop (cap burst locally).
    stopped: bool,
}

impl<V: Send> SpaceVisitor<V> for WorkerVisitor<'_, V> {
    fn successor(&mut self, label: u32, next: &[u64]) -> bool {
        if self.stopped {
            return false;
        }
        let dst = shard_of(next, self.shared.shift);
        if dst == self.worker.me {
            let me = self.worker.me as u32;
            if !self.worker.accept(next, me, self.src, label, self.shared) {
                self.stopped = true;
                return false;
            }
        } else {
            // Counted as in-flight from the moment it is staged, so no
            // receiver can observe pending == 0 while the message sits in
            // our buffer.
            self.shared.pending.fetch_add(1, Ordering::AcqRel);
            let staged = &mut self.worker.out[dst];
            staged.words.extend_from_slice(next);
            staged.meta.push((self.src, label));
            if staged.meta.len() >= FLUSH_AT {
                self.worker.flush_to(dst, self.shared);
            }
        }
        true
    }

    fn violation(&mut self, v: V) {
        self.shared.violations.fetch_add(1, Ordering::AcqRel);
        self.worker.violations.push((self.src, v));
    }
}

/// The generic **sharded** explorer: one worker thread per shard of the
/// hash-partitioned interner, exploring `space` under `opts`. See the
/// module docs for the pipeline; see [`crate::space::explore`] for the
/// sequential counterpart sharing the same contract.
///
/// `opts.shards` is normalized like [`crate::ReachOptions::shards`];
/// `shards <= 1` falls back to the sequential explorer.
///
/// # Errors
///
/// [`ExploreError::Fatal`]: the first fatal violation a racing worker
/// hits wins; see [`crate::ReachabilityGraph::build_sharded`] for the
/// determinism contract this implies.
/// [`ExploreError::WorkerPanicked`]: a worker thread panicked — the
/// panic is caught at the worker boundary, the remaining workers wind
/// down, and the first panic is reported with the process intact.
pub fn explore_sharded<S: StateSpace>(
    space: &S,
    opts: ExploreOptions,
) -> Result<Exploration<S::Violation>, ExploreError<S::Violation>> {
    let nshards = opts.shards.max(1).next_power_of_two().min(64);
    if nshards <= 1 {
        return crate::space::explore(space, opts);
    }
    let _span = si_obs::span("explore.sharded");
    let t0 = std::time::Instant::now();
    let nw = space.words();
    let shift = 64 - nshards.trailing_zeros();

    let shared: Shared<S::Violation> = Shared {
        nshards,
        shift,
        nw,
        budget: opts.budget.clone(),
        max_violations: opts.max_violations,
        pending: AtomicUsize::new(1), // the initial state
        states: AtomicUsize::new(1),  // ditto (never charged against the cap)
        violations: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        interrupted: AtomicU8::new(INTR_NONE),
        fatal: Mutex::new(None),
        panic_slot: Mutex::new(None),
        queues: (0..nshards)
            .map(|_| (0..nshards).map(|_| Queue::default()).collect())
            .collect(),
    };

    let mut workers: Vec<Worker<S::Violation>> = (0..nshards)
        .map(|i| Worker::new(i, nw, nshards, &opts))
        .collect();

    // Seed the initial state into its owner shard as local state 0. Like
    // the sequential explorer, it is admitted without a cap check (it has
    // no discovering edge either, so `accept` does not apply).
    let init = space.initial();
    let owner = shard_of(&init, shift);
    let (s0, _) = workers[owner].interner.intern(&init);
    debug_assert_eq!(s0, StateId(0));
    if opts.witness {
        workers[owner].parents.push((NO_PARENT, 0, 0));
    }
    workers[owner].frontier.push(0);

    std::thread::scope(|scope| {
        for w in workers.iter_mut() {
            let shared = &shared;
            scope.spawn(move || {
                // Per-worker panic isolation: a panicking space (or an
                // injected fault) takes down this worker only; the panic
                // is converted into a structured error and every other
                // worker winds down via the stop flag.
                let me = w.me;
                if let Err(message) = run_isolated(|| w.run(space, shared)) {
                    shared.worker_panicked(me, message);
                }
            });
        }
    });

    if let Some((shard, message)) = relock(&shared.panic_slot).take() {
        return Err(ExploreError::WorkerPanicked { shard, message });
    }
    if let Some(v) = relock(&shared.fatal).take() {
        return Err(ExploreError::Fatal(v));
    }
    let mut expl = merge(workers, &shared, owner, &opts);
    expl.elapsed = t0.elapsed();
    Ok(expl)
}

/// Merges the shards into one [`Exploration`] under provisional global
/// ids (`gid = shard offset + local id`).
fn merge<V>(
    workers: Vec<Worker<V>>,
    shared: &Shared<V>,
    owner: usize,
    opts: &ExploreOptions,
) -> Exploration<V> {
    let nshards = workers.len();
    let nw = workers[0].nw;

    if si_obs::enabled() {
        si_obs::counter_add(
            "explore.flushes",
            workers.iter().map(|w| w.flushes).sum::<u64>(),
        );
        si_obs::counter_add(
            "explore.idle_spins",
            workers.iter().map(|w| w.idle_spins).sum::<u64>(),
        );
    }

    // Shard offsets: gid = off[shard] + local id.
    let mut off = vec![0usize; nshards + 1];
    for (i, w) in workers.iter().enumerate() {
        off[i + 1] = off[i] + w.interner.len();
    }
    let n = off[nshards];
    let gid = |shard: u32, local: u32| (off[shard as usize] + local as usize) as u32;

    // Successor CSR over gids (edges are recorded by the shard owning
    // their destination, so rows are scattered across workers): count,
    // prefix-sum, scatter, then sort each row by label — which recovers
    // the sequential explorer's in-row order, since every (state, label)
    // edge is unique and labels are enumerated ascending.
    let nedges: usize = workers.iter().map(|w| w.edges.len()).sum();
    let mut deg = vec![0u32; n + 1];
    if opts.record_edges {
        for w in &workers {
            for e in &w.edges {
                deg[gid(e.src_shard, e.src_local) as usize + 1] += 1;
            }
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
    }
    let mut cursor = deg.clone();
    let mut succ_edges = vec![(0u32, 0u32); nedges];

    // One consuming pass per worker: states into the flat arena, parents
    // and violations remapped to gids, edges scattered into the CSR.
    let mut words: Vec<u64> = Vec::with_capacity(n * nw);
    let mut parents: Vec<(u32, u32)> = Vec::with_capacity(if opts.witness { n } else { 0 });
    let mut violations: Vec<(u32, V)> = Vec::new();
    for (j, w) in workers.into_iter().enumerate() {
        let j = j as u32;
        words.extend_from_slice(&w.interner.words);
        for &(ps, pl, label) in &w.parents {
            parents.push(if ps == NO_PARENT {
                (NO_PARENT, 0)
            } else {
                (gid(ps, pl), label)
            });
        }
        violations.extend(w.violations.into_iter().map(|(l, v)| (gid(j, l), v)));
        for e in &w.edges {
            let c = &mut cursor[gid(e.src_shard, e.src_local) as usize];
            succ_edges[*c as usize] = (e.label, gid(j, e.dst_local));
            *c += 1;
        }
    }
    debug_assert!(!opts.witness || parents.len() == n);
    let mut succ_ranges: Vec<(u32, u32)> = Vec::new();
    if opts.record_edges {
        for s in 0..n {
            succ_edges[deg[s] as usize..deg[s + 1] as usize].sort_unstable_by_key(|&(l, _)| l);
        }
        succ_ranges = (0..n).map(|s| (deg[s], deg[s + 1])).collect();
    }

    let interrupted = intr_reason(shared.interrupted.load(Ordering::Acquire));
    let states = n.min(shared.budget.cap);
    if si_obs::enabled() {
        si_obs::counter_add("explore.states", states as u64);
        si_obs::counter_add("explore.edges", nedges as u64);
    }
    Exploration {
        store: Store::Flat { nw, words, len: n },
        root: off[owner] as u32,
        succ_edges,
        succ_ranges,
        parents,
        violations,
        interrupted,
        states,
        elapsed: Duration::ZERO, // overwritten by explore_sharded
    }
}

/// Canonical reachability numbering over a sharded [`Exploration`] of the
/// marking space: replays the sequential exploration order (LIFO stack
/// from the initial marking, successors in transition order, ids assigned
/// at first discovery) over the discovered graph, then packs the result
/// into the CSR/interner representation — making
/// [`ReachabilityGraph::build_sharded`] bit-identical to
/// [`ReachabilityGraph::build`]. The renumbering derives purely from
/// graph structure, so thread scheduling cannot leak into the output.
pub(crate) fn seal(net: &PetriNet, expl: &Exploration<ReachError>) -> ReachabilityGraph {
    let np = net.place_count();
    let nt = net.transition_count();
    let n = expl.interned();
    let row = |s: usize| {
        let (start, end) = expl.succ_ranges[s];
        &expl.succ_edges[start as usize..end as usize]
    };

    // Replay: LIFO stack, successors in label order, ids at discovery.
    let root = expl.root() as usize;
    let mut perm = vec![u32::MAX; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    perm[root] = 0;
    order.push(root as u32);
    let mut stack: Vec<u32> = vec![root as u32];
    while let Some(s) = stack.pop() {
        for &(_, d) in row(s as usize) {
            if perm[d as usize] == u32::MAX {
                perm[d as usize] = order.len() as u32;
                order.push(d);
                stack.push(d);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "every state is reachable from m0");

    // Emit in canonical order, straight into the flat CSR layout (no
    // per-row Vec allocations — n can be millions).
    let markings: Vec<Marking> = order
        .iter()
        .map(|&old| Marking::from_words(np, expl.key(old).to_vec()))
        .collect();
    let mut interner = MarkingInterner::new(markings.first().map_or(1, |m| m.as_words().len()));
    for m in &markings {
        interner.intern(m.as_words());
    }
    let mut succ_edges: Vec<(TransId, StateId)> = Vec::with_capacity(expl.succ_edges.len());
    let mut succ_ranges: Vec<(u32, u32)> = Vec::with_capacity(n);
    for &old in &order {
        let start = succ_edges.len() as u32;
        for &(t, d) in row(old as usize) {
            succ_edges.push((TransId(t), StateId(perm[d as usize])));
        }
        succ_ranges.push((start, succ_edges.len() as u32));
    }
    ReachabilityGraph::index_edges(nt, markings, interner, succ_edges, succ_ranges)
}

#[cfg(test)]
mod tests {
    use crate::net::PetriNet;
    use crate::reach::{ReachError, ReachabilityGraph};

    /// An `n`-stage pipeline of fork-joins — enough states to exercise
    /// cross-shard traffic and table growth.
    fn pipeline(n: usize) -> PetriNet {
        let mut b = PetriNet::builder();
        let mut prev = b.add_place("p0", true);
        for i in 0..n {
            let fork = b.add_transition(format!("fork{i}"));
            let a = b.add_place(format!("a{i}"), false);
            let c = b.add_place(format!("b{i}"), false);
            let a2 = b.add_place(format!("a{i}x"), false);
            let c2 = b.add_place(format!("b{i}x"), false);
            let join = b.add_transition(format!("join{i}"));
            let next = b.add_place(format!("p{}", i + 1), false);
            b.arc_pt(prev, fork);
            b.arc_tp(fork, a);
            b.arc_tp(fork, c);
            let ta = b.add_transition(format!("ta{i}"));
            let tb = b.add_transition(format!("tb{i}"));
            b.arc_pt(a, ta);
            b.arc_tp(ta, a2);
            b.arc_pt(c, tb);
            b.arc_tp(tb, c2);
            b.arc_pt(a2, join);
            b.arc_pt(c2, join);
            b.arc_tp(join, next);
            prev = next;
        }
        // Close the loop so the net is live.
        let back = b.add_transition("back");
        let first = crate::net::PlaceId(0);
        b.arc_pt(prev, back);
        b.arc_tp(back, first);
        b.build()
    }

    fn assert_identical(a: &ReachabilityGraph, b: &ReachabilityGraph) {
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for s in a.states() {
            assert_eq!(a.marking(s), b.marking(s), "marking of {s:?}");
            assert_eq!(a.successors(s), b.successors(s), "succs of {s:?}");
            assert_eq!(a.predecessors(s), b.predecessors(s), "preds of {s:?}");
        }
    }

    #[test]
    fn sharded_matches_sequential_bit_for_bit() {
        for n in [1, 3, 6] {
            let net = pipeline(n);
            let seq = ReachabilityGraph::build(&net, 1_000_000).unwrap();
            for shards in [2, 4, 8] {
                let par = ReachabilityGraph::build_sharded(&net, 1_000_000, shards).unwrap();
                assert_identical(&seq, &par);
                for t in net.transitions() {
                    assert_eq!(seq.states_enabling(t), par.states_enabling(t));
                }
                assert_eq!(seq.is_live(&net), par.is_live(&net));
            }
        }
    }

    #[test]
    fn sharded_respects_cap() {
        let net = pipeline(4);
        let full = ReachabilityGraph::build(&net, 1_000_000).unwrap();
        let cap = full.state_count() - 1;
        let err = ReachabilityGraph::build_sharded(&net, cap, 4).unwrap_err();
        assert_eq!(err, ReachError::StateCapExceeded { cap });
    }

    #[test]
    fn sharded_detects_unsafe_nets() {
        // Two producers race tokens onto p1.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", true);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p2, t1);
        b.arc_tp(t1, p1);
        b.arc_tp(t1, p0);
        let net = b.build();
        let r = ReachabilityGraph::build_sharded(&net, 100, 2);
        assert!(matches!(r, Err(ReachError::NotSafe { .. })));
    }

    #[test]
    fn one_shard_falls_back_to_sequential() {
        let net = pipeline(2);
        let a = ReachabilityGraph::build_sharded(&net, 1_000, 1).unwrap();
        let b = ReachabilityGraph::build(&net, 1_000).unwrap();
        assert_identical(&a, &b);
    }

    #[test]
    fn wide_nets_cross_word_boundaries() {
        // > 64 places forces multi-word markings through the message path.
        let n = 40; // 6 places per stage + 1 => ~241 places
        let net = pipeline(n);
        let seq = ReachabilityGraph::build(&net, 1_000_000).unwrap();
        let par = ReachabilityGraph::build_sharded(&net, 1_000_000, 4).unwrap();
        assert_identical(&seq, &par);
    }

    #[test]
    fn sharded_witnesses_replay() {
        use crate::shard::explore_sharded;
        use crate::space::{ExploreOptions, MarkingSpace};
        let net = pipeline(3);
        let space = MarkingSpace::new(&net);
        let e = explore_sharded(
            &space,
            ExploreOptions::with_cap(1_000_000).shards(4).witness(),
        )
        .unwrap();
        // Every discovered state's witness must replay, via the firing
        // rule, from m0 to that state's packed words.
        let view = net.firing_view();
        let nw = view.words();
        for s in (0..e.interned() as u32).step_by(7) {
            let mut cur = net.initial_marking().as_words().to_vec();
            let mut scratch = vec![0u64; nw];
            for label in e.witness(s) {
                assert!(view.is_enabled(&cur, label as usize));
                view.fire_into(&cur, label as usize, &mut scratch);
                std::mem::swap(&mut cur, &mut scratch);
            }
            assert_eq!(&cur[..], e.key(s), "witness of state {s} does not replay");
        }
    }
}
