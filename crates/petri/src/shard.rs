//! Sharded parallel reachability exploration.
//!
//! The sequential engine behind [`ReachabilityGraph::build`] is bounded by one thread
//! walking one marking interner. This module removes that bound by
//! *partitioning the interner*: every reachable marking is owned by exactly
//! one **shard**, chosen by a multiplicative mix of the marking's word
//! hash, and every shard is explored by its own worker thread.
//!
//! # Pipeline
//!
//! ```text
//!             ┌────────────────────── worker i ──────────────────────┐
//!             │ frontier_i ─▶ fire all transitions (FiringView)      │
//!             │     ▲               │                                │
//!             │     │        shard_of(m') == i ? ──yes─▶ intern_i ───┤
//!             │     └──────────────────────────────────── (if new)   │
//!             │                      no                              │
//!             │                      ▼                               │
//!             │            queues[j][i]  (batched, mutexed)          │
//!             └──────────────────────┬───────────────────────────────┘
//!                                    ▼
//!             ┌────────────────────── worker j ──────────────────────┐
//!             │ drain queues[j][*] ─▶ intern_j ─▶ record edge        │
//!             │                          │ (if new) ─▶ frontier_j    │
//!             └──────────────────────────┴───────────────────────────┘
//!
//!   termination: global `pending` counter =
//!       (discovered-but-unexplored states) + (sent-but-unprocessed msgs);
//!   a worker may exit only when its frontier and inbox are empty AND
//!   pending == 0.
//! ```
//!
//! Each worker owns a private marking interner (open-addressing table +
//! flat word arena) and a LIFO frontier, so the hot loop is identical to
//! the sequential engine: no locks, no allocation per firing. Only
//! *cross-shard successors* pay for communication, and those are staged in
//! per-destination batches that are flushed under a per-`(src, dst)` pair
//! mutex — workers never contend on a single global structure.
//!
//! # Sealing and canonical numbering
//!
//! After the parallel phase the shards hold disjoint state sets with
//! *shard-local* ids and edge records scattered across workers (an edge is
//! recorded by the shard owning its **destination**, which is the only
//! worker that knows the destination's local id). The seal phase
//!
//! 1. concatenates the shards (global id = shard offset + local id),
//! 2. rebuilds the successor adjacency and sorts each row by transition,
//! 3. **renumbers states by replaying the sequential exploration order**
//!    (LIFO stack from the initial marking, successors scanned in
//!    transition order) over the discovered graph, and
//! 4. hands the result to the same CSR/interner packing the sequential
//!    engine uses.
//!
//! Step 3 makes the output *bit-identical* to [`ReachabilityGraph::build`]
//! regardless of thread scheduling: the discovered state set and edge set
//! are deterministic, and the replay derives the numbering purely from
//! graph structure. Property tests
//! (`crates/petri/tests/prop_substrate.rs`) pin this equivalence on the
//! random live/safe/free-choice corpus.

use crate::net::{FiringView, Marking, PetriNet, TransId};
use crate::reach::{MarkingInterner, ReachError, ReachabilityGraph, StateId};
use si_boolean::hash_word_slice;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Odd multiplier decorrelating the shard index from the interner's slot
/// index (both are derived from the same word hash; without the remix a
/// shard's keys would share their low hash bits and cluster in its table).
const SHARD_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Staged cross-shard messages are flushed to the shared queue once this
/// many have accumulated for one destination (or when the sender's local
/// frontier drains). Batching amortizes the queue mutex.
const FLUSH_AT: usize = 128;

/// Owning shard of a marking key: top `log2(nshards)` bits of the remixed
/// hash. `shift == 64 - log2(nshards)`.
#[inline]
fn shard_of(key: &[u64], shift: u32) -> usize {
    (hash_word_slice(key).wrapping_mul(SHARD_MIX) >> shift) as usize
}

/// A batch of cross-shard messages: `nw` marking words plus
/// `(source-local state, transition)` per message. The source shard is
/// implied by which queue the batch sits in.
#[derive(Default)]
struct MsgBatch {
    words: Vec<u64>,
    meta: Vec<(u32, u32)>,
}

/// One `(src, dst)` message queue. The `nonempty` flag is written only
/// while `buf`'s lock is held, so a receiver that reads `true` (Acquire)
/// will find the messages, and a stale `false` merely defers the batch to
/// the receiver's next spin (the `pending` counter keeps it spinning).
/// Idle workers thereby skip empty inboxes without touching any mutex.
#[derive(Default)]
struct Queue {
    nonempty: AtomicBool,
    buf: Mutex<MsgBatch>,
}

/// One discovered edge, recorded by the shard owning its destination.
struct EdgeRec {
    src_shard: u32,
    src_local: u32,
    trans: u32,
    /// Local id within the recording shard.
    dst_local: u32,
}

/// State shared by all workers of one exploration.
struct Shared {
    nshards: usize,
    shift: u32,
    cap: usize,
    /// In-flight work: discovered-but-unexplored states plus
    /// sent-but-unprocessed messages. Zero ⇔ exploration complete.
    pending: AtomicUsize,
    /// Total markings interned across all shards (cap accounting).
    states: AtomicUsize,
    abort: AtomicBool,
    error: Mutex<Option<ReachError>>,
    /// `queues[dst][src]` — receiver `dst` drains row `dst`, sender `src`
    /// appends under the pair's own mutex, so flushes to different
    /// destinations never contend.
    queues: Vec<Vec<Queue>>,
}

impl Shared {
    /// First failure wins; everyone else sees `abort` and unwinds.
    fn fail(&self, e: ReachError) {
        let mut slot = self.error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::Release);
    }
}

/// Per-worker private state: one shard of the interner, its frontier, its
/// edge records and its outbound staging buffers.
struct Worker {
    me: usize,
    nw: usize,
    interner: MarkingInterner,
    /// LIFO frontier of shard-local state ids (same discipline as the
    /// sequential engine).
    frontier: Vec<u32>,
    edges: Vec<EdgeRec>,
    /// Outbound staging, one batch per destination shard.
    out: Vec<MsgBatch>,
}

impl Worker {
    fn new(me: usize, nw: usize, nshards: usize) -> Self {
        Worker {
            me,
            nw,
            interner: MarkingInterner::new(nw),
            frontier: Vec::new(),
            edges: Vec::new(),
            out: (0..nshards).map(|_| MsgBatch::default()).collect(),
        }
    }

    /// Interns `key` in this shard, recording the edge that discovered it;
    /// new states are charged against the global cap and pushed on the
    /// local frontier. Returns `false` when the exploration must abort.
    fn accept(
        &mut self,
        key: &[u64],
        src_shard: u32,
        src_local: u32,
        trans: u32,
        shared: &Shared,
    ) -> bool {
        let (local, is_new) = self.interner.intern(key);
        if is_new {
            let before = shared.states.fetch_add(1, Ordering::AcqRel);
            if before >= shared.cap {
                shared.fail(ReachError::StateCapExceeded { cap: shared.cap });
                return false;
            }
            shared.pending.fetch_add(1, Ordering::AcqRel);
            self.frontier.push(local.0);
        }
        self.edges.push(EdgeRec {
            src_shard,
            src_local,
            trans,
            dst_local: local.0,
        });
        true
    }

    /// Takes every waiting inbound batch and interns its markings.
    /// Returns whether anything was received.
    fn drain_inbox(&mut self, shared: &Shared) -> bool {
        let mut any = false;
        for src in 0..shared.nshards {
            if src == self.me {
                continue;
            }
            let q = &shared.queues[self.me][src];
            if !q.nonempty.load(Ordering::Acquire) {
                continue;
            }
            let batch = {
                let mut buf = q.buf.lock().unwrap();
                q.nonempty.store(false, Ordering::Release);
                std::mem::take(&mut *buf)
            };
            if batch.meta.is_empty() {
                continue;
            }
            any = true;
            for (k, &(src_local, trans)) in batch.meta.iter().enumerate() {
                let key = &batch.words[k * self.nw..(k + 1) * self.nw];
                let ok = self.accept(key, src as u32, src_local, trans, shared);
                shared.pending.fetch_sub(1, Ordering::AcqRel);
                if !ok {
                    return any;
                }
            }
        }
        any
    }

    /// Publishes the staged batch for `dst` into the shared queue.
    fn flush_to(&mut self, dst: usize, shared: &Shared) {
        let staged = &mut self.out[dst];
        if staged.meta.is_empty() {
            return;
        }
        {
            let q = &shared.queues[dst][self.me];
            let mut buf = q.buf.lock().unwrap();
            buf.words.extend_from_slice(&staged.words);
            buf.meta.extend_from_slice(&staged.meta);
            q.nonempty.store(true, Ordering::Release);
        }
        staged.words.clear();
        staged.meta.clear();
    }

    fn flush_all(&mut self, shared: &Shared) {
        for dst in 0..shared.nshards {
            if dst != self.me {
                self.flush_to(dst, shared);
            }
        }
    }

    /// The worker main loop: drain inbox, explore the local frontier,
    /// flush outbound batches, spin-yield when idle until `pending`
    /// reaches zero (or someone aborts).
    fn run(&mut self, view: &FiringView, shared: &Shared) {
        let nw = self.nw;
        let nt = view.transition_count();
        let mut cur = vec![0u64; nw];
        let mut scratch = vec![0u64; nw];
        loop {
            if shared.abort.load(Ordering::Acquire) {
                return;
            }
            let received = self.drain_inbox(shared);
            let mut explored = 0usize;
            while let Some(s) = self.frontier.pop() {
                cur.copy_from_slice(self.interner.key(s as usize));
                for ti in 0..nt {
                    if !view.is_enabled(&cur, ti) {
                        continue;
                    }
                    if view.violates_safeness(&cur, ti) {
                        shared.fail(ReachError::NotSafe {
                            transition: TransId(ti as u32),
                        });
                        return;
                    }
                    view.fire_into(&cur, ti, &mut scratch);
                    let dst = shard_of(&scratch, shared.shift);
                    if dst == self.me {
                        if !self.accept(&scratch, self.me as u32, s, ti as u32, shared) {
                            return;
                        }
                    } else {
                        // Counted as in-flight from the moment it is
                        // staged, so no receiver can observe pending == 0
                        // while the message sits in our buffer.
                        shared.pending.fetch_add(1, Ordering::AcqRel);
                        let staged = &mut self.out[dst];
                        staged.words.extend_from_slice(&scratch);
                        staged.meta.push((s, ti as u32));
                        if staged.meta.len() >= FLUSH_AT {
                            self.flush_to(dst, shared);
                        }
                    }
                }
                shared.pending.fetch_sub(1, Ordering::AcqRel);
                explored += 1;
                if explored.is_multiple_of(64) {
                    if shared.abort.load(Ordering::Acquire) {
                        return;
                    }
                    // Keep cross-shard latency bounded even during long
                    // local runs: publish what we have and take deliveries.
                    self.flush_all(shared);
                    self.drain_inbox(shared);
                }
            }
            self.flush_all(shared);
            if !received && self.frontier.is_empty() {
                if shared.pending.load(Ordering::Acquire) == 0 {
                    return;
                }
                std::thread::yield_now();
            }
        }
    }
}

/// Parallel exploration entry point — see
/// [`ReachabilityGraph::build_sharded`] for the public contract.
/// `nshards` must be a power of two ≥ 2 (the caller normalizes).
pub(crate) fn build_sharded(
    net: &PetriNet,
    cap: usize,
    nshards: usize,
) -> Result<ReachabilityGraph, ReachError> {
    debug_assert!(nshards >= 2 && nshards.is_power_of_two());
    let view = net.firing_view();
    let nw = view.words();
    let shift = 64 - nshards.trailing_zeros();

    let shared = Shared {
        nshards,
        shift,
        cap,
        pending: AtomicUsize::new(1), // the initial marking
        states: AtomicUsize::new(1),  // ditto (never charged against the cap)
        abort: AtomicBool::new(false),
        error: Mutex::new(None),
        queues: (0..nshards)
            .map(|_| (0..nshards).map(|_| Queue::default()).collect())
            .collect(),
    };

    let mut workers: Vec<Worker> = (0..nshards).map(|i| Worker::new(i, nw, nshards)).collect();

    // Seed the initial marking into its owner shard as local state 0.
    // Like the sequential engine, m0 is admitted without a cap check (it
    // has no discovering edge either, so `accept` does not apply).
    let m0 = net.initial_marking();
    let owner = shard_of(m0.as_words(), shift);
    let (s0, _) = workers[owner].interner.intern(m0.as_words());
    debug_assert_eq!(s0, StateId(0));
    workers[owner].frontier.push(0);

    std::thread::scope(|scope| {
        for w in workers.iter_mut() {
            let shared = &shared;
            let view = &view;
            scope.spawn(move || w.run(view, shared));
        }
    });

    if let Some(e) = shared.error.into_inner().unwrap() {
        return Err(e);
    }
    Ok(seal(net, &workers, owner))
}

/// Merges the shards and renumbers canonically (module docs, steps 1–4).
fn seal(net: &PetriNet, workers: &[Worker], owner: usize) -> ReachabilityGraph {
    let np = net.place_count();
    let nt = net.transition_count();
    let nshards = workers.len();

    // 1. Shard offsets: provisional global id = off[shard] + local id.
    let mut off = vec![0usize; nshards + 1];
    for (i, w) in workers.iter().enumerate() {
        off[i + 1] = off[i] + w.interner.len();
    }
    let n = off[nshards];

    // Old-gid-indexed view of every marking's words (shards are
    // contiguous ranges of the provisional numbering).
    let mut words_of: Vec<&[u64]> = Vec::with_capacity(n);
    for w in workers {
        for l in 0..w.interner.len() {
            words_of.push(w.interner.key(l));
        }
    }

    // 2. Successor adjacency over provisional ids, rows sorted by
    //    transition (each (state, transition) edge is unique, so this
    //    recovers the sequential engine's in-row order).
    let nedges: usize = workers.iter().map(|w| w.edges.len()).sum();
    let mut deg = vec![0u32; n + 1];
    for w in workers {
        for e in &w.edges {
            deg[off[e.src_shard as usize] + e.src_local as usize + 1] += 1;
        }
    }
    for i in 0..n {
        deg[i + 1] += deg[i];
    }
    let mut adj = vec![(0u32, 0u32); nedges];
    let mut cursor = deg.clone();
    for (j, w) in workers.iter().enumerate() {
        for e in &w.edges {
            let src = off[e.src_shard as usize] + e.src_local as usize;
            let dst = (off[j] + e.dst_local as usize) as u32;
            let c = &mut cursor[src];
            adj[*c as usize] = (e.trans, dst);
            *c += 1;
        }
    }
    for s in 0..n {
        adj[deg[s] as usize..deg[s + 1] as usize].sort_unstable_by_key(|&(t, _)| t);
    }
    let row = |s: usize| &adj[deg[s] as usize..deg[s + 1] as usize];

    // 3. Canonical renumbering: replay the sequential exploration (LIFO
    //    stack, successors in transition order, ids assigned at first
    //    discovery) over the discovered graph.
    let root = off[owner]; // m0 is local state 0 of its owner shard
    let mut perm = vec![u32::MAX; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    perm[root] = 0;
    order.push(root as u32);
    let mut stack: Vec<u32> = vec![root as u32];
    while let Some(s) = stack.pop() {
        for &(_, d) in row(s as usize) {
            if perm[d as usize] == u32::MAX {
                perm[d as usize] = order.len() as u32;
                order.push(d);
                stack.push(d);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "every state is reachable from m0");

    // 4. Emit in canonical order, straight into the flat CSR layout (no
    //    per-row Vec allocations — n can be millions).
    let markings: Vec<Marking> = order
        .iter()
        .map(|&old| Marking::from_words(np, words_of[old as usize].to_vec()))
        .collect();
    let mut interner = MarkingInterner::new(words_of.first().map_or(1, |w| w.len()));
    for m in &markings {
        interner.intern(m.as_words());
    }
    let mut succ_edges: Vec<(TransId, StateId)> = Vec::with_capacity(nedges);
    let mut succ_ranges: Vec<(u32, u32)> = Vec::with_capacity(n);
    for &old in &order {
        let start = succ_edges.len() as u32;
        for &(t, d) in row(old as usize) {
            succ_edges.push((TransId(t), StateId(perm[d as usize])));
        }
        succ_ranges.push((start, succ_edges.len() as u32));
    }
    ReachabilityGraph::index_edges(nt, markings, interner, succ_edges, succ_ranges)
}

#[cfg(test)]
mod tests {
    use crate::net::PetriNet;
    use crate::reach::{ReachError, ReachabilityGraph};

    /// An `n`-stage pipeline of fork-joins — enough states to exercise
    /// cross-shard traffic and table growth.
    fn pipeline(n: usize) -> PetriNet {
        let mut b = PetriNet::builder();
        let mut prev = b.add_place("p0", true);
        for i in 0..n {
            let fork = b.add_transition(format!("fork{i}"));
            let a = b.add_place(format!("a{i}"), false);
            let c = b.add_place(format!("b{i}"), false);
            let a2 = b.add_place(format!("a{i}x"), false);
            let c2 = b.add_place(format!("b{i}x"), false);
            let join = b.add_transition(format!("join{i}"));
            let next = b.add_place(format!("p{}", i + 1), false);
            b.arc_pt(prev, fork);
            b.arc_tp(fork, a);
            b.arc_tp(fork, c);
            let ta = b.add_transition(format!("ta{i}"));
            let tb = b.add_transition(format!("tb{i}"));
            b.arc_pt(a, ta);
            b.arc_tp(ta, a2);
            b.arc_pt(c, tb);
            b.arc_tp(tb, c2);
            b.arc_pt(a2, join);
            b.arc_pt(c2, join);
            b.arc_tp(join, next);
            prev = next;
        }
        // Close the loop so the net is live.
        let back = b.add_transition("back");
        let first = crate::net::PlaceId(0);
        b.arc_pt(prev, back);
        b.arc_tp(back, first);
        b.build()
    }

    fn assert_identical(a: &ReachabilityGraph, b: &ReachabilityGraph) {
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for s in a.states() {
            assert_eq!(a.marking(s), b.marking(s), "marking of {s:?}");
            assert_eq!(a.successors(s), b.successors(s), "succs of {s:?}");
            assert_eq!(a.predecessors(s), b.predecessors(s), "preds of {s:?}");
        }
    }

    #[test]
    fn sharded_matches_sequential_bit_for_bit() {
        for n in [1, 3, 6] {
            let net = pipeline(n);
            let seq = ReachabilityGraph::build(&net, 1_000_000).unwrap();
            for shards in [2, 4, 8] {
                let par = ReachabilityGraph::build_sharded(&net, 1_000_000, shards).unwrap();
                assert_identical(&seq, &par);
                for t in net.transitions() {
                    assert_eq!(seq.states_enabling(t), par.states_enabling(t));
                }
                assert_eq!(seq.is_live(&net), par.is_live(&net));
            }
        }
    }

    #[test]
    fn sharded_respects_cap() {
        let net = pipeline(4);
        let full = ReachabilityGraph::build(&net, 1_000_000).unwrap();
        let cap = full.state_count() - 1;
        let err = ReachabilityGraph::build_sharded(&net, cap, 4).unwrap_err();
        assert_eq!(err, ReachError::StateCapExceeded { cap });
    }

    #[test]
    fn sharded_detects_unsafe_nets() {
        // Two producers race tokens onto p1.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", true);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p2, t1);
        b.arc_tp(t1, p1);
        b.arc_tp(t1, p0);
        let net = b.build();
        let r = ReachabilityGraph::build_sharded(&net, 100, 2);
        assert!(matches!(r, Err(ReachError::NotSafe { .. })));
    }

    #[test]
    fn one_shard_falls_back_to_sequential() {
        let net = pipeline(2);
        let a = ReachabilityGraph::build_sharded(&net, 1_000, 1).unwrap();
        let b = ReachabilityGraph::build(&net, 1_000).unwrap();
        assert_identical(&a, &b);
    }

    #[test]
    fn wide_nets_cross_word_boundaries() {
        // > 64 places forces multi-word markings through the message path.
        let n = 40; // 6 places per stage + 1 => ~241 places
        let net = pipeline(n);
        let seq = ReachabilityGraph::build(&net, 1_000_000).unwrap();
        let par = ReachabilityGraph::build_sharded(&net, 1_000_000, 4).unwrap();
        assert_identical(&seq, &par);
    }
}
