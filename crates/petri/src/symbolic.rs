//! Symbolic reachability: the BDD backend of the explicit explorer.
//!
//! The explicit engines of [`crate::reach`] enumerate markings one by one,
//! so highly concurrent nets pay for every interleaving — an artifact of
//! the representation, not of the question being asked. This module
//! answers the same reachability queries *without enumerating states*: a
//! safe marking over `np` places is a vertex of `{0,1}^np`, the reachable
//! set is one BDD over place variables, and the set grows by **symbolic
//! image iteration** with per-transition relation BDDs built straight from
//! the [`FiringView`] masks.
//!
//! Variable order interleaves the two state rails — current-state variable
//! of place `p` at level `2·pos(p)`, next-state at `2·pos(p)+1` — which
//! keeps every transition relation `O(np)` nodes (each place contributes a
//! constant band of the frame condition `x'_p ↔ x_p`). The position
//! `pos(p)` comes from a **structural ordering heuristic**: a DFS preorder
//! of the place flow graph (`p → q` when some transition consumes `p` and
//! produces `q`) started from the initially marked places, so the places
//! of one sequential component sit on adjacent levels whatever order the
//! net was declared in. Raw declaration order is quadratically to
//! exponentially worse on parsed `.g` files, whose implicit places arrive
//! grouped by *transition* rather than by component. One image step is the
//! classical relational product,
//!
//! ```text
//! Img_t(S) = (∃ current . S ∧ T_t)[next := current]
//! ```
//!
//! fused into a single [`Bdd::and_exists`] pass plus an order-preserving
//! [`Bdd::rename`].
//!
//! The explicit explorer remains the **oracle**: on every net both
//! backends can finish, [`SymbolicReach::state_count`] equals
//! [`crate::ReachabilityGraph::state_count`], safeness verdicts coincide,
//! and per-transition enabledness agrees state for state — pinned by the
//! differential suite in `tests/prop_symbolic.rs`.
//!
//! # Governance
//!
//! The fixpoint honors the soft [`Budget`] limits (deadline, cancellation,
//! byte ceiling) with one amortized check per iteration, and interruption
//! is the same *tagged partial verdict* as everywhere else: the build
//! returns `Ok` with [`SymbolicReach::interrupt`] set and the reached set
//! grown so far — a certified underapproximation. The explicit state
//! **cap does not apply**: a cap bounds enumeration, and nothing is
//! enumerated here (breaking that wall is the point of the backend; pair
//! the build with a deadline when the BDD itself might blow up).
//!
//! # Examples
//!
//! ```
//! use si_petri::{Budget, PetriNet, ReachabilityGraph, SymbolicReach};
//!
//! let mut b = PetriNet::builder();
//! let p0 = b.add_place("idle", true);
//! let p1 = b.add_place("busy", false);
//! let go = b.add_transition("go");
//! let done = b.add_transition("done");
//! b.arc_pt(p0, go);
//! b.arc_tp(go, p1);
//! b.arc_pt(p1, done);
//! b.arc_tp(done, p0);
//! let net = b.build();
//!
//! let sym = SymbolicReach::build(&net)?;
//! let rg = ReachabilityGraph::build(&net, 100)?;
//! assert_eq!(sym.state_count(), rg.state_count() as u128);
//! assert!(sym.contains(&net.initial_marking()));
//! # Ok::<(), si_petri::ReachError>(())
//! ```

use crate::budget::{Budget, Interrupt, InterruptReason};
use crate::net::{Marking, PetriNet, TransId};
use crate::reach::ReachError;
use si_boolean::{Bdd, BddRef, Bits, BDD_FALSE, BDD_TRUE};
use si_fault::fail_trigger;
use std::time::Instant;

/// Approximate bytes per live BDD node (node storage plus its share of the
/// unique table and operation caches) — the same order-of-magnitude
/// accounting the explicit explorers use for their arenas.
const BYTES_PER_NODE: usize = 64;

/// The symbolically computed reachable set of a safe net, with the
/// artifacts needed to answer membership, cardinality, enabledness and
/// safeness queries — and to let the signal-level layer (si-stg) run
/// further fixpoints over the same manager.
#[derive(Debug)]
pub struct SymbolicReach {
    bdd: Bdd,
    np: usize,
    nt: usize,
    aux: usize,
    /// The reachable set over current-state variables (partial when
    /// `interrupted` is set).
    reached: BddRef,
    /// The initial marking as a cube over current-state variables.
    initial: BddRef,
    /// Per-transition enabling condition `•t ⊆ m` over current variables.
    enabled: Vec<BddRef>,
    /// Per-transition relation over current+next variables.
    relations: Vec<BddRef>,
    /// Per-transition safeness-violation predicate
    /// `En_t ∧ (m ∩ (t• \ •t) ≠ ∅)`, `BDD_FALSE` when `t` cannot violate.
    violates: Vec<BddRef>,
    /// All current-state variables (the quantification set of one image).
    current_vars: Bits,
    /// The next→current substitution (`2k+1 → 2k`, identity elsewhere).
    rename_down: Vec<u32>,
    /// Place → rail position: the structural variable order (DFS preorder
    /// of the place flow graph; place `p`'s current variable is
    /// `2·pos[p]`).
    pos: Vec<usize>,
    iterations: usize,
    peak_nodes: usize,
    interrupted: Option<Interrupt>,
    /// Build start, so interrupts can report elapsed wall time.
    started: Instant,
}

/// The structural variable-ordering heuristic: DFS preorder of the place
/// flow graph (`p → q` when some transition consumes `p` and produces
/// `q`), started from the initially marked places, then from any place
/// left unvisited. Returns `pos` with `pos[p]` = rail position of place
/// `p`. Declaration order is a hostage to the input syntax (a parsed `.g`
/// file groups implicit places by transition, striping every sequential
/// component across the whole rail); the DFS follows token flow instead,
/// so a component's places land on adjacent levels.
fn flow_order(net: &PetriNet) -> Vec<usize> {
    let fv = net.firing_view();
    let np = fv.place_count();
    let word_bit = |mask: &[u64], p: usize| mask[p / 64] >> (p % 64) & 1 == 1;
    // Place successors via each consuming transition's postset.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); np];
    for t in 0..fv.transition_count() {
        let (pre, post) = (fv.pre(t), fv.post(t));
        for p in (0..np).filter(|&p| word_bit(pre, p)) {
            succ[p].extend((0..np).filter(|&q| word_bit(post, q)));
        }
    }
    let m0 = net.initial_marking();
    let mut pos = vec![usize::MAX; np];
    let mut next = 0;
    let mut stack = Vec::new();
    let roots = (0..np).filter(|&p| m0.get(p)).chain(0..np);
    for root in roots {
        if pos[root] != usize::MAX {
            continue;
        }
        stack.push(root);
        while let Some(p) = stack.pop() {
            if pos[p] != usize::MAX {
                continue;
            }
            pos[p] = next;
            next += 1;
            // Reversed so the first declared successor is visited first.
            stack.extend(succ[p].iter().rev().filter(|&&q| pos[q] == usize::MAX));
        }
    }
    debug_assert_eq!(next, np, "every place gets a position");
    pos
}

impl SymbolicReach {
    /// Computes the full reachable set of `net` with an unbounded budget.
    ///
    /// # Errors
    ///
    /// [`ReachError::NotSafe`] when a reachable firing would duplicate a
    /// token — the same verdict the explicit explorer gives.
    pub fn build(net: &PetriNet) -> Result<SymbolicReach, ReachError> {
        SymbolicReach::build_with(net, &Budget::unbounded())
    }

    /// Computes the reachable set under `budget`'s soft limits (deadline,
    /// cancellation, byte ceiling), checked once per fixpoint iteration.
    /// On exhaustion the partial set is returned `Ok` with
    /// [`SymbolicReach::interrupt`] tagged — the PR 6 inconclusive
    /// verdict, not an error. `budget.cap` is ignored (see the module
    /// docs).
    ///
    /// # Errors
    ///
    /// [`ReachError::NotSafe`] as [`SymbolicReach::build`].
    pub fn build_with(net: &PetriNet, budget: &Budget) -> Result<SymbolicReach, ReachError> {
        SymbolicReach::build_with_aux(net, budget, 0)
    }

    /// Like [`SymbolicReach::build_with`], with `aux` extra variables
    /// appended after the two state rails (levels `2·np ..`). The fixpoint
    /// itself never touches them; they give a downstream layer (si-stg's
    /// signal coding) room to build relations over the same manager.
    ///
    /// # Errors
    ///
    /// [`ReachError::NotSafe`] as [`SymbolicReach::build`].
    pub fn build_with_aux(
        net: &PetriNet,
        budget: &Budget,
        aux: usize,
    ) -> Result<SymbolicReach, ReachError> {
        let _span = si_obs::span("symbolic.build");
        let t0 = Instant::now();
        let fv = net.firing_view();
        let np = fv.place_count();
        let nt = fv.transition_count();
        let width = 2 * np + aux;
        let mut bdd = Bdd::new(width);

        // The structural variable order, and its inverse: `order[k]` is
        // the place on rail position `k`. Every cube/relation below is
        // built walking `order` from the highest position down so each
        // `mk` stays below the running root.
        let pos = flow_order(net);
        let mut order = vec![0usize; np];
        for (p, &k) in pos.iter().enumerate() {
            order[k] = p;
        }

        // The initial marking as a cube over the current rail.
        let m0 = net.initial_marking();
        let mut initial = BDD_TRUE;
        for &p in order.iter().rev() {
            let cur = 2 * pos[p];
            initial = if m0.get(p) {
                bdd.mk_node(cur, BDD_FALSE, initial)
            } else {
                bdd.mk_node(cur, initial, BDD_FALSE)
            };
        }

        // Per-transition artifacts straight from the firing-view masks.
        let mut enabled = Vec::with_capacity(nt);
        let mut relations = Vec::with_capacity(nt);
        let mut violates = Vec::with_capacity(nt);
        let word_bit = |mask: &[u64], p: usize| mask[p / 64] >> (p % 64) & 1 == 1;
        for t in 0..nt {
            let (pre, post, gain) = (fv.pre(t), fv.post(t), fv.gain(t));
            // En_t = ∧_{p ∈ •t} x_p.
            let mut en = BDD_TRUE;
            // T_t, built in one descending pass: each place contributes its
            // band of literals / frame condition on the interleaved rails.
            let mut rel = BDD_TRUE;
            for &p in order.iter().rev() {
                let (cur, nxt) = (2 * pos[p], 2 * pos[p] + 1);
                let (in_pre, in_post) = (word_bit(pre, p), word_bit(post, p));
                if in_pre {
                    en = bdd.mk_node(cur, BDD_FALSE, en);
                }
                rel = match (in_pre, in_post) {
                    // p ∈ •t ∩ t•: consumed and reproduced — x_p ∧ x'_p.
                    (true, true) => {
                        let hi = bdd.mk_node(nxt, BDD_FALSE, rel);
                        bdd.mk_node(cur, BDD_FALSE, hi)
                    }
                    // p ∈ •t \ t•: consumed — x_p ∧ ¬x'_p.
                    (true, false) => {
                        let hi = bdd.mk_node(nxt, rel, BDD_FALSE);
                        bdd.mk_node(cur, BDD_FALSE, hi)
                    }
                    // p ∈ t• \ •t: produced — x'_p (x_p free; the safeness
                    // check below guarantees x_p = 0 on every state the
                    // relation is ever applied to).
                    (false, true) => bdd.mk_node(nxt, BDD_FALSE, rel),
                    // p untouched: frame condition x'_p ↔ x_p.
                    (false, false) => {
                        let lo = bdd.mk_node(nxt, rel, BDD_FALSE);
                        let hi = bdd.mk_node(nxt, BDD_FALSE, rel);
                        bdd.mk_node(cur, lo, hi)
                    }
                };
            }
            // Violation: t enabled with a token already on a gained place.
            let mut gain_any = BDD_FALSE;
            for (p, &k) in pos.iter().enumerate() {
                if word_bit(gain, p) {
                    let lit = bdd.literal(2 * k, true);
                    gain_any = bdd.or(gain_any, lit);
                }
            }
            let viol = bdd.and(en, gain_any);
            enabled.push(en);
            relations.push(rel);
            violates.push(viol);
        }

        let current_vars = Bits::from_ones(width, (0..np).map(|k| 2 * k));
        let mut rename_down: Vec<u32> = (0..width as u32).collect();
        for k in 0..np {
            rename_down[2 * k + 1] = 2 * k as u32;
        }

        let mut sym = SymbolicReach {
            bdd,
            np,
            nt,
            aux,
            reached: initial,
            initial,
            enabled,
            relations,
            violates,
            current_vars,
            rename_down,
            pos,
            iterations: 0,
            peak_nodes: 0,
            interrupted: None,
            started: t0,
        };
        sym.peak_nodes = sym.bdd.node_count();
        sym.fixpoint(budget)?;
        if si_obs::enabled() {
            si_obs::counter_add("symbolic.iterations", sym.iterations as u64);
            si_obs::gauge_max("symbolic.peak_nodes", sym.peak_nodes as i64);
            si_obs::gauge_set("symbolic.live_nodes", sym.bdd.node_count() as i64);
            let (hits, misses) = sym.bdd.cache_stats();
            si_obs::counter_add("bdd.cache_hits", hits);
            si_obs::counter_add("bdd.cache_misses", misses);
        }
        Ok(sym)
    }

    /// The symbolic image iteration: grows `reached` frontier by frontier
    /// until stable, with one amortized governance check per iteration and
    /// the per-iteration safeness sweep (the explicit explorer's NotSafe
    /// verdict, detected before the offending firing is ever imaged).
    fn fixpoint(&mut self, budget: &Budget) -> Result<(), ReachError> {
        let soft = budget.has_soft_limits();
        let mut frontier = self.reached;
        loop {
            if soft {
                if let Some(reason) = budget.check_soft(self.bdd.node_count() * BYTES_PER_NODE) {
                    self.interrupted = Some(self.interrupt_now(reason));
                    return Ok(());
                }
            }
            // Failpoint: simulate the budget bursting at this iteration
            // (`fail_trigger!` compiles to nothing without the
            // `failpoints` feature) — the csc::evaluate-style injection
            // site of the symbolic path.
            if fail_trigger!("symbolic::iterate", self.iterations as u64) {
                self.interrupted = Some(self.interrupt_now(InterruptReason::Cancelled));
                return Ok(());
            }
            // Safeness sweep over the frontier: a state enabling t with a
            // token already on a gained place is the same defect the
            // explicit engine reports, and it must surface *before* the
            // bogus successor (token loss under the mask rule) spreads.
            for t in 0..self.nt {
                if self.violates[t] != BDD_FALSE {
                    let hit = self.bdd.and(frontier, self.violates[t]);
                    if hit != BDD_FALSE {
                        return Err(ReachError::NotSafe {
                            transition: TransId(t as u32),
                        });
                    }
                }
            }
            let mut new = BDD_FALSE;
            for t in 0..self.nt {
                let img = self.image(frontier, t);
                new = self.bdd.or(new, img);
            }
            let fresh = self.bdd.diff(new, self.reached);
            if fresh == BDD_FALSE {
                return Ok(());
            }
            self.reached = self.bdd.or(self.reached, fresh);
            frontier = fresh;
            self.iterations += 1;
            let nodes = self.bdd.node_count();
            // Per-iteration observation rides the same amortization as
            // the governance check above (one relaxed load when off).
            si_obs::histogram_record(
                "symbolic.node_growth",
                nodes.saturating_sub(self.peak_nodes) as u64,
            );
            self.peak_nodes = self.peak_nodes.max(nodes);
        }
    }

    /// The tagged partial verdict at the current point of the fixpoint.
    fn interrupt_now(&self, reason: InterruptReason) -> Interrupt {
        Interrupt {
            reason,
            states_explored: self.state_count().min(usize::MAX as u128) as usize,
            elapsed: self.started.elapsed(),
        }
    }

    /// One-transition image `Img_t(set)` over current-state variables.
    pub fn image(&mut self, set: BddRef, t: usize) -> BddRef {
        let shifted = self
            .bdd
            .and_exists(set, self.relations[t], &self.current_vars);
        self.bdd.rename(shifted, &self.rename_down)
    }

    /// The reflexive-transitive closure of `seed` under the transition
    /// subset `transitions`, within the already-reached set — the
    /// secondary fixpoint the signal-coding layer runs per signal. Honors
    /// the same per-iteration governance as the main build.
    ///
    /// # Errors
    ///
    /// The tagged [`Interrupt`] when a soft budget limit fires mid-closure.
    pub fn closure(
        &mut self,
        seed: BddRef,
        transitions: &[usize],
        budget: &Budget,
    ) -> Result<BddRef, Interrupt> {
        let soft = budget.has_soft_limits();
        let mut acc = seed;
        let mut frontier = seed;
        loop {
            if soft {
                if let Some(reason) = budget.check_soft(self.bdd.node_count() * BYTES_PER_NODE) {
                    return Err(self.interrupt_now(reason));
                }
            }
            let mut new = BDD_FALSE;
            for &t in transitions {
                let img = self.image(frontier, t);
                new = self.bdd.or(new, img);
            }
            let fresh = self.bdd.diff(new, acc);
            if fresh == BDD_FALSE {
                return Ok(acc);
            }
            acc = self.bdd.or(acc, fresh);
            frontier = fresh;
        }
    }

    /// Number of places (current-state variables).
    pub fn place_count(&self) -> usize {
        self.np
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.nt
    }

    /// Number of auxiliary variables appended after the state rails.
    pub fn aux_count(&self) -> usize {
        self.aux
    }

    /// The manager level of place `p`'s current-state variable
    /// (`2·pos(p)` under the structural variable order).
    pub fn current_var(&self, p: usize) -> usize {
        2 * self.pos[p]
    }

    /// The manager level of auxiliary variable `j` (`2·np + j`).
    pub fn aux_var(&self, j: usize) -> usize {
        2 * self.np + j
    }

    /// The reachable-set BDD over current-state variables (an
    /// underapproximation when [`SymbolicReach::interrupt`] is set).
    pub fn reached(&self) -> BddRef {
        self.reached
    }

    /// The initial marking as a cube over current-state variables.
    pub fn initial(&self) -> BddRef {
        self.initial
    }

    /// The enabling condition `•t ⊆ m` of transition `t`.
    pub fn enabled_bdd(&self, t: usize) -> BddRef {
        self.enabled[t]
    }

    /// The set of current-state variables (for quantification by the
    /// signal-coding layer).
    pub fn current_vars(&self) -> &Bits {
        &self.current_vars
    }

    /// Shared access to the underlying manager.
    pub fn bdd(&self) -> &Bdd {
        &self.bdd
    }

    /// Mutable access to the underlying manager (the signal-coding layer
    /// builds its own constraints over the same variable space).
    pub fn bdd_mut(&mut self) -> &mut Bdd {
        &mut self.bdd
    }

    /// Reachable-state cardinality via [`Bdd::sat_count_within`] over the
    /// current-state variables — exact, without enumeration, and immune
    /// to the next/auxiliary rails inflating the count.
    pub fn state_count(&self) -> u128 {
        self.bdd.sat_count_within(self.reached, &self.current_vars)
    }

    /// Whether the fixpoint ran to completion (no budget interruption).
    pub fn is_complete(&self) -> bool {
        self.interrupted.is_none()
    }

    /// The tagged partial verdict, if a soft budget limit stopped the
    /// fixpoint early (`states_explored` is the partial set's cardinality,
    /// saturating at `usize::MAX`).
    pub fn interrupt(&self) -> Option<Interrupt> {
        self.interrupted
    }

    /// Fixpoint iterations run (the state-graph depth when complete).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Peak live node count of the manager across the build.
    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    /// The assignment encoding of `m` over the manager's variable space
    /// (place `p` on its current-state level; next/aux rails zero).
    pub fn assignment_of(&self, m: &Marking) -> Bits {
        Bits::from_ones(
            2 * self.np + self.aux,
            m.iter_ones().map(|p| 2 * self.pos[p]),
        )
    }

    /// Is `m` in the (possibly partial) reached set?
    pub fn contains(&self, m: &Marking) -> bool {
        self.bdd.eval(self.reached, &self.assignment_of(m))
    }

    /// Is transition `t` enabled at `m` (pure mask query, no reachability)?
    pub fn is_enabled_at(&self, t: usize, m: &Marking) -> bool {
        self.bdd.eval(self.enabled[t], &self.assignment_of(m))
    }

    /// Cardinality of the symbolic excitation region of `t`: reachable
    /// states enabling `t` (matches
    /// [`crate::ReachabilityGraph::states_enabling`]`.count_ones()`).
    pub fn er_count(&mut self, t: usize) -> u128 {
        let er = self.bdd.and(self.reached, self.enabled[t]);
        self.bdd.sat_count_within(er, &self.current_vars)
    }
}
