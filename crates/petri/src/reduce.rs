//! Forward reduction `N ⇓ T'` (§V-B of the paper).
//!
//! The forward reduction of a net by a set of transitions removes all nodes
//! that cannot be reached (forward, token-flow-wise) without firing one of
//! the removed transitions. It is the mechanism behind the *sufficient*
//! adjacency condition (Property 5): a path is realizable by a sequence
//! avoiding signal `a` only if it survives the reduction by the offending
//! `a`-transitions.
//!
//! The procedure is quoted verbatim from the paper:
//!
//! > Remove transitions `T'` from `N`; do until a fixed point is reached:
//! > if all transitions of `•p` have been removed then remove `p`; if some
//! > `p ∈ •t` has been removed then remove `t`.

use crate::net::{PetriNet, PlaceId, TransId};
use si_boolean::Bits;

/// The surviving nodes of a forward reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForwardReduction {
    places: Bits,
    transitions: Bits,
}

impl ForwardReduction {
    /// Computes `net ⇓ removed`: the fixpoint removal described above.
    ///
    /// Initially marked places survive even if all their producers are
    /// removed — their token is already present, which is what
    /// "reachable without firing `T'`" means for the path analyses that
    /// consume this reduction.
    pub fn compute(net: &PetriNet, removed: &[TransId]) -> Self {
        let mut t_alive = Bits::ones(net.transition_count());
        for &t in removed {
            t_alive.set(t.index(), false);
        }
        let mut p_alive = Bits::ones(net.place_count());
        let m0 = net.initial_marking();
        loop {
            let mut changed = false;
            for p in net.places() {
                if !p_alive.get(p.index()) || m0.get(p.index()) {
                    continue;
                }
                let has_live_producer = net.pre_p(p).iter().any(|t| t_alive.get(t.index()));
                // Source places (no producers at all) stay: nothing feeds
                // them, but nothing was removed either.
                if !net.pre_p(p).is_empty() && !has_live_producer {
                    p_alive.set(p.index(), false);
                    changed = true;
                }
            }
            for t in net.transitions() {
                if !t_alive.get(t.index()) {
                    continue;
                }
                if net.pre_t(t).iter().any(|p| !p_alive.get(p.index())) {
                    t_alive.set(t.index(), false);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        ForwardReduction {
            places: p_alive,
            transitions: t_alive,
        }
    }

    /// Does the place survive the reduction?
    pub fn place_alive(&self, p: PlaceId) -> bool {
        self.places.get(p.index())
    }

    /// Does the transition survive the reduction?
    pub fn transition_alive(&self, t: TransId) -> bool {
        self.transitions.get(t.index())
    }

    /// Surviving places as a bit set.
    pub fn alive_places(&self) -> &Bits {
        &self.places
    }

    /// Surviving transitions as a bit set.
    pub fn alive_transitions(&self) -> &Bits {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain: p0 -> t0 -> p1 -> t1 -> p2 -> t2 -> p0 (ring of 3).
    fn ring3() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        let t2 = b.add_transition("t2");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p2);
        b.arc_pt(p2, t2);
        b.arc_tp(t2, p0);
        b.build()
    }

    #[test]
    fn removing_nothing_keeps_everything() {
        let net = ring3();
        let r = ForwardReduction::compute(&net, &[]);
        assert!(net.places().all(|p| r.place_alive(p)));
        assert!(net.transitions().all(|t| r.transition_alive(t)));
    }

    #[test]
    fn removal_cascades_downstream() {
        let net = ring3();
        let t0 = net.transition_by_name("t0").unwrap();
        let r = ForwardReduction::compute(&net, &[t0]);
        // p1 loses its only producer, then t1 dies, then p2, then t2.
        assert!(!r.place_alive(net.place_by_name("p1").unwrap()));
        assert!(!r.transition_alive(net.transition_by_name("t1").unwrap()));
        assert!(!r.place_alive(net.place_by_name("p2").unwrap()));
        assert!(!r.transition_alive(net.transition_by_name("t2").unwrap()));
        // the marked place p0 survives (its token is already there)
        assert!(r.place_alive(net.place_by_name("p0").unwrap()));
    }

    #[test]
    fn parallel_branch_survives() {
        // fork into two branches; removing one branch's transition kills
        // only that branch.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let p3 = b.add_place("p3", false);
        let p4 = b.add_place("p4", false);
        let f = b.add_transition("fork");
        let l = b.add_transition("left");
        let r_ = b.add_transition("right");
        b.arc_pt(p0, f);
        b.arc_tp(f, p1);
        b.arc_tp(f, p2);
        b.arc_pt(p1, l);
        b.arc_tp(l, p3);
        b.arc_pt(p2, r_);
        b.arc_tp(r_, p4);
        let net = b.build();
        let red = ForwardReduction::compute(&net, &[l]);
        assert!(!red.place_alive(p3));
        assert!(red.place_alive(p2));
        assert!(red.place_alive(p4));
        assert!(red.transition_alive(r_));
        assert_eq!(red.alive_places().count_ones(), 4);
        assert_eq!(red.alive_transitions().count_ones(), 2);
    }
}
