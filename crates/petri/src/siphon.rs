//! Siphon/trap analysis and structural liveness (Commoner's theorem).
//!
//! The paper assumes live and safe free-choice nets and notes (§II-B,
//! footnote) that "checking for liveness, safeness and redundant places can
//! be done in polynomial time for FC nets". This module provides those
//! checks structurally:
//!
//! * a **siphon** is a place set `S` with `•S ⊆ S•` — once empty it stays
//!   empty; a **trap** is a set with `S• ⊆ •S` — once marked it stays
//!   marked;
//! * **Commoner's theorem**: a free-choice net is live iff every minimal
//!   siphon contains an initially marked trap;
//! * a live free-choice net is **safe** iff every place is covered by a
//!   one-token SM-component (checked through [`crate::sm_cover`]).
//!
//! Minimal-siphon enumeration uses the same propagate-and-branch search as
//! the SM-component finder: membership obligations ("every producer of a
//! member place must also consume from the set") are propagated, choices
//! branch.

use crate::net::{PetriNet, PlaceId};
use si_boolean::Bits;
use std::collections::HashSet;

/// Tests whether a place set is a siphon: every transition producing into
/// the set also consumes from it.
pub fn is_siphon(net: &PetriNet, set: &Bits) -> bool {
    for pi in set.iter_ones() {
        for &t in net.pre_p(PlaceId(pi as u32)) {
            if !net.pre_t(t).iter().any(|q| set.get(q.index())) {
                return false;
            }
        }
    }
    true
}

/// Tests whether a place set is a trap: every transition consuming from the
/// set also produces into it.
pub fn is_trap(net: &PetriNet, set: &Bits) -> bool {
    for pi in set.iter_ones() {
        for &t in net.post_p(PlaceId(pi as u32)) {
            if !net.post_t(t).iter().any(|q| set.get(q.index())) {
                return false;
            }
        }
    }
    true
}

/// The maximal trap contained in `set` (possibly empty): iteratively
/// removes places whose consumers do not feed back into the set.
pub fn maximal_trap_within(net: &PetriNet, set: &Bits) -> Bits {
    let mut trap = set.clone();
    loop {
        let mut changed = false;
        for pi in trap.clone().iter_ones() {
            let p = PlaceId(pi as u32);
            let ok = net
                .post_p(p)
                .iter()
                .all(|&t| net.post_t(t).iter().any(|q| trap.get(q.index())));
            if !ok {
                trap.set(pi, false);
                changed = true;
            }
        }
        if !changed {
            return trap;
        }
    }
}

/// Enumerates minimal siphons (up to `limit`), each containing at least one
/// place — the standard propagate-and-branch construction.
///
/// Minimality here is set-inclusion minimality among the returned family:
/// supersets of already-found siphons are pruned.
pub fn minimal_siphons(net: &PetriNet, limit: usize) -> Vec<Bits> {
    let mut found: Vec<Bits> = Vec::new();
    let mut seen: HashSet<Bits> = HashSet::new();
    for seed in net.places() {
        if found.len() >= limit {
            break;
        }
        // Skip seeds already covered by a found siphon (their minimal
        // siphon may still differ, but for Commoner every place's siphons
        // get checked through the seeds that remain).
        search_siphons(net, seed, limit, &mut found, &mut seen);
    }
    // Keep only inclusion-minimal sets.
    let mut minimal: Vec<Bits> = Vec::new();
    for s in &found {
        if !found.iter().any(|o| o != s && o.is_subset(s)) {
            minimal.push(s.clone());
        }
    }
    minimal.sort();
    minimal.dedup();
    minimal
}

fn search_siphons(
    net: &PetriNet,
    seed: PlaceId,
    limit: usize,
    found: &mut Vec<Bits>,
    seen: &mut HashSet<Bits>,
) {
    #[derive(Clone)]
    struct State {
        inset: Bits,
        forbidden: Bits,
    }
    let np = net.place_count();
    let mut stack = vec![State {
        inset: Bits::from_ones(np, [seed.index()]),
        forbidden: Bits::zeros(np),
    }];
    let mut steps = 200_000usize;
    while let Some(mut st) = stack.pop() {
        if found.len() >= limit || steps == 0 {
            return;
        }
        steps -= 1;
        // Find an unsatisfied obligation: a producer of a member place that
        // does not consume from the set.
        let mut obligation: Option<Vec<PlaceId>> = None;
        'outer: for pi in st.inset.iter_ones() {
            for &t in net.pre_p(PlaceId(pi as u32)) {
                let satisfied = net.pre_t(t).iter().any(|q| st.inset.get(q.index()));
                if !satisfied {
                    let cands: Vec<PlaceId> = net
                        .pre_t(t)
                        .iter()
                        .copied()
                        .filter(|q| !st.forbidden.get(q.index()))
                        .collect();
                    obligation = Some(cands);
                    break 'outer;
                }
            }
        }
        match obligation {
            None => {
                // Closed: st.inset is a siphon.
                if seen.insert(st.inset.clone()) {
                    found.push(st.inset);
                }
            }
            Some(cands) => {
                if cands.is_empty() {
                    continue; // dead branch
                }
                // Branch: include one candidate; forbid it in later branches
                // to enumerate distinct minimal solutions.
                for (i, &q) in cands.iter().enumerate() {
                    let mut next = st.clone();
                    for &earlier in &cands[..i] {
                        next.forbidden.set(earlier.index(), true);
                    }
                    next.inset.set(q.index(), true);
                    stack.push(next);
                }
                // Keep borrow checker happy; st is consumed by branching.
                st.forbidden = Bits::zeros(np);
            }
        }
    }
}

/// Result of the structural liveness/safeness precondition check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StructuralCheck {
    /// All preconditions hold.
    Ok,
    /// A minimal siphon without an initially marked trap — the net is not
    /// live (Commoner).
    UnmarkedSiphon {
        /// The offending siphon.
        siphon: Vec<PlaceId>,
    },
    /// Some place lies in no one-token SM-component — the net is not
    /// guaranteed safe.
    NotSmCovered {
        /// The uncovered place.
        place: PlaceId,
    },
}

/// Structural liveness (Commoner) + safeness (one-token SM-coverability)
/// for free-choice nets.
///
/// Sound and complete for free-choice nets; for other classes the verdict
/// is conservative (a reported problem may be spurious). Intended as the
/// §VIII-C precondition check before synthesis.
pub fn check_live_safe_fc(net: &PetriNet) -> StructuralCheck {
    for siphon in minimal_siphons(net, 512) {
        let trap = maximal_trap_within(net, &siphon);
        let marked = net.initial_marking().iter_ones().any(|i| trap.get(i));
        if !marked {
            return StructuralCheck::UnmarkedSiphon {
                siphon: siphon.iter_ones().map(|i| PlaceId(i as u32)).collect(),
            };
        }
    }
    match crate::sm::sm_cover(net) {
        Ok(_) => StructuralCheck::Ok,
        Err(crate::sm::SmCoverError::Uncoverable { place }) => {
            StructuralCheck::NotSmCovered { place }
        }
        Err(crate::sm::SmCoverError::BudgetExhausted) => StructuralCheck::Ok, // inconclusive: accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachabilityGraph;

    fn ring3() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        let t2 = b.add_transition("t2");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p2);
        b.arc_pt(p2, t2);
        b.arc_tp(t2, p0);
        b.build()
    }

    #[test]
    fn ring_is_its_own_minimal_siphon_and_trap() {
        let net = ring3();
        let all = Bits::ones(3);
        assert!(is_siphon(&net, &all));
        assert!(is_trap(&net, &all));
        let siphons = minimal_siphons(&net, 64);
        assert_eq!(siphons.len(), 1);
        assert_eq!(siphons[0].count_ones(), 3);
        assert_eq!(check_live_safe_fc(&net), StructuralCheck::Ok);
    }

    #[test]
    fn empty_siphon_scenario_detected() {
        // Classic non-live FC net: a siphon that can be emptied.
        // p0 -> t0 consumes {p0, p1}; nothing refills p1 once used by t1.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", true);
        let p2 = b.add_place("p2", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_pt(p1, t0);
        b.arc_tp(t0, p2);
        b.arc_pt(p2, t1);
        b.arc_tp(t1, p0);
        // p1 is consumed but never produced: {p1} is a siphon with an
        // empty maximal trap.
        let net = b.build();
        match check_live_safe_fc(&net) {
            StructuralCheck::UnmarkedSiphon { siphon } => {
                assert!(siphon.contains(&p1));
            }
            other => panic!("expected unmarked siphon, got {other:?}"),
        }
        // Behavioural confirmation: the net deadlocks after two firings.
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        assert!(!rg.is_live(&net));
    }

    #[test]
    fn fork_join_live_and_safe() {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let f = b.add_transition("fork");
        let j = b.add_transition("join");
        b.arc_pt(p0, f);
        b.arc_tp(f, p1);
        b.arc_tp(f, p2);
        b.arc_pt(p1, j);
        b.arc_pt(p2, j);
        b.arc_tp(j, p0);
        let net = b.build();
        assert_eq!(check_live_safe_fc(&net), StructuralCheck::Ok);
    }

    #[test]
    fn maximal_trap_shrinks_correctly() {
        let net = ring3();
        // {p0, p1} is not a trap (t1 consumes p1 into p2 outside the set);
        // its maximal contained trap is empty.
        let set = Bits::from_ones(3, [0, 1]);
        assert!(!is_trap(&net, &set));
        let trap = maximal_trap_within(&net, &set);
        assert!(trap.is_zero());
    }

    #[test]
    fn commoner_matches_behaviour_on_stg_suite_shapes() {
        // A free-choice selector: live and safe.
        let mut b = PetriNet::builder();
        let p0 = b.add_place("idle", true);
        let p1 = b.add_place("m1", false);
        let p2 = b.add_place("m2", false);
        let t1 = b.add_transition("go1");
        let t2 = b.add_transition("go2");
        let r1 = b.add_transition("ret1");
        let r2 = b.add_transition("ret2");
        b.arc_pt(p0, t1);
        b.arc_tp(t1, p1);
        b.arc_pt(p1, r1);
        b.arc_tp(r1, p0);
        b.arc_pt(p0, t2);
        b.arc_tp(t2, p2);
        b.arc_pt(p2, r2);
        b.arc_tp(r2, p0);
        let net = b.build();
        assert_eq!(check_live_safe_fc(&net), StructuralCheck::Ok);
    }
}
