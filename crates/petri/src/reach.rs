//! Explicit reachability-graph construction and behavioural oracles.
//!
//! This is the *state-based* substrate that the paper's structural methods
//! avoid — and that the baselines (SIS/ASSASSIN-style flows) and all
//! ground-truth tests require. The builder enumerates reachable markings
//! breadth-first up to a configurable cap, so callers can detect "state
//! explosion" instead of hanging.
//!
//! The engine is word-parallel end to end: markings are interned through an
//! open-addressing table over a flat `u64` arena (no marking clones, no
//! per-firing allocation — the firing rule is the mask-based
//! `(m \ •t) ∪ t•` on machine words, with a scalar fast path for nets of
//! at most 64 places), adjacency is stored as flat CSR arrays, and the
//! per-transition excitation regions are indexed once at build time.
//! [`ReachabilityGraph::build_naive`] keeps the original
//! `HashMap<Marking, StateId>` + `Vec<Vec<…>>` implementation as the
//! equivalence oracle and the "before" side of the benchmark.

use crate::budget::{Budget, CancelToken, InterruptReason};
use crate::net::{Marking, PetriNet, TransId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Tuning knobs of a reachability exploration.
///
/// `budget` governs the resources the build may consume: the state cap
/// maps to [`ReachError::StateCapExceeded`], the soft dimensions
/// (deadline, cancellation, byte ceiling) to [`ReachError::Interrupted`]
/// — a reachability *graph* is an all-or-nothing artifact, so budget
/// exhaustion is an error here even though the underlying explorers
/// return partial results (verdict-style clients consume those).
/// `shards` selects the engine: `1` runs the sequential word-parallel
/// builder, anything larger runs the sharded multi-threaded builder of
/// [`crate::shard`] with that many workers. Worker counts are powers of
/// two ≤ 64: the [`Self::shards`] setter and [`Self::auto`] normalize,
/// and [`ReachabilityGraph::build_sharded`] rounds a raw field value up
/// itself. All engines produce the *same* graph (state numbering
/// included); see [`ReachabilityGraph::build_sharded`].
///
/// # Examples
///
/// ```
/// use si_petri::ReachOptions;
///
/// let seq = ReachOptions::with_cap(10_000);
/// assert_eq!(seq.shards, 1);
/// assert_eq!(seq.cap(), 10_000);
/// let par = ReachOptions::with_cap(10_000).shards(4);
/// assert_eq!(par.shards, 4);
/// assert!(ReachOptions::auto(10_000).shards >= 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReachOptions {
    /// Resource budget of the exploration (state cap, byte ceiling,
    /// deadline, cancellation).
    pub budget: Budget,
    /// Number of exploration shards (= worker threads when > 1).
    pub shards: usize,
}

impl ReachOptions {
    /// Sequential exploration with the given state cap.
    pub fn with_cap(cap: usize) -> Self {
        ReachOptions {
            budget: Budget::with_cap(cap),
            shards: 1,
        }
    }

    /// The state cap (shorthand for `self.budget.cap`).
    pub fn cap(&self) -> usize {
        self.budget.cap
    }

    /// Replaces the whole resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets an absolute wall-clock deadline on the exploration.
    pub fn deadline(mut self, at: Instant) -> Self {
        self.budget.deadline = Some(at);
        self
    }

    /// Sets the deadline `d` from now.
    pub fn timeout(self, d: Duration) -> Self {
        self.deadline(Instant::now() + d)
    }

    /// Attaches a cooperative cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.budget.cancel = Some(token);
        self
    }

    /// Sets the shard count, normalized to what the engine actually runs:
    /// values < 1 become 1, everything else is rounded up to a power of
    /// two and capped at 64.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1).next_power_of_two().min(64);
        self
    }

    /// Picks the shard count from the machine's available parallelism:
    /// sequential on a single-core box, otherwise the hardware-thread
    /// count rounded **down** to a power of two (capped at 64) — idle
    /// shard workers busy-wait, so oversubscribing the machine would slow
    /// the workers doing real exploration. The stored `shards` value is
    /// already normalized, so it equals the worker count the sharded
    /// engine will actually run.
    pub fn auto(cap: usize) -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let down = if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        };
        ReachOptions {
            budget: Budget::with_cap(cap),
            shards: down.min(64),
        }
    }
}

/// Index of a marking inside a [`ReachabilityGraph`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Outcome of a bounded reachability exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReachError {
    /// The exploration hit the marking cap before exhausting the state space.
    StateCapExceeded {
        /// The cap that was configured.
        cap: usize,
    },
    /// A soft budget dimension (deadline, cancellation, byte ceiling) ran
    /// out before the state space was exhausted. Not a property of the
    /// net — the analysis is *inconclusive*, and `states_explored` says
    /// how far it got.
    Interrupted {
        /// Which budget dimension ran out.
        reason: InterruptReason,
        /// States explored before the interruption.
        states_explored: usize,
        /// Wall milliseconds the exploration ran before the interruption.
        elapsed_ms: u64,
    },
    /// A transition firing produced a non-safe marking (a token added to an
    /// already-marked place).
    NotSafe {
        /// The transition whose firing violated safeness.
        transition: TransId,
    },
    /// A worker thread of the sharded engine panicked; the panic was
    /// caught at the worker boundary and the process is intact.
    WorkerPanicked {
        /// Index of the shard whose worker panicked.
        shard: usize,
        /// The panic message.
        message: String,
    },
}

impl ReachError {
    /// Whether this error means "analysis ran out of budget" (cap, time,
    /// memory, cancellation) rather than "the net is defective" — the
    /// failed-vs-inconclusive distinction surfaced by `sisyn` exit codes.
    pub fn is_inconclusive(&self) -> bool {
        matches!(
            self,
            ReachError::StateCapExceeded { .. } | ReachError::Interrupted { .. }
        )
    }
}

impl std::fmt::Display for ReachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReachError::StateCapExceeded { cap } => {
                write!(f, "state space exceeds the cap of {cap} markings")
            }
            ReachError::Interrupted {
                reason,
                states_explored,
                elapsed_ms,
            } => {
                write!(
                    f,
                    "exploration {reason} after {states_explored} states / {elapsed_ms} ms \
                     (inconclusive)"
                )
            }
            ReachError::NotSafe { transition } => {
                write!(f, "net is not safe: firing {transition} duplicates a token")
            }
            ReachError::WorkerPanicked { shard, message } => {
                write!(f, "exploration worker {shard} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ReachError {}

/// Open-addressing interner mapping markings to dense [`StateId`]s.
///
/// Keys live in one flat `u64` arena (`nwords` words per marking), so a
/// probe compares contiguous words — no per-marking heap pointer to chase,
/// no clones, no `Hasher` machinery. The table stores `u32` state indices
/// probed by a multiplicative hash of the words.
///
/// Crate-visible: the sharded engine ([`crate::shard`]) gives each worker
/// thread one private interner, so the ids it hands out are *shard-local*
/// there and only become global after the seal phase.
#[derive(Clone, Debug)]
pub(crate) struct MarkingInterner {
    /// Flat key storage: marking `s` is `words[s*nwords .. (s+1)*nwords]`.
    pub(crate) words: Vec<u64>,
    /// Words per marking.
    nwords: usize,
    /// Slot -> `(hash tag << 32) | state index`, `u64::MAX` = empty.
    /// Power-of-two length, kept at most half full; the tag filters out
    /// almost every colliding probe before the key words are touched.
    slots: Vec<u64>,
    mask: usize,
    len: usize,
}

const EMPTY_SLOT: u64 = u64::MAX;
const TAG_MASK: u64 = 0xffff_ffff_0000_0000;

use si_boolean::hash_word_slice as hash_key;

impl MarkingInterner {
    pub(crate) fn new(nwords: usize) -> Self {
        MarkingInterner {
            words: Vec::new(),
            nwords,
            slots: vec![EMPTY_SLOT; 64],
            mask: 63,
            len: 0,
        }
    }

    pub(crate) fn key(&self, s: usize) -> &[u64] {
        &self.words[s * self.nwords..(s + 1) * self.nwords]
    }

    /// Number of interned markings.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Approximate heap bytes held (key arena + slot table) — feeds the
    /// explorers' byte-budget accounting.
    pub(crate) fn approx_bytes(&self) -> usize {
        (self.words.len() + self.slots.len()) * 8
    }

    /// Looks up `key`; on a miss interns it as state `len` and returns
    /// `(id, true)`. One probe sequence for both outcomes.
    pub(crate) fn intern(&mut self, key: &[u64]) -> (StateId, bool) {
        debug_assert_eq!(key.len(), self.nwords);
        let h = hash_key(key);
        let tag = h & TAG_MASK;
        let mut i = (h as usize) & self.mask;
        loop {
            let e = self.slots[i];
            if e == EMPTY_SLOT {
                let id = self.len as u32;
                self.slots[i] = tag | id as u64;
                self.words.extend_from_slice(key);
                self.len += 1;
                if self.len * 2 >= self.slots.len() {
                    self.grow();
                }
                return (StateId(id), true);
            }
            if e & TAG_MASK == tag {
                let s = e as u32;
                if self.key(s as usize) == key {
                    return (StateId(s), false);
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Lookup without insertion, comparing candidate keys against the
    /// caller's markings (the internal key arena is freed after the build
    /// by [`Self::seal`] — see there).
    fn get(&self, key: &[u64], markings: &[Marking]) -> Option<StateId> {
        if key.len() != self.nwords {
            return None;
        }
        let h = hash_key(key);
        let tag = h & TAG_MASK;
        let mut i = (h as usize) & self.mask;
        loop {
            let e = self.slots[i];
            if e == EMPTY_SLOT {
                return None;
            }
            if e & TAG_MASK == tag {
                let s = e as u32;
                if markings[s as usize].as_words() == key {
                    return Some(StateId(s));
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Frees the flat key arena. The arena exists so the *build* hot loop
    /// compares contiguous words without chasing per-marking heap pointers;
    /// once the graph is finished every key is also held by the graph's
    /// `markings` vector, so keeping both would double the dominant memory
    /// of a large graph for no benefit. After sealing, only [`Self::get`]
    /// (which compares via `markings`) may be used — not [`Self::intern`].
    fn seal(&mut self) {
        self.words = Vec::new();
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        self.mask = new_len - 1;
        self.slots.clear();
        self.slots.resize(new_len, EMPTY_SLOT);
        for s in 0..self.len {
            let h = hash_key(self.key(s));
            let mut i = (h as usize) & self.mask;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = (h & TAG_MASK) | s as u64;
        }
    }
}

/// Process-wide construction counter feeding
/// [`ReachabilityGraph::build_count`] (all engines funnel through
/// [`ReachabilityGraph::index_edges`]).
static BUILD_COUNT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The explicit reachability graph of a safe net.
///
/// # Examples
///
/// ```
/// use si_petri::{PetriNet, ReachabilityGraph};
///
/// let mut b = PetriNet::builder();
/// let p0 = b.add_place("p0", true);
/// let p1 = b.add_place("p1", false);
/// let t0 = b.add_transition("t0");
/// let t1 = b.add_transition("t1");
/// b.arc_pt(p0, t0); b.arc_tp(t0, p1);
/// b.arc_pt(p1, t1); b.arc_tp(t1, p0);
/// let net = b.build();
/// let rg = ReachabilityGraph::build(&net, 1_000)?;
/// assert_eq!(rg.state_count(), 2);
/// # Ok::<(), si_petri::ReachError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    interner: MarkingInterner,
    /// Per-state `(start, end)` range into `succ_edges` — filled during
    /// exploration, so no src-sort pass is needed.
    succ_ranges: Vec<(u32, u32)>,
    /// Outgoing edges `(t, successor)`; state `s` owns `succ_ranges[s]`.
    succ_edges: Vec<(TransId, StateId)>,
    /// CSR row offsets into `pred_edges`, length `state_count() + 1`.
    pred_off: Vec<u32>,
    /// Incoming edges `(t, predecessor)`, grouped by destination state.
    pred_edges: Vec<(TransId, StateId)>,
    /// CSR row offsets into `er_states`, length `transition_count + 1`.
    er_off: Vec<u32>,
    /// States enabling each transition (its excitation region), ascending.
    er_states: Vec<StateId>,
}

impl ReachabilityGraph {
    /// Explores the state space of `net` with the word-parallel engine:
    /// mask-based enable/safeness tests, allocation-free firing and interned
    /// markings.
    ///
    /// # Errors
    ///
    /// [`ReachError::StateCapExceeded`] if more than `cap` markings are
    /// reachable; [`ReachError::NotSafe`] if a firing puts a second token on
    /// a place.
    pub fn build(net: &PetriNet, cap: usize) -> Result<Self, ReachError> {
        Self::build_with(net, ReachOptions::with_cap(cap))
    }

    /// Maps a partial exploration's interruption tag onto the
    /// corresponding [`ReachError`] — a graph is an all-or-nothing
    /// artifact, so any interruption fails the build (carrying how far
    /// the exploration got).
    fn check_interrupt(expl: &crate::space::Exploration<ReachError>) -> Result<(), ReachError> {
        match expl.interrupted {
            None => Ok(()),
            Some(InterruptReason::CapExceeded) => {
                Err(ReachError::StateCapExceeded { cap: expl.states })
            }
            Some(reason) => Err(ReachError::Interrupted {
                reason,
                states_explored: expl.states,
                elapsed_ms: expl.elapsed.as_millis() as u64,
            }),
        }
    }

    /// Packs a marking-space [`crate::space::Exploration`] (sequential
    /// engine, edge recording on) into the CSR/interned representation.
    fn from_exploration(
        net: &PetriNet,
        expl: crate::space::Exploration<ReachError>,
    ) -> Result<Self, ReachError> {
        Self::check_interrupt(&expl)?;
        let np = net.place_count();
        let (interner, succ_edges, succ_ranges) = expl.into_interned_parts();
        let markings: Vec<Marking> = (0..interner.len())
            .map(|s| Marking::from_words(np, interner.key(s).to_vec()))
            .collect();
        let succ_edges = succ_edges
            .into_iter()
            .map(|(t, d)| (TransId(t), StateId(d)))
            .collect();
        Ok(Self::index_edges(
            net.transition_count(),
            markings,
            interner,
            succ_edges,
            succ_ranges,
        ))
    }

    /// Explores the state space with the engine selected by `options`:
    /// sequential ([`Self::build`]) for `shards == 1`, the sharded
    /// multi-threaded engine ([`Self::build_sharded`]) otherwise.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::build`], plus [`ReachError::Interrupted`]
    /// when a soft budget dimension (deadline, cancellation, byte
    /// ceiling) runs out and [`ReachError::WorkerPanicked`] when a
    /// sharded worker dies (caught; the process is intact).
    pub fn build_with(net: &PetriNet, options: ReachOptions) -> Result<Self, ReachError> {
        use crate::space::{explore, ExploreOptions, MarkingSpace, ScalarMarkingSpace};
        let _span = si_obs::span("reach.build");
        si_obs::counter_inc("reach.builds");
        let opts = ExploreOptions::from(&options).record_edges();
        if options.shards <= 1 {
            let nw = net.initial_marking().as_words().len();
            let expl = if nw == 1 {
                explore(&ScalarMarkingSpace::new(net), opts)
            } else {
                explore(&MarkingSpace::new(net), opts)
            };
            Self::from_exploration(net, expl.map_err(Self::unwrap_explore_error)?)
        } else {
            let space = MarkingSpace::new(net);
            let expl =
                crate::shard::explore_sharded(&space, opts).map_err(Self::unwrap_explore_error)?;
            Self::check_interrupt(&expl)?;
            Ok(crate::shard::seal(net, &expl))
        }
    }

    /// Flattens the generic explorer error into [`ReachError`] (whose
    /// fatal-violation payload *is* a `ReachError`).
    fn unwrap_explore_error(e: crate::space::ExploreError<ReachError>) -> ReachError {
        match e {
            crate::space::ExploreError::Fatal(e) => e,
            crate::space::ExploreError::WorkerPanicked { shard, message } => {
                ReachError::WorkerPanicked { shard, message }
            }
        }
    }

    /// Explores the state space in parallel across `shards` worker threads,
    /// each owning one hash-partition of the marking interner (see
    /// [`crate::shard`] for the pipeline).
    ///
    /// The result is **bit-identical** to [`Self::build`] — same state
    /// numbering, same adjacency — because the parallel phase is followed by
    /// a canonical renumbering replaying the sequential exploration order
    /// over the already-discovered graph. Callers can therefore switch
    /// engines freely; property tests pin the equivalence on the full
    /// random-net corpus.
    ///
    /// `shards` is clamped to `[1, 64]` and rounded up to a power of two;
    /// `shards <= 1` falls back to the sequential engine.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::build`], with one caveat: the *first*
    /// failure a racing worker hits wins. On a net with several safeness
    /// violations, *which* transition a [`ReachError::NotSafe`] reports is
    /// scheduling-dependent; on a net that is both unsafe **and** larger
    /// than `cap`, even the error kind (`NotSafe` vs `StateCapExceeded`)
    /// may differ from run to run and from the sequential engine. On safe
    /// nets the cap error is deterministic and identical to
    /// [`Self::build`]'s.
    pub fn build_sharded(net: &PetriNet, cap: usize, shards: usize) -> Result<Self, ReachError> {
        Self::build_with(net, ReachOptions::with_cap(cap).shards(shards))
    }

    /// Process-wide number of reachability-graph constructions completed so
    /// far (every engine: sequential, sharded and naive).
    ///
    /// This is the **build-count hook** behind the `Engine` artifact-cache
    /// guarantee: tests snapshot it, run a synth-then-verify pipeline, and
    /// assert the graph was constructed exactly once. Monotonic, never
    /// reset; callers compare deltas, not absolute values.
    pub fn build_count() -> usize {
        BUILD_COUNT.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Builds the predecessor CSR and the excitation-region index from the
    /// successor adjacency in one fused pass over the edges.
    pub(crate) fn index_edges(
        nt: usize,
        markings: Vec<Marking>,
        mut interner: MarkingInterner,
        succ_edges: Vec<(TransId, StateId)>,
        succ_ranges: Vec<(u32, u32)>,
    ) -> Self {
        BUILD_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        interner.seal();
        let n = markings.len();
        let mut pred_off = vec![0u32; n + 1];
        let mut er_off = vec![0u32; nt + 1];
        for &(t, d) in &succ_edges {
            pred_off[d.index() + 1] += 1;
            er_off[t.index() + 1] += 1;
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        for i in 0..nt {
            er_off[i + 1] += er_off[i];
        }
        // Scatter scanning sources ascending, so each predecessor list is
        // ordered by source state and each excitation region is ascending.
        let mut pred_cursor = pred_off.clone();
        let mut er_cursor = er_off.clone();
        let mut pred_edges = vec![(TransId(0), StateId(0)); succ_edges.len()];
        let mut er_states = vec![StateId(0); succ_edges.len()];
        for (s, &(start, end)) in succ_ranges.iter().enumerate() {
            for &(t, d) in &succ_edges[start as usize..end as usize] {
                let c = &mut pred_cursor[d.index()];
                pred_edges[*c as usize] = (t, StateId(s as u32));
                *c += 1;
                let c = &mut er_cursor[t.index()];
                er_states[*c as usize] = StateId(s as u32);
                *c += 1;
            }
        }
        ReachabilityGraph {
            markings,
            interner,
            succ_ranges,
            succ_edges,
            pred_off,
            pred_edges,
            er_off,
            er_states,
        }
    }

    /// The original textbook implementation: `HashMap<Marking, StateId>`
    /// interning with per-place enable/fire loops. Kept verbatim as the
    /// equivalence oracle for property tests and as the "before" side of
    /// `BENCH_substrates.json`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::build`].
    pub fn build_naive(net: &PetriNet, cap: usize) -> Result<Self, ReachError> {
        let m0 = net.initial_marking();
        let mut markings = vec![m0.clone()];
        let mut index = HashMap::new();
        index.insert(m0, StateId(0));
        let mut succs: Vec<Vec<(TransId, StateId)>> = vec![Vec::new()];
        let mut frontier = vec![StateId(0)];
        while let Some(s) = frontier.pop() {
            let m = markings[s.index()].clone();
            for t in net.transitions() {
                if !net.is_enabled_naive(&m, t) {
                    continue;
                }
                // Safeness: a postset place outside the preset must be empty.
                for p in net.post_t(t) {
                    if m.get(p.index()) && !net.pre_t(t).contains(p) {
                        return Err(ReachError::NotSafe { transition: t });
                    }
                }
                let m2 = net.fire_naive(&m, t);
                let id = match index.get(&m2) {
                    Some(&id) => id,
                    None => {
                        let id = StateId(markings.len() as u32);
                        if markings.len() >= cap {
                            return Err(ReachError::StateCapExceeded { cap });
                        }
                        markings.push(m2.clone());
                        index.insert(m2, id);
                        succs.push(Vec::new());
                        frontier.push(id);
                        id
                    }
                };
                succs[s.index()].push((t, id));
            }
        }
        Ok(Self::from_adjacency(
            net.transition_count(),
            markings,
            &succs,
        ))
    }

    /// Packs naive adjacency lists into the CSR/interned representation.
    pub(crate) fn from_adjacency(
        nt: usize,
        markings: Vec<Marking>,
        succs: &[Vec<(TransId, StateId)>],
    ) -> Self {
        let mut interner = MarkingInterner::new(markings[0].as_words().len());
        for m in &markings {
            interner.intern(m.as_words());
        }
        let mut succ_edges: Vec<(TransId, StateId)> = Vec::new();
        let mut succ_ranges: Vec<(u32, u32)> = Vec::with_capacity(succs.len());
        for out in succs {
            let start = succ_edges.len() as u32;
            succ_edges.extend_from_slice(out);
            succ_ranges.push((start, succ_edges.len() as u32));
        }
        Self::index_edges(nt, markings, interner, succ_edges, succ_ranges)
    }

    /// Number of reachable markings.
    pub fn state_count(&self) -> usize {
        self.markings.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ_edges.len()
    }

    /// The marking of a state.
    pub fn marking(&self, s: StateId) -> &Marking {
        &self.markings[s.index()]
    }

    /// Looks up the state of a marking.
    pub fn state_of(&self, m: &Marking) -> Option<StateId> {
        if self.markings.is_empty() || m.len() != self.markings[0].len() {
            return None;
        }
        self.interner.get(m.as_words(), &self.markings)
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.state_count() as u32).map(StateId)
    }

    /// Outgoing edges of a state.
    pub fn successors(&self, s: StateId) -> &[(TransId, StateId)] {
        let (start, end) = self.succ_ranges[s.index()];
        &self.succ_edges[start as usize..end as usize]
    }

    /// Incoming edges of a state.
    pub fn predecessors(&self, s: StateId) -> &[(TransId, StateId)] {
        &self.pred_edges[self.pred_off[s.index()] as usize..self.pred_off[s.index() + 1] as usize]
    }

    /// States at which `t` is enabled (the excitation region of `t` in
    /// Petri-net terms), ascending. Precomputed — O(1), no edge rescans.
    pub fn states_enabling(&self, t: TransId) -> &[StateId] {
        &self.er_states[self.er_off[t.index()] as usize..self.er_off[t.index() + 1] as usize]
    }

    /// Behavioural liveness: every transition can fire again from every
    /// reachable marking.
    ///
    /// For the strongly-connected systems used in SI synthesis this reduces
    /// to: the RG is strongly connected and every transition labels at least
    /// one edge. The general check (per-marking re-enableability) is also
    /// what this implements, via one backward closure per transition seeded
    /// from the excitation-region index and tracked in a word-parallel
    /// visited set.
    pub fn is_live(&self, net: &PetriNet) -> bool {
        let n = self.state_count();
        let mut stack: Vec<StateId> = Vec::new();
        for t in net.transitions() {
            let seed = self.states_enabling(t);
            if seed.len() == n {
                continue; // enabled everywhere — trivially live
            }
            let mut can = si_boolean::Bits::zeros(n);
            stack.clear();
            for &s in seed {
                can.set(s.index(), true);
                stack.push(s);
            }
            let mut reached = seed.len();
            while let Some(s) = stack.pop() {
                for &(_, p) in self.predecessors(s) {
                    if !can.get(p.index()) {
                        can.set(p.index(), true);
                        reached += 1;
                        stack.push(p);
                    }
                }
            }
            if reached != n {
                return false;
            }
        }
        true
    }

    /// Returns `true` if the RG is strongly connected (common for live+safe
    /// cyclic specifications; cheap necessary check used by tests).
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.state_count();
        if n == 0 {
            return true;
        }
        let reach_all = |backward: bool| {
            let mut seen = vec![false; n];
            let mut stack = vec![StateId(0)];
            seen[0] = true;
            let mut count = 1;
            while let Some(s) = stack.pop() {
                let edges = if backward {
                    self.predecessors(s)
                } else {
                    self.successors(s)
                };
                for &(_, d) in edges {
                    if !seen[d.index()] {
                        seen[d.index()] = true;
                        count += 1;
                        stack.push(d);
                    }
                }
            }
            count == n
        };
        reach_all(false) && reach_all(true)
    }

    /// Behavioural concurrency of two transitions: some reachable marking
    /// enables both and firing either keeps the other enabled.
    pub fn transitions_concurrent(&self, net: &PetriNet, a: TransId, b: TransId) -> bool {
        if a == b {
            return false;
        }
        let mut scratch = match self.markings.first() {
            Some(m) => m.clone(),
            None => return false,
        };
        // Scan the smaller excitation region only.
        let (x, y) = if self.states_enabling(a).len() <= self.states_enabling(b).len() {
            (a, b)
        } else {
            (b, a)
        };
        self.states_enabling(x).iter().any(|&s| {
            let m = &self.markings[s.index()];
            if !net.is_enabled(m, y) {
                return false;
            }
            net.fire_into(m, x, &mut scratch);
            if !net.is_enabled(&scratch, y) {
                return false;
            }
            net.fire_into(m, y, &mut scratch);
            net.is_enabled(&scratch, x)
        })
    }

    /// Behavioural concurrency of two places: some reachable marking marks
    /// both.
    pub fn places_concurrent(&self, p: crate::net::PlaceId, q: crate::net::PlaceId) -> bool {
        if p == q {
            return false;
        }
        self.markings
            .iter()
            .any(|m| m.get(p.index()) && m.get(q.index()))
    }

    /// Behavioural concurrency of a place and a transition: some reachable
    /// marking enables `t`, marks `p`, and `p` stays marked after firing `t`.
    pub fn place_transition_concurrent(
        &self,
        net: &PetriNet,
        p: crate::net::PlaceId,
        t: TransId,
    ) -> bool {
        let mut scratch = match self.markings.first() {
            Some(m) => m.clone(),
            None => return false,
        };
        self.states_enabling(t).iter().any(|&s| {
            let m = &self.markings[s.index()];
            if !m.get(p.index()) {
                return false;
            }
            net.fire_into(m, t, &mut scratch);
            scratch.get(p.index())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{PetriNet, PlaceId};

    /// Fork-join: t0 forks into p1 ∥ p2, t3 joins back to p0.
    fn fork_join() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let p3 = b.add_place("p3", false);
        let p4 = b.add_place("p4", false);
        let t0 = b.add_transition("fork");
        let t1 = b.add_transition("left");
        let t2 = b.add_transition("right");
        let t3 = b.add_transition("join");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_tp(t0, p2);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p3);
        b.arc_pt(p2, t2);
        b.arc_tp(t2, p4);
        b.arc_pt(p3, t3);
        b.arc_pt(p4, t3);
        b.arc_tp(t3, p0);
        b.build()
    }

    #[test]
    fn explores_fork_join() {
        let net = fork_join();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        // markings: p0; p1p2; p3p2; p1p4; p3p4 => 5
        assert_eq!(rg.state_count(), 5);
        assert!(rg.is_strongly_connected());
        assert!(rg.is_live(&net));
    }

    #[test]
    fn interned_build_matches_naive_exactly() {
        let net = fork_join();
        let a = ReachabilityGraph::build(&net, 100).unwrap();
        let b = ReachabilityGraph::build_naive(&net, 100).unwrap();
        assert_eq!(a.state_count(), b.state_count());
        for s in a.states() {
            assert_eq!(a.marking(s), b.marking(s), "marking of {s:?}");
            assert_eq!(a.successors(s), b.successors(s), "succs of {s:?}");
            assert_eq!(a.predecessors(s), b.predecessors(s), "preds of {s:?}");
        }
        for t in net.transitions() {
            assert_eq!(a.states_enabling(t), b.states_enabling(t));
        }
        assert_eq!(a.is_live(&net), b.is_live(&net));
    }

    #[test]
    fn behavioural_concurrency() {
        let net = fork_join();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        let left = net.transition_by_name("left").unwrap();
        let right = net.transition_by_name("right").unwrap();
        let fork = net.transition_by_name("fork").unwrap();
        assert!(rg.transitions_concurrent(&net, left, right));
        assert!(!rg.transitions_concurrent(&net, fork, left));
        assert!(rg.places_concurrent(PlaceId(1), PlaceId(2)));
        assert!(!rg.places_concurrent(PlaceId(0), PlaceId(1)));
        // p2 stays marked while t1 (left) fires
        assert!(rg.place_transition_concurrent(&net, PlaceId(2), left));
        // p1 is consumed by left
        assert!(!rg.place_transition_concurrent(&net, PlaceId(1), left));
    }

    #[test]
    fn cap_is_enforced() {
        let net = fork_join();
        let err = ReachabilityGraph::build(&net, 2).unwrap_err();
        assert_eq!(err, ReachError::StateCapExceeded { cap: 2 });
        let err = ReachabilityGraph::build_naive(&net, 2).unwrap_err();
        assert_eq!(err, ReachError::StateCapExceeded { cap: 2 });
    }

    #[test]
    fn unsafe_net_detected() {
        // t0 puts a token on p1 twice (two firings without consumption).
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", true);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p2, t1);
        b.arc_tp(t1, p1); // second producer while p1 may be marked
        b.arc_tp(t1, p0); // keep things going
        let net = b.build();
        let r = ReachabilityGraph::build(&net, 100);
        assert!(matches!(r, Err(ReachError::NotSafe { .. })));
        let r = ReachabilityGraph::build_naive(&net, 100);
        assert!(matches!(r, Err(ReachError::NotSafe { .. })));
    }

    #[test]
    fn dead_transition_not_live() {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let pd = b.add_place("dead_in", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        let td = b.add_transition("dead");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        b.arc_pt(pd, td);
        b.arc_tp(td, pd);
        let net = b.build();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        assert!(!rg.is_live(&net));
    }

    #[test]
    fn state_lookup() {
        let net = fork_join();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        let m0 = net.initial_marking();
        assert_eq!(rg.state_of(&m0), Some(StateId(0)));
        assert_eq!(rg.marking(StateId(0)), &m0);
        let ers = rg.states_enabling(net.transition_by_name("fork").unwrap());
        assert_eq!(ers, &[StateId(0)]);
        // Unreachable marking of the right width -> None; wrong width -> None.
        let unreachable = crate::net::Marking::from_ones(5, [1]);
        assert_eq!(rg.state_of(&unreachable), None);
        assert_eq!(rg.state_of(&crate::net::Marking::zeros(3)), None);
    }

    #[test]
    fn interner_survives_growth() {
        // A chain net with > 64 states forces table growth.
        let n = 200;
        let mut b = PetriNet::builder();
        let places: Vec<_> = (0..n)
            .map(|i| b.add_place(format!("p{i}"), i == 0))
            .collect();
        for i in 0..n {
            let t = b.add_transition(format!("t{i}"));
            b.arc_pt(places[i], t);
            b.arc_tp(t, places[(i + 1) % n]);
        }
        let net = b.build();
        let rg = ReachabilityGraph::build(&net, 1000).unwrap();
        assert_eq!(rg.state_count(), n);
        for s in rg.states() {
            assert_eq!(rg.state_of(rg.marking(s)), Some(s));
        }
    }
}
