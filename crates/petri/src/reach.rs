//! Explicit reachability-graph construction and behavioural oracles.
//!
//! This is the *state-based* substrate that the paper's structural methods
//! avoid — and that the baselines (SIS/ASSASSIN-style flows) and all
//! ground-truth tests require. The builder enumerates reachable markings
//! breadth-first up to a configurable cap, so callers can detect "state
//! explosion" instead of hanging.

use crate::net::{Marking, PetriNet, TransId};
use std::collections::HashMap;

/// Index of a marking inside a [`ReachabilityGraph`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Outcome of a bounded reachability exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReachError {
    /// The exploration hit the marking cap before exhausting the state space.
    StateCapExceeded {
        /// The cap that was configured.
        cap: usize,
    },
    /// A transition firing produced a non-safe marking (a token added to an
    /// already-marked place).
    NotSafe {
        /// The transition whose firing violated safeness.
        transition: TransId,
    },
}

impl std::fmt::Display for ReachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReachError::StateCapExceeded { cap } => {
                write!(f, "state space exceeds the cap of {cap} markings")
            }
            ReachError::NotSafe { transition } => {
                write!(f, "net is not safe: firing {transition} duplicates a token")
            }
        }
    }
}

impl std::error::Error for ReachError {}

/// The explicit reachability graph of a safe net.
///
/// # Examples
///
/// ```
/// use si_petri::{PetriNet, ReachabilityGraph};
///
/// let mut b = PetriNet::builder();
/// let p0 = b.add_place("p0", true);
/// let p1 = b.add_place("p1", false);
/// let t0 = b.add_transition("t0");
/// let t1 = b.add_transition("t1");
/// b.arc_pt(p0, t0); b.arc_tp(t0, p1);
/// b.arc_pt(p1, t1); b.arc_tp(t1, p0);
/// let net = b.build();
/// let rg = ReachabilityGraph::build(&net, 1_000)?;
/// assert_eq!(rg.state_count(), 2);
/// # Ok::<(), si_petri::ReachError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    index: HashMap<Marking, StateId>,
    /// Outgoing edges `(t, successor)` per state.
    succs: Vec<Vec<(TransId, StateId)>>,
    /// Incoming edges `(t, predecessor)` per state.
    preds: Vec<Vec<(TransId, StateId)>>,
}

impl ReachabilityGraph {
    /// Explores the state space of `net` breadth-first.
    ///
    /// # Errors
    ///
    /// [`ReachError::StateCapExceeded`] if more than `cap` markings are
    /// reachable; [`ReachError::NotSafe`] if a firing puts a second token on
    /// a place.
    pub fn build(net: &PetriNet, cap: usize) -> Result<Self, ReachError> {
        let m0 = net.initial_marking();
        let mut markings = vec![m0.clone()];
        let mut index = HashMap::new();
        index.insert(m0, StateId(0));
        let mut succs: Vec<Vec<(TransId, StateId)>> = vec![Vec::new()];
        let mut frontier = vec![StateId(0)];
        while let Some(s) = frontier.pop() {
            let m = markings[s.index()].clone();
            for t in net.transitions() {
                if !net.is_enabled(&m, t) {
                    continue;
                }
                // Safeness: a postset place outside the preset must be empty.
                for p in net.post_t(t) {
                    if m.get(p.index()) && !net.pre_t(t).contains(p) {
                        return Err(ReachError::NotSafe { transition: t });
                    }
                }
                let m2 = net.fire(&m, t);
                let id = match index.get(&m2) {
                    Some(&id) => id,
                    None => {
                        let id = StateId(markings.len() as u32);
                        if markings.len() >= cap {
                            return Err(ReachError::StateCapExceeded { cap });
                        }
                        markings.push(m2.clone());
                        index.insert(m2, id);
                        succs.push(Vec::new());
                        frontier.push(id);
                        id
                    }
                };
                succs[s.index()].push((t, id));
            }
        }
        let mut preds: Vec<Vec<(TransId, StateId)>> = vec![Vec::new(); markings.len()];
        for (s, out) in succs.iter().enumerate() {
            for &(t, d) in out {
                preds[d.index()].push((t, StateId(s as u32)));
            }
        }
        Ok(ReachabilityGraph {
            markings,
            index,
            succs,
            preds,
        })
    }

    /// Number of reachable markings.
    pub fn state_count(&self) -> usize {
        self.markings.len()
    }

    /// The marking of a state.
    pub fn marking(&self, s: StateId) -> &Marking {
        &self.markings[s.index()]
    }

    /// Looks up the state of a marking.
    pub fn state_of(&self, m: &Marking) -> Option<StateId> {
        self.index.get(m).copied()
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.state_count() as u32).map(StateId)
    }

    /// Outgoing edges of a state.
    pub fn successors(&self, s: StateId) -> &[(TransId, StateId)] {
        &self.succs[s.index()]
    }

    /// Incoming edges of a state.
    pub fn predecessors(&self, s: StateId) -> &[(TransId, StateId)] {
        &self.preds[s.index()]
    }

    /// States at which `t` is enabled (the excitation region of `t` in
    /// Petri-net terms).
    pub fn states_enabling(&self, t: TransId) -> Vec<StateId> {
        self.states()
            .filter(|&s| self.succs[s.index()].iter().any(|&(u, _)| u == t))
            .collect()
    }

    /// Behavioural liveness: every transition can fire again from every
    /// reachable marking.
    ///
    /// For the strongly-connected systems used in SI synthesis this reduces
    /// to: the RG is strongly connected and every transition labels at least
    /// one edge. The general check (per-marking re-enableability) is also
    /// what this implements, via one backward closure per transition.
    pub fn is_live(&self, net: &PetriNet) -> bool {
        let n = self.state_count();
        for t in net.transitions() {
            // States from which t is eventually fireable = backward closure
            // of the sources of t-labelled edges.
            let mut can = vec![false; n];
            let mut stack: Vec<StateId> = Vec::new();
            for s in self.states() {
                if self.succs[s.index()].iter().any(|&(u, _)| u == t) {
                    can[s.index()] = true;
                    stack.push(s);
                }
            }
            while let Some(s) = stack.pop() {
                for &(_, p) in &self.preds[s.index()] {
                    if !can[p.index()] {
                        can[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            if can.iter().any(|&c| !c) {
                return false;
            }
        }
        true
    }

    /// Returns `true` if the RG is strongly connected (common for live+safe
    /// cyclic specifications; cheap necessary check used by tests).
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.state_count();
        if n == 0 {
            return true;
        }
        let reach_all = |edges: &dyn Fn(StateId) -> Vec<StateId>| {
            let mut seen = vec![false; n];
            let mut stack = vec![StateId(0)];
            seen[0] = true;
            let mut count = 1;
            while let Some(s) = stack.pop() {
                for d in edges(s) {
                    if !seen[d.index()] {
                        seen[d.index()] = true;
                        count += 1;
                        stack.push(d);
                    }
                }
            }
            count == n
        };
        reach_all(&|s| self.succs[s.index()].iter().map(|&(_, d)| d).collect())
            && reach_all(&|s| self.preds[s.index()].iter().map(|&(_, d)| d).collect())
    }

    /// Behavioural concurrency of two transitions: some reachable marking
    /// enables both and firing either keeps the other enabled.
    pub fn transitions_concurrent(&self, net: &PetriNet, a: TransId, b: TransId) -> bool {
        if a == b {
            return false;
        }
        self.states().any(|s| {
            let m = &self.markings[s.index()];
            net.is_enabled(m, a)
                && net.is_enabled(m, b)
                && net.is_enabled(&net.fire(m, a), b)
                && net.is_enabled(&net.fire(m, b), a)
        })
    }

    /// Behavioural concurrency of two places: some reachable marking marks
    /// both.
    pub fn places_concurrent(&self, p: crate::net::PlaceId, q: crate::net::PlaceId) -> bool {
        if p == q {
            return false;
        }
        self.markings
            .iter()
            .any(|m| m.get(p.index()) && m.get(q.index()))
    }

    /// Behavioural concurrency of a place and a transition: some reachable
    /// marking enables `t`, marks `p`, and `p` stays marked after firing `t`.
    pub fn place_transition_concurrent(
        &self,
        net: &PetriNet,
        p: crate::net::PlaceId,
        t: TransId,
    ) -> bool {
        self.markings.iter().any(|m| {
            m.get(p.index()) && net.is_enabled(m, t) && net.fire(m, t).get(p.index())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{PetriNet, PlaceId};

    /// Fork-join: t0 forks into p1 ∥ p2, t3 joins back to p0.
    fn fork_join() -> PetriNet {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", false);
        let p3 = b.add_place("p3", false);
        let p4 = b.add_place("p4", false);
        let t0 = b.add_transition("fork");
        let t1 = b.add_transition("left");
        let t2 = b.add_transition("right");
        let t3 = b.add_transition("join");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_tp(t0, p2);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p3);
        b.arc_pt(p2, t2);
        b.arc_tp(t2, p4);
        b.arc_pt(p3, t3);
        b.arc_pt(p4, t3);
        b.arc_tp(t3, p0);
        b.build()
    }

    #[test]
    fn explores_fork_join() {
        let net = fork_join();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        // markings: p0; p1p2; p3p2; p1p4; p3p4 => 5
        assert_eq!(rg.state_count(), 5);
        assert!(rg.is_strongly_connected());
        assert!(rg.is_live(&net));
    }

    #[test]
    fn behavioural_concurrency() {
        let net = fork_join();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        let left = net.transition_by_name("left").unwrap();
        let right = net.transition_by_name("right").unwrap();
        let fork = net.transition_by_name("fork").unwrap();
        assert!(rg.transitions_concurrent(&net, left, right));
        assert!(!rg.transitions_concurrent(&net, fork, left));
        assert!(rg.places_concurrent(PlaceId(1), PlaceId(2)));
        assert!(!rg.places_concurrent(PlaceId(0), PlaceId(1)));
        // p2 stays marked while t1 (left) fires
        assert!(rg.place_transition_concurrent(&net, PlaceId(2), left));
        // p1 is consumed by left
        assert!(!rg.place_transition_concurrent(&net, PlaceId(1), left));
    }

    #[test]
    fn cap_is_enforced() {
        let net = fork_join();
        let err = ReachabilityGraph::build(&net, 2).unwrap_err();
        assert_eq!(err, ReachError::StateCapExceeded { cap: 2 });
    }

    #[test]
    fn unsafe_net_detected() {
        // t0 puts a token on p1 twice (two firings without consumption).
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let p2 = b.add_place("p2", true);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p2, t1);
        b.arc_tp(t1, p1); // second producer while p1 may be marked
        b.arc_tp(t1, p0); // keep things going
        let net = b.build();
        let r = ReachabilityGraph::build(&net, 100);
        assert!(matches!(r, Err(ReachError::NotSafe { .. })));
    }

    #[test]
    fn dead_transition_not_live() {
        let mut b = PetriNet::builder();
        let p0 = b.add_place("p0", true);
        let p1 = b.add_place("p1", false);
        let pd = b.add_place("dead_in", false);
        let t0 = b.add_transition("t0");
        let t1 = b.add_transition("t1");
        let td = b.add_transition("dead");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        b.arc_pt(pd, td);
        b.arc_tp(td, pd);
        let net = b.build();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        assert!(!rg.is_live(&net));
    }

    #[test]
    fn state_lookup() {
        let net = fork_join();
        let rg = ReachabilityGraph::build(&net, 100).unwrap();
        let m0 = net.initial_marking();
        assert_eq!(rg.state_of(&m0), Some(StateId(0)));
        assert_eq!(rg.marking(StateId(0)), &m0);
        let ers = rg.states_enabling(net.transition_by_name("fork").unwrap());
        assert_eq!(ers, vec![StateId(0)]);
    }
}
